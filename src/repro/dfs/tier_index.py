"""Tier-aware block-location index: which tier(s) hold replica r of b.

Generalizes :mod:`repro.dfs.memory_index` from "which nodes hold this
block in memory" to "which nodes hold this block in tier T", one
:class:`~repro.dfs.memory_index.MemoryLocalityIndex` per tier.  The
per-tier sub-indexes keep their push-based O(1) ``nodes()`` fast path,
and the NameNode exposes the ``mem`` sub-index as the same
``locality_index`` object the scheduler already subscribes to — the
PR 1 fast path is untouched.

Invariant: a given replica (block, node) occupies at most one upper
tier at a time.  The physical model backs this — a migration moves the
replica's resident copy — so an update that lands a replica in a new
tier first retracts it from the tier it previously occupied (firing
that sub-index's listeners) before inserting into the new one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from .memory_index import MemoryLocalityIndex


class TierLocalityIndex:
    """Per-tier residency maps with the one-tier-per-replica invariant."""

    __slots__ = ("_by_tier", "_tier_of")

    def __init__(self):
        self._by_tier: Dict[str, MemoryLocalityIndex] = {}
        #: (block_id, node) -> tier currently holding that replica.
        self._tier_of: Dict[Tuple[str, str], str] = {}

    def tier(self, name: str) -> MemoryLocalityIndex:
        """The sub-index for one tier (created on first use)."""
        index = self._by_tier.get(name)
        if index is None:
            index = self._by_tier[name] = MemoryLocalityIndex()
        return index

    def tiers(self) -> Tuple[str, ...]:
        return tuple(self._by_tier)

    # -- push-based updates ---------------------------------------------------

    def update(self, node: str, tier: str, block_id: str, resident: bool) -> None:
        """Apply one residency delta from ``node``'s tier ``tier``.

        Idempotent per sub-index; a residency gain while the replica sits
        in a *different* tier retracts the stale entry first so the
        one-tier-per-replica invariant holds at every step.
        """
        key = (block_id, node)
        if resident:
            current = self._tier_of.get(key)
            if current is not None and current != tier:
                self._by_tier[current].update(node, block_id, False)
            self._tier_of[key] = tier
            self.tier(tier).update(node, block_id, True)
        else:
            if self._tier_of.get(key) == tier:
                del self._tier_of[key]
            index = self._by_tier.get(tier)
            if index is not None:
                index.update(node, block_id, False)

    def purge_node(self, node: str) -> None:
        """Drop every entry for ``node`` across all tiers (node death)."""
        for index in self._by_tier.values():
            index.purge_node(node)
        stale = [key for key in self._tier_of if key[1] == node]
        for key in stale:
            del self._tier_of[key]

    # -- queries --------------------------------------------------------------

    def nodes(self, tier: str, block_id: str) -> FrozenSet[str]:
        """Nodes holding ``block_id`` in ``tier`` (O(1), shared frozenset)."""
        index = self._by_tier.get(tier)
        if index is None:
            return frozenset()
        return index.nodes(block_id)

    def tier_of(self, block_id: str, node: str):
        """The upper tier holding this replica, or ``None`` if it only
        exists on the node's backing store."""
        return self._tier_of.get((block_id, node))

    def blocks(self, tier: str) -> Dict[str, FrozenSet[str]]:
        """Snapshot of one tier's ``block -> nodes`` map (for tests)."""
        index = self._by_tier.get(tier)
        if index is None:
            return {}
        return index.blocks()

    def __repr__(self) -> str:
        counts = {
            tier: len(index.blocks()) for tier, index in self._by_tier.items()
        }
        return f"<TierLocalityIndex {counts}>"
