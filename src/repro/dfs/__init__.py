"""HDFS-like distributed file system substrate.

NameNode (namespace + block map + placement), DataNodes (block storage on
device models with a pinnable buffer cache), and DFSClient (replica-aware
reads, write-back writes, and the Ignem ``migrate``/``evict`` extension).
"""

from .blocks import DEFAULT_BLOCK_SIZE, Block, FileMetadata, split_into_blocks
from .client import ClientRead, DFSClient
from .datanode import DataNode, DataNodeError, ReadHandle
from .memory_index import MemoryLocalityIndex
from .namenode import NameNode, NameNodeError
from .replication import RepairConfig, ReplicationMonitor
from .tier_index import TierLocalityIndex

__all__ = [
    "MemoryLocalityIndex",
    "TierLocalityIndex",
    "DEFAULT_BLOCK_SIZE",
    "Block",
    "ClientRead",
    "DFSClient",
    "DataNode",
    "DataNodeError",
    "FileMetadata",
    "NameNode",
    "NameNodeError",
    "RepairConfig",
    "ReplicationMonitor",
    "ReadHandle",
    "split_into_blocks",
]
