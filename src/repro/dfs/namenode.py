"""NameNode: the DFS master holding the namespace and block map.

Maps files to blocks and blocks to DataNodes, performs replica placement,
and tracks node liveness.  The Ignem master is hosted inside this process
(paper Section III-B) and queries it for block locations.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..sim.rand import RandomSource
from ..storage.tiers import MEM
from .blocks import DEFAULT_BLOCK_SIZE, Block, FileMetadata, split_into_blocks
from .datanode import DataNode
from .tier_index import TierLocalityIndex


class NameNodeError(Exception):
    """Namespace or placement errors (missing paths, no live nodes...)."""


class NameNode:
    """The file-system master.

    Placement policy: replicas go to distinct live nodes chosen uniformly
    at random (with an optional preferred first node, mirroring HDFS's
    writer-local first replica).
    """

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        block_size: float = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.block_size = float(block_size)
        self.replication = replication
        self.rng = rng or RandomSource(0)

        self._datanodes: Dict[str, DataNode] = {}
        self._namespace: Dict[str, FileMetadata] = {}
        self._locations: Dict[str, List[str]] = {}
        #: Cached live-node list, invalidated by membership changes and
        #: DataNode liveness flips (``on_liveness_change``).  A full scan
        #: per query is O(nodes) and shows up hard at 10k nodes.
        self._live_cache: Optional[List[DataNode]] = None
        #: Opt-in O(replication) sampled placement for huge clusters.
        #: Draws from a different RNG sequence than the default scan, so
        #: it stays off unless a scale harness turns it on explicitly.
        self.fast_placement = False
        #: Push-maintained per-tier ``block_id -> nodes`` maps, fed by
        #: DataNode residency deltas (see :mod:`repro.dfs.tier_index`).
        self.tier_index = TierLocalityIndex()
        #: The memory tier's sub-index.  Kept as a first-class attribute:
        #: the scheduler's fast path subscribes to this exact object via
        #: ``add_listener`` (see :mod:`repro.dfs.memory_index`).
        self.locality_index = self.tier_index.tier(MEM)
        #: Read-event listeners, called as ``listener(block, tenant)`` on
        #: every client block read (the heat estimator's feed).  The list
        #: is public so the client can skip the publish call entirely
        #: when nobody subscribed — the zero-overhead clean path.
        self.read_listeners: List[Callable[[Block, Optional[str]], None]] = []
        #: Last heartbeat sequence number per node (transport endpoint
        #: bookkeeping; the sim's residency index is push-maintained, so
        #: heartbeats carry liveness only).
        self.heartbeats: Dict[str, int] = {}

    # -- transport endpoint ------------------------------------------------------

    def handle_message(self, msg):
        """The ``"namenode"`` transport endpoint: namespace lookups,
        file creation, and heartbeat intake as protocol messages."""
        from ..transport.messages import (
            Ack,
            BlockPlacement,
            CreateFileReply,
            CreateFileRequest,
            FileInfoReply,
            FileInfoRequest,
            HeartbeatMsg,
            LocationsReply,
            LocationsRequest,
        )

        if isinstance(msg, LocationsRequest):
            nodes = tuple(self.get_block_locations(msg.block_id))
            resident = self.memory_nodes(msg.block_id)
            return LocationsReply(
                nodes=nodes,
                memory_nodes=tuple(n for n in nodes if n in resident),
            )
        if isinstance(msg, FileInfoRequest):
            if not self.exists(msg.path):
                return FileInfoReply(exists=False)
            return FileInfoReply(
                exists=True, blocks=self._placements(msg.path, BlockPlacement)
            )
        if isinstance(msg, CreateFileRequest):
            if self.exists(msg.path):
                return CreateFileReply(ok=False)
            self.create_file(msg.path, msg.nbytes, replication=msg.replication)
            return CreateFileReply(
                ok=True, blocks=self._placements(msg.path, BlockPlacement)
            )
        if isinstance(msg, HeartbeatMsg):
            self.heartbeats[msg.node] = msg.seq
            return Ack(True)
        raise TypeError(f"namenode cannot handle {type(msg).__name__}")

    def _placements(self, path: str, placement_cls) -> tuple:
        return tuple(
            placement_cls(
                block_id=block.block_id,
                index=block.index,
                nbytes=block.nbytes,
                nodes=tuple(self.get_block_locations(block.block_id)),
            )
            for block in self.get_file(path).blocks
        )

    # -- cluster membership ----------------------------------------------------

    def register_datanode(self, datanode: DataNode) -> None:
        if datanode.name in self._datanodes:
            raise NameNodeError(f"duplicate DataNode name {datanode.name!r}")
        self._datanodes[datanode.name] = datanode
        self._live_cache = None
        datanode.on_liveness_change = self._invalidate_live_cache
        datanode.attach_residency_listener(self._on_residency_delta)

    def _invalidate_live_cache(self) -> None:
        self._live_cache = None

    def datanode(self, name: str) -> DataNode:
        if name not in self._datanodes:
            raise NameNodeError(f"unknown DataNode {name!r}")
        return self._datanodes[name]

    def datanodes(self) -> List[DataNode]:
        return list(self._datanodes.values())

    def live_datanodes(self) -> List[DataNode]:
        """Live DataNodes, in registration order.

        Served from a liveness-invalidated cache; callers must treat the
        returned list as read-only.
        """
        live = self._live_cache
        if live is None:
            live = [dn for dn in self._datanodes.values() if dn.alive]
            self._live_cache = live
        return live

    def remove_datanode(self, name: str) -> None:
        """Drop a dead server from the namespace map (paper III-A5): its
        replica locations disappear from every block's location list."""
        datanode = self._datanodes.pop(name, None)
        self._live_cache = None
        if datanode is not None:
            datanode.detach_residency_listener()
            datanode.on_liveness_change = None
        for block_id, nodes in self._locations.items():
            if name in nodes:
                nodes.remove(name)
        self.tier_index.purge_node(name)

    def add_block_replica(self, block_id: str, node: str) -> None:
        """Register ``node`` as a replica holder (re-replication commit).

        Raises if the block is unknown or the node already holds it —
        the repair machinery must never double-list a holder.
        """
        nodes = self._locations.get(block_id)
        if nodes is None:
            raise NameNodeError(f"unknown block {block_id!r}")
        if node in nodes:
            raise NameNodeError(f"{node} already holds {block_id}")
        nodes.append(node)

    def remove_block_replica(self, block_id: str, node: str) -> None:
        """Forget ``node`` as a holder (excess-replica thinning or a
        rebalance move retiring the donor's copy)."""
        nodes = self._locations.get(block_id)
        if nodes is not None and node in nodes:
            nodes.remove(node)

    def block_replicas(self, block_id: str) -> List[str]:
        """Every registered holder, live or not (unlike
        :meth:`get_block_locations` which filters dead nodes)."""
        return list(self._locations.get(block_id, ()))

    # -- read events -----------------------------------------------------------

    def subscribe_reads(
        self, listener: Callable[[Block, Optional[str]], None]
    ) -> None:
        """Register a read-event listener (``listener(block, tenant)``).

        Listeners observe every block read issued through a
        :class:`~repro.dfs.client.DFSClient` — the access stream the
        popularity-driven migration policy estimates heat from.  With no
        listeners the read path never calls into here.
        """
        if listener not in self.read_listeners:
            self.read_listeners.append(listener)

    def unsubscribe_reads(
        self, listener: Callable[[Block, Optional[str]], None]
    ) -> None:
        if listener in self.read_listeners:
            self.read_listeners.remove(listener)

    def publish_read(self, block: Block, tenant: Optional[str]) -> None:
        """Fan one read event out to every subscribed listener."""
        for listener in self.read_listeners:
            listener(block, tenant)

    def _on_residency_delta(self, node: str, tier: str, key, resident: bool) -> None:
        """Fold one DataNode tier-residency delta into the tier index.

        Buffer caches also hold non-DFS keys (shuffle spills); only keys
        that name a known block enter the index.  Eviction deltas for
        unknown keys are harmless no-ops inside the index.
        """
        if resident and key not in self._locations:
            return
        self.tier_index.update(node, tier, key, resident)

    # -- namespace operations ------------------------------------------------------

    def create_file(
        self,
        path: str,
        nbytes: float,
        replication: Optional[int] = None,
        preferred_node: Optional[str] = None,
        materialize: bool = True,
    ) -> FileMetadata:
        """Create ``path`` with ``nbytes`` of data and place its blocks.

        With ``materialize=True`` block replicas appear directly on the
        chosen DataNodes' disks at no IO cost (dataset generation happens
        before the measured run, as in the paper's setup).
        """
        if path in self._namespace:
            raise NameNodeError(f"path already exists: {path!r}")
        replication = replication or self.replication
        live = self.live_datanodes()
        if len(live) == 0:
            raise NameNodeError("no live DataNodes")
        replication = min(replication, len(live))

        blocks = split_into_blocks(path, nbytes, self.block_size)
        metadata = FileMetadata(path, tuple(blocks), replication=replication)
        self._namespace[path] = metadata

        sampled = self.fast_placement and preferred_node is None
        for block in blocks:
            if sampled:
                nodes = self._place_replicas_sampled(
                    live, replication, block.nbytes
                )
            else:
                nodes = self._place_replicas(
                    live, replication, preferred_node, block.nbytes
                )
            if not nodes:
                # Roll back the namespace entry: nothing fits anywhere.
                del self._namespace[path]
                for placed in blocks:
                    self._locations.pop(placed.block_id, None)
                raise NameNodeError(
                    f"no DataNode has capacity for a block of {path!r}"
                )
            self._locations[block.block_id] = nodes
            if materialize:
                for node in nodes:
                    self._datanodes[node].store_block(block)
        return metadata

    def delete_file(self, path: str) -> None:
        metadata = self._namespace.pop(path, None)
        if metadata is None:
            raise NameNodeError(f"no such path: {path!r}")
        for block in metadata.blocks:
            nodes = self._locations.pop(block.block_id, [])
            for node in nodes:
                datanode = self._datanodes.get(node)
                if datanode is not None:
                    datanode.drop_block(block.block_id)

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def get_file(self, path: str) -> FileMetadata:
        if path not in self._namespace:
            raise NameNodeError(f"no such path: {path!r}")
        return self._namespace[path]

    def list_files(self) -> List[str]:
        return sorted(self._namespace.keys())

    def is_block(self, block_id: str) -> bool:
        """Whether ``block_id`` names a block of any current file."""
        return block_id in self._locations

    def get_block_locations(self, block_id: str) -> List[str]:
        """Live replica locations for a block (dead nodes filtered out)."""
        nodes = self._locations.get(block_id)
        if nodes is None:
            raise NameNodeError(f"unknown block {block_id!r}")
        return [
            node
            for node in nodes
            if node in self._datanodes and self._datanodes[node].alive
        ]

    def memory_locations(self, block_id: str) -> List[str]:
        """Replica holders that would serve ``block_id`` from RAM, in
        replica-placement order.

        O(replicas) set probes against the push-maintained locality index
        — no per-DataNode cache polling (paper Section III-A2's locality
        API, served the way OctopusFS serves tier metadata).
        """
        nodes = self._locations.get(block_id)
        if nodes is None:
            raise NameNodeError(f"unknown block {block_id!r}")
        resident = self.locality_index.nodes(block_id)
        if not resident:
            return []
        return [node for node in nodes if node in resident]

    def memory_nodes(self, block_id: str) -> FrozenSet[str]:
        """Unordered O(1) variant of :meth:`memory_locations`."""
        return self.locality_index.nodes(block_id)

    def tier_nodes(self, block_id: str, tier: str) -> FrozenSet[str]:
        """Nodes holding ``block_id`` in upper tier ``tier`` (O(1))."""
        return self.tier_index.nodes(tier, block_id)

    def tier_locations(self, block_id: str, tier: str) -> List[str]:
        """Replica holders serving ``block_id`` from tier ``tier``, in
        replica-placement order (tier-general :meth:`memory_locations`)."""
        nodes = self._locations.get(block_id)
        if nodes is None:
            raise NameNodeError(f"unknown block {block_id!r}")
        resident = self.tier_index.nodes(tier, block_id)
        if not resident:
            return []
        return [node for node in nodes if node in resident]

    def file_blocks(self, path: str) -> Sequence[Block]:
        return self.get_file(path).blocks

    def total_bytes(self, paths: Sequence[str]) -> float:
        return sum(self.get_file(path).nbytes for path in paths)

    # -- placement -----------------------------------------------------------------

    def _place_replicas(
        self,
        live: List[DataNode],
        replication: int,
        preferred_node: Optional[str],
        nbytes: float = 0.0,
    ) -> List[str]:
        # Inlined has_capacity: this comprehension runs once per block of
        # every created file, and the attribute comparison is ~3x cheaper
        # than the method call at that volume.
        names = [
            dn.name for dn in live if dn.disk_used + nbytes <= dn.disk_capacity
        ]
        if preferred_node is None or preferred_node not in names:
            # Common case (dataset materialization): no preferred node,
            # so the candidate list is the population as-is.
            return self.rng.sample(names, min(replication, len(names)))
        chosen: List[str] = [preferred_node]
        remaining = [name for name in names if name != preferred_node]
        needed = replication - 1
        if needed > 0:
            chosen.extend(self.rng.sample(remaining, min(needed, len(remaining))))
        return chosen

    def _place_replicas_sampled(
        self, live: List[DataNode], replication: int, nbytes: float
    ) -> List[str]:
        """O(replication) placement for huge clusters (``fast_placement``).

        Samples replica sets straight from the live list and keeps the
        first whose nodes all have capacity — on a mostly-empty cluster
        the first draw virtually always sticks.  Falls back to the exact
        capacity-filtered scan when sampling keeps hitting full nodes.
        """
        count = min(replication, len(live))
        for _ in range(4):
            picks = self.rng.sample(live, count)
            fits = True
            for dn in picks:
                if dn.disk_used + nbytes > dn.disk_capacity:
                    fits = False
                    break
            if fits:
                return [dn.name for dn in picks]
        return self._place_replicas(live, replication, None, nbytes)
