"""DFSClient: how applications talk to the file system.

Performs namespace operations against the NameNode and data operations
against DataNodes, choosing replicas with memory-then-locality preference.
The paper extends exactly this class with a ``migrate`` method (Section
III-B3); when an Ignem master is attached, :meth:`migrate` and
:meth:`evict` forward to it via (simulated) RPC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..net.network import Network
from ..sim.engine import Environment
from ..sim.events import Event, join_all
from ..sim.rand import RandomSource
from .blocks import Block, FileMetadata
from .namenode import NameNode, NameNodeError


class ClientRead:
    """An in-flight block read issued through the client."""

    __slots__ = ("done", "source", "serving_node", "block")

    def __init__(self, done: Event, source: str, serving_node: str, block: Block):
        self.done = done
        self.source = source
        self.serving_node = serving_node
        self.block = block


class DFSClient:
    """File-system client used by job submitters and tasks.

    Parameters
    ----------
    env, namenode, network:
        The substrate this client talks to.
    rng:
        Randomness for replica choice (tie-breaking among equally good
        replicas), seeded per experiment.
    """

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        network: Network,
        rng: Optional[RandomSource] = None,
    ):
        self.env = env
        self.namenode = namenode
        self.network = network
        self.rng = rng or RandomSource(0)
        #: Set by the Ignem master when migration is enabled.
        self.ignem_master = None
        #: Control-plane transport (set by the cluster); when present,
        #: migrate/evict ship to the ``"master"`` endpoint as protocol
        #: messages.  Data-plane reads stay direct: the replica-choice
        #: hot path is performance-critical at trace scale.
        self.transport = None
        #: The master object serving the transport's ``"master"``
        #: endpoint.  Requests go over the wire only while
        #: :attr:`ignem_master` *is* that object — experiments that swap
        #: in a routing shim (e.g. the tier3 demo's size router) keep
        #: getting direct calls to their shim.
        self.transport_master = None
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

    # -- namespace operations ---------------------------------------------------

    def create_file(
        self,
        path: str,
        nbytes: float,
        replication: Optional[int] = None,
        preferred_node: Optional[str] = None,
    ) -> FileMetadata:
        """Create a fully materialized file (dataset generation)."""
        return self.namenode.create_file(
            path, nbytes, replication=replication, preferred_node=preferred_node
        )

    def open(self, path: str) -> FileMetadata:
        return self.namenode.get_file(path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        self.namenode.delete_file(path)

    # -- reads ---------------------------------------------------------------------

    def memory_locations(self, block: Block) -> List[str]:
        """Replica nodes that would serve this block from RAM right now.

        This is the locality-preference API of paper Section III-A2: big
        data file systems let tasks query input locations; Ignem extends
        the answer with migrated (in-memory) locations.  Served from the
        NameNode's push-maintained locality index — no DataNode polling.
        """
        return self.namenode.memory_locations(block.block_id)

    def read_block(
        self,
        block: Block,
        reader_node: str,
        job_id: Optional[str] = None,
        avoid: Sequence[str] = (),
        tenant: Optional[str] = None,
    ) -> ClientRead:
        """Read one block from the best replica.

        Preference order (paper Sections III-A2/III-A3):

        1. an in-memory replica on the reader's own node;
        2. an in-memory replica on a remote node (RAM read + network);
        3. an on-disk replica on the reader's own node;
        4. an on-disk replica on a random remote node (disk + network).

        ``avoid`` de-prioritizes replicas on the named nodes (used by
        speculative task attempts to dodge a straggling server); they are
        still used when no alternative exists.  ``tenant`` labels the
        access for the NameNode's read-event listeners (the heat
        estimator's per-tenant attribution); it defaults to ``job_id``.
        """
        if self.namenode.read_listeners:
            self.namenode.publish_read(
                block, tenant if tenant is not None else job_id
            )
        locations = self.namenode.get_block_locations(block.block_id)
        if not locations:
            raise NameNodeError(f"no live replicas for {block.block_id}")
        if avoid:
            preferred = [node for node in locations if node not in set(avoid)]
            if preferred:
                locations = preferred

        resident = self.namenode.memory_nodes(block.block_id)
        in_memory = (
            [node for node in locations if node in resident] if resident else []
        )

        if in_memory:
            serving = reader_node if reader_node in in_memory else self.rng.choice(
                sorted(in_memory)
            )
        elif reader_node in locations:
            serving = reader_node
        else:
            serving = self.rng.choice(sorted(locations))

        datanode = self.namenode.datanode(serving)
        handle = datanode.read_block(block, job_id=job_id)

        if serving == reader_node:
            done = handle.done
        else:
            net = self.network.transfer(
                serving, reader_node, block.nbytes, tag=("read", block.block_id)
            )
            done = join_all(self.env, (handle.done, net))
        if self.obs is not None:
            self.obs.on_dfs_read(handle.source, serving, reader_node, block, done)
        return ClientRead(done, handle.source, serving, block)

    # -- writes -------------------------------------------------------------------

    def write_file(
        self,
        path: str,
        nbytes: float,
        writer_node: str,
        replication: Optional[int] = None,
    ) -> Event:
        """Write a new file from ``writer_node``; returns a done event.

        Replicas are absorbed by each target's buffer cache (write-back
        flushing happens in the background) while the replication pipeline
        to remote replicas crosses the network synchronously — writes feel
        fast but still generate real disk and network traffic.
        """
        metadata = self.namenode.create_file(
            path,
            nbytes,
            replication=replication,
            preferred_node=writer_node,
            materialize=False,
        )
        pending: List[Event] = []
        for block in metadata.blocks:
            for node in self.namenode.get_block_locations(block.block_id):
                self.namenode.datanode(node).absorb_write(block)
                if node != writer_node:
                    pending.append(
                        self.network.transfer(
                            writer_node, node, block.nbytes, tag=("write", path)
                        )
                    )
        if not pending:
            done = Event(self.env)
            done.succeed(None)
            return done
        return join_all(self.env, pending)

    # -- Ignem API (paper Section III-B3) -----------------------------------------

    def migrate(
        self,
        paths: Sequence[str],
        job_id: str,
        implicit_eviction: bool = False,
    ) -> None:
        """Ask Ignem to migrate the inputs of ``job_id`` into memory.

        A one-line call from the job submitter.  Silently a no-op when no
        Ignem master is attached (backward compatibility with plain HDFS,
        which is how the paper's baseline runs execute the same binaries).
        """
        if self.ignem_master is None:
            return
        if (
            self.transport is not None
            and self.ignem_master is self.transport_master
        ):
            from ..transport.messages import MigrateFilesRequest

            self.transport.request(
                "master",
                MigrateFilesRequest(
                    tuple(paths), job_id, implicit_eviction=implicit_eviction
                ),
            )
            return
        self.ignem_master.request_migration(
            paths, job_id, implicit_eviction=implicit_eviction
        )

    def evict(self, paths: Sequence[str], job_id: str) -> None:
        """Tell Ignem the job is done with these inputs (explicit evict)."""
        if self.ignem_master is None:
            return
        if (
            self.transport is not None
            and self.ignem_master is self.transport_master
        ):
            from ..transport.messages import EvictFilesRequest

            self.transport.request(
                "master", EvictFilesRequest(tuple(paths), job_id)
            )
            return
        self.ignem_master.request_eviction(paths, job_id)
