"""DataNode: block storage on one server.

Each DataNode owns an ordered :class:`~repro.storage.NodeTierSet`: a
backing store at the bottom (HDD or SSD) holding every replica, and one
:class:`~repro.storage.BufferCache`-tracked upper tier per faster medium
(the default preset has exactly one — memory — matching the paper).  The
Ignem slave (when enabled) lives inside the DataNode exactly as the
paper implements it inside the HDFS DataNode process, and hooks the read
path for implicit eviction.

``disk``, ``ram`` and ``cache`` remain as aliases for the bottom device,
top device and top cache, so 2-tier callers read exactly as before.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..sim.engine import Environment
from ..sim.events import Event
from ..storage.buffer_cache import BufferCache
from ..storage.device import GB, TransferDevice
from ..storage.presets import HDD_TIER, MEM_TIER, SSD_TIER, make_hdd, make_ram
from ..storage.tiers import NodeTier, NodeTierSet
from .blocks import Block


class DataNodeError(Exception):
    """Raised for invalid operations on a DataNode (e.g. reading a block
    it does not store, or any operation while the node is down)."""


class DataNode:
    """One storage server in the cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Server name (also the network node name).
    disk:
        Backing disk device; defaults to the calibrated HDD preset.
    ram:
        RAM device serving cache hits; defaults to the RAM preset.
    cache_capacity:
        Buffer-cache capacity in bytes (the paper's servers have 128GB).
    cache_reads:
        Whether plain disk reads populate the (unpinned) cache.  Disabled
        by default: the paper's workloads read singly-accessed cold data
        and all runs start with flushed caches.
    disk_capacity:
        Disk capacity in bytes (the paper's servers have a 1TB HDD).
    tiers:
        Pre-built :class:`~repro.storage.NodeTierSet` (devices only; the
        DataNode attaches the per-tier caches).  When given, ``disk``,
        ``ram`` and ``cache_capacity`` are ignored — the tier set is the
        hierarchy.  When omitted, the classic 2-tier stack is built from
        the other parameters exactly as before.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        disk: Optional[TransferDevice] = None,
        ram: Optional[TransferDevice] = None,
        cache_capacity: float = 128 * GB,
        cache_reads: bool = False,
        disk_capacity: float = 1024 * GB,
        tiers: Optional[NodeTierSet] = None,
    ):
        if disk_capacity <= 0:
            raise ValueError("disk_capacity must be positive")
        self.env = env
        self.name = name
        self.disk_capacity = float(disk_capacity)
        self.disk_used = 0.0
        if tiers is None:
            disk = disk if disk is not None else make_hdd(env, f"hdd-{name}")
            ram = ram if ram is not None else make_ram(env, f"ram-{name}")
            bottom_spec = SSD_TIER if "ssd" in disk.name.lower() else HDD_TIER
            tiers = NodeTierSet(
                [
                    NodeTier(MEM_TIER, ram, cache_capacity),
                    NodeTier(bottom_spec, disk, disk_capacity),
                ]
            )
        if len(tiers) < 2:
            raise ValueError("a DataNode needs at least two tiers")
        self.tiers = tiers
        self.disk = tiers.bottom.device
        self.ram = tiers.top.device
        # Upper-tier caches are attached here (not in the tier builder) so
        # flush wiring stays a DataNode concern: only the top cache
        # write-absorbs, and dirty entries flush to the backing store.
        for tier in tiers.upper:
            tier.cache = BufferCache(
                env,
                capacity=tier.capacity,
                flush_device=self.disk if tier is tiers.top else None,
            )
        self.cache = tiers.top.cache
        self.cache_reads = cache_reads
        self.alive = True

        self._blocks: Dict[str, Block] = {}
        #: Read-path hook: called with (block, job_id) after each block
        #: read served by this node.  Ignem's slave uses it for implicit
        #: eviction; HDFS read calls carry the job ID (paper III-B2).
        self.on_block_read: Optional[Callable[[Block, Optional[str]], None]] = None
        #: Residency-delta subscriber (the NameNode's tier index);
        #: receives ``(node_name, tier_name, key, resident)``.
        self._residency_listener: Optional[
            Callable[[str, str, str, bool], None]
        ] = None
        #: Liveness hook: called with no arguments whenever ``alive``
        #: flips (the NameNode uses it to invalidate its live-node cache).
        self.on_liveness_change: Optional[Callable[[], None]] = None
        #: Replica-pipeline notices received over the transport (the
        #: repair coordinator announces each chain copy routed through
        #: this node; pure bookkeeping, no simulated work).
        self.pipeline_notices = 0

    # -- transport endpoint ---------------------------------------------------

    def handle_message(self, msg):
        """The ``datanode/<name>`` transport endpoint.

        The simulator's *data plane* (timed reads/writes against device
        models) stays on direct calls — a byte payload has no meaning
        here.  The endpoint answers the control-plane surface: residency
        probes and pipeline notices.
        """
        from ..transport.messages import (
            Ack,
            BlockReadReply,
            BlockReadRequest,
            ReplicaPipelineMsg,
        )

        if isinstance(msg, BlockReadRequest):
            if not self.alive or not self.has_block(msg.block_id):
                return BlockReadReply(ok=False)
            block = self._blocks[msg.block_id]
            return BlockReadReply(
                ok=True,
                tier=self.block_tier(msg.block_id) or self.tiers.bottom.spec.name,
                nbytes=block.nbytes,
            )
        if isinstance(msg, ReplicaPipelineMsg):
            self.pipeline_notices += 1
            return Ack(True)
        raise TypeError(f"datanode cannot handle {type(msg).__name__}")

    # -- residency delta publication -----------------------------------------

    def attach_residency_listener(
        self, listener: Callable[[str, str, str, bool], None]
    ) -> None:
        """Start pushing per-tier residency deltas to ``listener``.

        Deltas carry ``(node_name, tier_name, key, resident)`` and cover
        every way a key can (stop) being resident in an upper tier:
        migration pin-ins, read-path caching, write absorption, LRU
        eviction, explicit eviction, and the cache flush of a node
        failure.
        """
        self._residency_listener = listener
        for tier in self.tiers.upper:
            tier.cache.on_residency_change = self._tier_publisher(tier.spec.name)

    def detach_residency_listener(self) -> None:
        self._residency_listener = None
        for tier in self.tiers.upper:
            tier.cache.on_residency_change = None

    def _tier_publisher(self, tier_name: str) -> Callable[[str, bool], None]:
        def publish(key, resident: bool) -> None:
            listener = self._residency_listener
            if listener is not None:
                listener(self.name, tier_name, key, resident)

        return publish

    # -- block placement ----------------------------------------------------

    def has_capacity(self, nbytes: float) -> bool:
        """Whether the disk can take ``nbytes`` more."""
        return self.disk_used + nbytes <= self.disk_capacity

    def store_block(self, block: Block) -> None:
        """Place a replica of ``block`` on this node's disk (no IO cost;
        dataset generation happens before the measured run)."""
        if not self.alive:
            raise DataNodeError(f"DataNode {self.name} is down")
        if block.block_id in self._blocks:
            return
        if self.disk_used + block.nbytes > self.disk_capacity:
            raise DataNodeError(f"{self.name} is out of disk space")
        self.disk_used += block.nbytes
        self._blocks[block.block_id] = block

    def has_block(self, block_id: str) -> bool:
        return self.alive and block_id in self._blocks

    def stored_blocks(self) -> Set[str]:
        return set(self._blocks.keys())

    def drop_block(self, block_id: str) -> None:
        dropped = self._blocks.pop(block_id, None)
        if dropped is not None:
            self.disk_used = max(0.0, self.disk_used - dropped.nbytes)
        for tier in self.tiers.upper:
            tier.cache.evict(block_id)

    # -- read / write paths ----------------------------------------------------

    def block_in_memory(self, block_id: str) -> bool:
        """Whether a read of ``block_id`` would be served from RAM."""
        return self.alive and self.cache.peek(block_id)

    def block_tier(self, block_id: str) -> Optional[str]:
        """The tier a read of ``block_id`` would be served from, or
        ``None`` if this node does not store the block at all."""
        if not self.alive or block_id not in self._blocks:
            return None
        for tier in self.tiers.upper:
            if tier.cache.peek(block_id):
                return tier.spec.name
        return self.tiers.bottom.spec.name

    def read_block(self, block: Block, job_id: Optional[str] = None) -> "ReadHandle":
        """Serve a block read; returns a handle with the done event and
        the medium ('ram' or the disk device kind) that served it."""
        self._ensure_alive()
        if block.block_id not in self._blocks:
            raise DataNodeError(f"{self.name} does not store {block.block_id}")

        for tier in self.tiers.upper:
            if tier.cache.contains(block.block_id):
                source = tier.spec.source
                done = tier.device.transfer(
                    block.nbytes, tag=("read", block.block_id)
                )
                break
        else:
            source = self._disk_kind()
            done = self.disk.transfer(block.nbytes, tag=("read", block.block_id))
            if self.cache_reads:
                self.cache.insert(block.block_id, block.nbytes, pinned=False)

        if self.on_block_read is not None:
            hook = self.on_block_read
            # Guarded on success *and* liveness: a read aborted by node
            # failure must not drive implicit eviction on the dead slave.
            done.callbacks.append(
                lambda event: hook(block, job_id)
                if event._ok and self.alive
                else None
            )
        return ReadHandle(done=done, source=source, node=self.name)

    def absorb_write(self, block: Block) -> None:
        """Write a new block: absorbed by the buffer cache (write-back).

        Completes synchronously (the cache absorbs at memory speed); use
        :meth:`write_block` when the caller needs an event to wait on.
        """
        self._ensure_alive()
        if block.block_id not in self._blocks:
            if not self.has_capacity(block.nbytes):
                raise DataNodeError(f"{self.name} is out of disk space")
            self.disk_used += block.nbytes
            self._blocks[block.block_id] = block
        self.cache.write_absorb(block.block_id, block.nbytes)

    def write_block(self, block: Block) -> Event:
        """Event-returning wrapper around :meth:`absorb_write`."""
        self.absorb_write(block)
        done = Event(self.env)
        done.succeed(None)
        return done

    # -- migration support (used by the Ignem slave) ---------------------------

    def migration_source(self, block_id: str, dst_tier: str) -> TransferDevice:
        """The device a migration into ``dst_tier`` would read from: the
        highest tier below the destination currently holding the block
        (the backing store holds every replica by definition)."""
        dst = self._upper_tier(dst_tier)
        below = False
        for tier in self.tiers.upper:
            if tier is dst:
                below = True
                continue
            if below and tier.cache.peek(block_id):
                return tier.device
        return self.disk

    def migrate_block_to_tier(
        self, block: Block, dst_tier: str, rate_cap: Optional[float] = None
    ) -> Event:
        """Read a block sequentially from below and pin it in ``dst_tier``.

        This is the mmap+mlock path of paper Section III-B1 generalized
        across tiers: the data lands pinned in the destination tier's
        cache, locked against page-out.  The page-fault-driven read path
        is self-limited well below raw device bandwidth, which
        ``rate_cap`` models; the slack stays available to foreground
        readers.  The returned event fires when the block is fully
        resident.  If a lower upper tier held the block, its copy is
        released on arrival (a replica occupies one upper tier at a
        time).
        """
        self._ensure_alive()
        if block.block_id not in self._blocks:
            raise DataNodeError(f"{self.name} does not store {block.block_id}")
        dst = self._upper_tier(dst_tier)
        if dst.cache.peek(block.block_id):
            dst.cache.pin(block.block_id)
            done = Event(self.env)
            done.succeed(None)
            return done
        source = self.migration_source(block.block_id, dst_tier)
        done = source.transfer(
            block.nbytes, tag=("migrate", block.block_id), rate_cap=rate_cap
        )

        # Guarded pin-in: a migration read that was still in its device
        # latency window when the node died can complete *after* the
        # failure flushed the caches; inserting then would publish a
        # residency delta for a dead node and leave a stale entry in the
        # NameNode's tier index.
        def arrive(event) -> None:
            if not event._ok or not self.alive:
                return
            dst.cache.insert(block.block_id, block.nbytes, pinned=True)
            for tier in self.tiers.upper:
                if tier is not dst and tier.cache.peek(block.block_id):
                    tier.cache.evict(block.block_id)

        done.callbacks.append(arrive)
        return done

    def migrate_block_to_memory(
        self, block: Block, rate_cap: Optional[float] = None
    ) -> Event:
        """Back-compat wrapper: migrate into the top (memory) tier."""
        return self.migrate_block_to_tier(
            block, self.tiers.top.spec.name, rate_cap=rate_cap
        )

    def evict_block_from_tier(self, block_id: str, tier_name: str) -> bool:
        """munmap: release a pinned block from one upper tier (no
        write-back — input data is read-only, paper Section III-B1)."""
        return self._upper_tier(tier_name).cache.evict(block_id)

    def evict_block_from_memory(self, block_id: str) -> bool:
        """Back-compat wrapper: evict from the top (memory) tier."""
        return self.cache.evict(block_id)

    def _upper_tier(self, tier_name: str) -> NodeTier:
        tier = self.tiers.get(tier_name)
        if tier is None or tier.cache is None:
            raise DataNodeError(
                f"{self.name} has no migratable tier {tier_name!r} "
                f"(tiers: {'/'.join(self.tiers.names())})"
            )
        return tier

    # -- failure handling ---------------------------------------------------------

    def fail(self) -> None:
        """Kill the DataNode process: all in-memory state is lost (the OS
        reclaims the slave's mapped pages, paper III-A5).

        Every in-flight disk/RAM transfer fails deterministically so no
        reader or migration waits forever on a device that will never
        drain; the cache flush publishes eviction deltas, keeping the
        NameNode's memory-locality index consistent.
        """
        self.alive = False
        if self.on_liveness_change is not None:
            self.on_liveness_change()
        # Devices fail bottom-up (disk first, as before), then every
        # upper-tier cache flushes top-down — the 2-tier order is exactly
        # the historical disk / ram / cache sequence.
        for tier in reversed(self.tiers.tiers):
            tier.device.fail_all(
                DataNodeError(f"DataNode {self.name} died mid-transfer")
            )
        for tier in self.tiers.upper:
            tier.cache.flush_all()

    def restart(self) -> None:
        """Restart the process on the same server; disk blocks survive."""
        self.alive = True
        if self.on_liveness_change is not None:
            self.on_liveness_change()

    def _ensure_alive(self) -> None:
        if not self.alive:
            raise DataNodeError(f"DataNode {self.name} is down")

    def _disk_kind(self) -> str:
        name = self.disk.name.lower()
        if "ssd" in name:
            return "ssd"
        return "hdd"

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return f"<DataNode {self.name} {status} blocks={len(self._blocks)}>"


class ReadHandle:
    """Result of :meth:`DataNode.read_block`."""

    __slots__ = ("done", "source", "node")

    def __init__(self, done: Event, source: str, node: str):
        self.done = done
        self.source = source
        self.node = node
