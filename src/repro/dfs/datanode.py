"""DataNode: block storage on one server.

Each DataNode owns a disk device (HDD or SSD), a RAM device for page-cache
reads, and a :class:`~repro.storage.BufferCache`.  The Ignem slave (when
enabled) lives inside the DataNode exactly as the paper implements it
inside the HDFS DataNode process, and hooks the read path for implicit
eviction.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..sim.engine import Environment
from ..sim.events import Event
from ..storage.buffer_cache import BufferCache
from ..storage.device import GB, TransferDevice
from ..storage.presets import make_hdd, make_ram
from .blocks import Block


class DataNodeError(Exception):
    """Raised for invalid operations on a DataNode (e.g. reading a block
    it does not store, or any operation while the node is down)."""


class DataNode:
    """One storage server in the cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Server name (also the network node name).
    disk:
        Backing disk device; defaults to the calibrated HDD preset.
    ram:
        RAM device serving cache hits; defaults to the RAM preset.
    cache_capacity:
        Buffer-cache capacity in bytes (the paper's servers have 128GB).
    cache_reads:
        Whether plain disk reads populate the (unpinned) cache.  Disabled
        by default: the paper's workloads read singly-accessed cold data
        and all runs start with flushed caches.
    disk_capacity:
        Disk capacity in bytes (the paper's servers have a 1TB HDD).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        disk: Optional[TransferDevice] = None,
        ram: Optional[TransferDevice] = None,
        cache_capacity: float = 128 * GB,
        cache_reads: bool = False,
        disk_capacity: float = 1024 * GB,
    ):
        if disk_capacity <= 0:
            raise ValueError("disk_capacity must be positive")
        self.env = env
        self.name = name
        self.disk_capacity = float(disk_capacity)
        self.disk_used = 0.0
        self.disk = disk if disk is not None else make_hdd(env, f"hdd-{name}")
        self.ram = ram if ram is not None else make_ram(env, f"ram-{name}")
        self.cache = BufferCache(env, capacity=cache_capacity, flush_device=self.disk)
        self.cache_reads = cache_reads
        self.alive = True

        self._blocks: Dict[str, Block] = {}
        #: Read-path hook: called with (block, job_id) after each block
        #: read served by this node.  Ignem's slave uses it for implicit
        #: eviction; HDFS read calls carry the job ID (paper III-B2).
        self.on_block_read: Optional[Callable[[Block, Optional[str]], None]] = None
        #: Residency-delta subscriber (the NameNode's memory-locality
        #: index); receives ``(node_name, key, resident)``.
        self._residency_listener: Optional[Callable[[str, str, bool], None]] = None

    # -- residency delta publication -----------------------------------------

    def attach_residency_listener(
        self, listener: Callable[[str, str, bool], None]
    ) -> None:
        """Start pushing buffer-cache residency deltas to ``listener``.

        Deltas carry ``(node_name, key, resident)`` and cover every way a
        key can (stop) being RAM-resident: migration pin-ins, read-path
        caching, write absorption, LRU eviction, explicit eviction, and
        the cache flush of a node failure.
        """
        self._residency_listener = listener
        self.cache.on_residency_change = self._publish_residency

    def detach_residency_listener(self) -> None:
        self._residency_listener = None
        self.cache.on_residency_change = None

    def _publish_residency(self, key, resident: bool) -> None:
        listener = self._residency_listener
        if listener is not None:
            listener(self.name, key, resident)

    # -- block placement ----------------------------------------------------

    def has_capacity(self, nbytes: float) -> bool:
        """Whether the disk can take ``nbytes`` more."""
        return self.disk_used + nbytes <= self.disk_capacity

    def store_block(self, block: Block) -> None:
        """Place a replica of ``block`` on this node's disk (no IO cost;
        dataset generation happens before the measured run)."""
        if not self.alive:
            raise DataNodeError(f"DataNode {self.name} is down")
        if block.block_id in self._blocks:
            return
        if self.disk_used + block.nbytes > self.disk_capacity:
            raise DataNodeError(f"{self.name} is out of disk space")
        self.disk_used += block.nbytes
        self._blocks[block.block_id] = block

    def has_block(self, block_id: str) -> bool:
        return self.alive and block_id in self._blocks

    def stored_blocks(self) -> Set[str]:
        return set(self._blocks.keys())

    def drop_block(self, block_id: str) -> None:
        dropped = self._blocks.pop(block_id, None)
        if dropped is not None:
            self.disk_used = max(0.0, self.disk_used - dropped.nbytes)
        self.cache.evict(block_id)

    # -- read / write paths ----------------------------------------------------

    def block_in_memory(self, block_id: str) -> bool:
        """Whether a read of ``block_id`` would be served from RAM."""
        return self.alive and self.cache.peek(block_id)

    def read_block(self, block: Block, job_id: Optional[str] = None) -> "ReadHandle":
        """Serve a block read; returns a handle with the done event and
        the medium ('ram' or the disk device kind) that served it."""
        self._ensure_alive()
        if block.block_id not in self._blocks:
            raise DataNodeError(f"{self.name} does not store {block.block_id}")

        if self.cache.contains(block.block_id):
            source = "ram"
            done = self.ram.transfer(block.nbytes, tag=("read", block.block_id))
        else:
            source = self._disk_kind()
            done = self.disk.transfer(block.nbytes, tag=("read", block.block_id))
            if self.cache_reads:
                self.cache.insert(block.block_id, block.nbytes, pinned=False)

        if self.on_block_read is not None:
            hook = self.on_block_read
            # Guarded on success *and* liveness: a read aborted by node
            # failure must not drive implicit eviction on the dead slave.
            done.callbacks.append(
                lambda event: hook(block, job_id)
                if event._ok and self.alive
                else None
            )
        return ReadHandle(done=done, source=source, node=self.name)

    def absorb_write(self, block: Block) -> None:
        """Write a new block: absorbed by the buffer cache (write-back).

        Completes synchronously (the cache absorbs at memory speed); use
        :meth:`write_block` when the caller needs an event to wait on.
        """
        self._ensure_alive()
        if block.block_id not in self._blocks:
            if not self.has_capacity(block.nbytes):
                raise DataNodeError(f"{self.name} is out of disk space")
            self.disk_used += block.nbytes
            self._blocks[block.block_id] = block
        self.cache.write_absorb(block.block_id, block.nbytes)

    def write_block(self, block: Block) -> Event:
        """Event-returning wrapper around :meth:`absorb_write`."""
        self.absorb_write(block)
        done = Event(self.env)
        done.succeed(None)
        return done

    # -- migration support (used by the Ignem slave) ---------------------------

    def migrate_block_to_memory(
        self, block: Block, rate_cap: Optional[float] = None
    ) -> Event:
        """Read a block sequentially from disk and pin it in the cache.

        This is the mmap+mlock path of paper Section III-B1: the data
        lands in the OS buffer cache, locked against page-out.  The
        page-fault-driven read path is self-limited well below raw disk
        bandwidth, which ``rate_cap`` models; the slack stays available
        to foreground readers.  The returned event fires when the block
        is fully resident.
        """
        self._ensure_alive()
        if block.block_id not in self._blocks:
            raise DataNodeError(f"{self.name} does not store {block.block_id}")
        if self.cache.peek(block.block_id):
            self.cache.pin(block.block_id)
            done = Event(self.env)
            done.succeed(None)
            return done
        done = self.disk.transfer(
            block.nbytes, tag=("migrate", block.block_id), rate_cap=rate_cap
        )
        # Guarded pin-in: a migration read that was still in its device
        # latency window when the node died can complete *after* the
        # failure flushed the cache; inserting then would publish a
        # residency delta for a dead node and leave a stale entry in the
        # NameNode's memory-locality index.
        done.callbacks.append(
            lambda event: self.cache.insert(block.block_id, block.nbytes, pinned=True)
            if event._ok and self.alive
            else None
        )
        return done

    def evict_block_from_memory(self, block_id: str) -> bool:
        """munmap: release a pinned block (no write-back — input data is
        read-only, paper Section III-B1)."""
        return self.cache.evict(block_id)

    # -- failure handling ---------------------------------------------------------

    def fail(self) -> None:
        """Kill the DataNode process: all in-memory state is lost (the OS
        reclaims the slave's mapped pages, paper III-A5).

        Every in-flight disk/RAM transfer fails deterministically so no
        reader or migration waits forever on a device that will never
        drain; the cache flush publishes eviction deltas, keeping the
        NameNode's memory-locality index consistent.
        """
        self.alive = False
        self.disk.fail_all(DataNodeError(f"DataNode {self.name} died mid-transfer"))
        self.ram.fail_all(DataNodeError(f"DataNode {self.name} died mid-transfer"))
        self.cache.flush_all()

    def restart(self) -> None:
        """Restart the process on the same server; disk blocks survive."""
        self.alive = True

    def _ensure_alive(self) -> None:
        if not self.alive:
            raise DataNodeError(f"DataNode {self.name} is down")

    def _disk_kind(self) -> str:
        name = self.disk.name.lower()
        if "ssd" in name:
            return "ssd"
        return "hdd"

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return f"<DataNode {self.name} {status} blocks={len(self._blocks)}>"


class ReadHandle:
    """Result of :meth:`DataNode.read_block`."""

    __slots__ = ("done", "source", "node")

    def __init__(self, done: Event, source: str, node: str):
        self.done = done
        self.source = source
        self.node = node
