"""Block-level data model for the distributed file system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..storage.device import MB

#: Default block size used across the paper's evaluation (Section II-B).
DEFAULT_BLOCK_SIZE = 64 * MB


@dataclass(slots=True, unsafe_hash=True)
class Block:
    """One chunk of a DFS file.  Treat as immutable: blocks are shared
    between the namespace, DataNodes, and task requests (``frozen=True``
    would enforce that, but its per-field ``object.__setattr__`` makes
    dataset materialization measurably slower)."""

    block_id: str
    path: str
    index: int
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"block size must be non-negative, got {self.nbytes}")


@dataclass(slots=True, unsafe_hash=True)
class FileMetadata:
    """Namespace entry: a path plus its ordered blocks.

    ``replication`` records the per-file target replication factor (HDFS
    files carry their own; job outputs often use 1 while inputs use 3).
    """

    path: str
    blocks: Tuple[Block, ...]
    replication: int = 3

    @property
    def nbytes(self) -> float:
        return sum(block.nbytes for block in self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


def split_into_blocks(
    path: str, nbytes: float, block_size: float = DEFAULT_BLOCK_SIZE
) -> List[Block]:
    """Partition a file of ``nbytes`` into fixed-size blocks.

    The final block holds the remainder; zero-byte files get one empty
    block so every file has at least one block (mirrors HDFS semantics
    closely enough for scheduling purposes).
    """
    if nbytes < 0:
        raise ValueError(f"file size must be non-negative, got {nbytes}")
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")

    blocks: List[Block] = []
    remaining = float(nbytes)
    index = 0
    while remaining > 0:
        size = min(block_size, remaining)
        blocks.append(Block(f"{path}#blk{index}", path, index, size))
        remaining -= size
        index += 1
    if not blocks:
        blocks.append(Block(f"{path}#blk0", path, 0, 0.0))
    return blocks
