"""Re-replication of under-replicated blocks after DataNode failures.

Real HDFS restores the replication factor when a DataNode dies: the
NameNode schedules copies from surviving replica holders to other live
nodes.  The paper leans on this (Section III-A5: after a server failure
"the file system removes the server from the namespace map" and Ignem
simply sees the updated replica locations) — this module supplies the
restore half so long-running simulated clusters keep their fault
tolerance.

Copies move real bytes: a disk read on the source, a network transfer,
and a buffered write on the destination, capped at a configurable number
of concurrent copies per source node (HDFS throttles re-replication for
the same reason Ignem migrates one block at a time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..net.network import Network, NetworkError
from ..sim.engine import Environment
from ..sim.rand import RandomSource
from .blocks import Block
from .datanode import DataNodeError
from .namenode import NameNode


class ReplicationMonitor:
    """Restores replication factors after node failures.

    Event-driven rather than scan-based so an idle simulation can drain:
    call :meth:`handle_node_failure` when a DataNode dies (the cluster
    wires this automatically when the monitor is enabled).
    """

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        network: Network,
        rng: Optional[RandomSource] = None,
        max_concurrent_per_source: int = 2,
    ):
        if max_concurrent_per_source < 1:
            raise ValueError("max_concurrent_per_source must be >= 1")
        self.env = env
        self.namenode = namenode
        self.network = network
        self.rng = rng or RandomSource(0)
        self.max_concurrent_per_source = max_concurrent_per_source

        self.copies_completed = 0
        self.copies_failed = 0
        self._active_by_source: Dict[str, int] = {}

    # -- public API --------------------------------------------------------------

    def under_replicated_blocks(self) -> List[Block]:
        """All blocks whose live replica count is below the target."""
        result: List[Block] = []
        live_nodes = len(self.namenode.live_datanodes())
        for path in self.namenode.list_files():
            metadata = self.namenode.get_file(path)
            target = min(metadata.replication, live_nodes)
            for block in metadata.blocks:
                live = self.namenode.get_block_locations(block.block_id)
                if 0 < len(live) < target:
                    result.append(block)
        return result

    def missing_blocks(self) -> List[Block]:
        """Blocks with zero live replicas (data loss)."""
        result: List[Block] = []
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                if not self.namenode.get_block_locations(block.block_id):
                    result.append(block)
        return result

    def handle_node_failure(self, node_name: str) -> int:
        """Schedule re-replication for every block the dead node held.

        Returns the number of copy tasks scheduled.  Blocks with no
        surviving replica are unrecoverable (counted in
        :attr:`copies_failed`).
        """
        self.copies_failed += len(self.missing_blocks())
        scheduled = 0
        for block in self.under_replicated_blocks():
            sources = self.namenode.get_block_locations(block.block_id)
            if not sources:
                self.copies_failed += 1
                continue
            target = self._pick_target(block)
            if target is None:
                continue
            source = self.rng.choice(sorted(sources))
            self.env.process(
                self._copy(block, source, target),
                name=f"re-replicate-{block.block_id}",
            )
            scheduled += 1
        return scheduled

    # -- internals -------------------------------------------------------------------

    def _pick_target(self, block: Block) -> Optional[str]:
        holders: Set[str] = set(self.namenode.get_block_locations(block.block_id))
        candidates = [
            dn.name for dn in self.namenode.live_datanodes() if dn.name not in holders
        ]
        if not candidates:
            return None
        return self.rng.choice(sorted(candidates))

    def _copy(self, block: Block, source: str, target: str):
        # Per-source concurrency cap: wait politely.
        while self._active_by_source.get(source, 0) >= self.max_concurrent_per_source:
            yield self.env.timeout(0.5)
        self._active_by_source[source] = self._active_by_source.get(source, 0) + 1
        try:
            source_dn = self.namenode.datanode(source)
            target_dn = self.namenode.datanode(target)
            if not (source_dn.alive and target_dn.alive):
                self.copies_failed += 1
                return
            read = source_dn.read_block(block)
            yield read.done
            yield self.network.transfer(
                source, target, block.nbytes, tag=("re-replicate", block.block_id)
            )
            if not target_dn.alive:
                self.copies_failed += 1
                return
            yield target_dn.write_block(block)
            # Register the new location with the namespace map.
            locations = self.namenode._locations.get(block.block_id)
            if locations is not None and target not in locations:
                locations.append(target)
            self.copies_completed += 1
        except (DataNodeError, NetworkError):
            # An endpoint died mid-copy; the next failure notification
            # re-examines the block's replication level.
            self.copies_failed += 1
        finally:
            self._active_by_source[source] -= 1
