"""Self-healing replication: repair, thinning, rebalancing, decommission.

Real HDFS restores the replication factor when a DataNode dies: the
NameNode's ReplicationMonitor schedules copies from surviving replica
holders to other live nodes.  The paper leans on this (Section III-A5:
after a server failure "the file system removes the server from the
namespace map" and Ignem simply sees the updated replica locations) —
this module supplies the restore half so long-running simulated clusters
keep their fault tolerance, plus the elasticity half: background
rebalancing toward freshly joined nodes and graceful decommission that
drains a node's blocks before it is released.

Copies move real bytes through a pipelined chain (HDFS write pipeline):
one disk read on the source — optionally bandwidth-capped — then a
store-and-forward hop per destination, each committing its replica into
the namespace map as soon as it lands.  Concurrency is bounded per
source and per target, failed copies retry with exponential backoff
(the PR 2 command-machinery discipline), and repairs that cannot make
progress park on a topology-change event rather than polling, so an
idle simulation still drains.

Everything is event-driven: the cluster notifies the monitor on
failure/restart/join, and each notification triggers a full
under/over-replication sweep.  All randomized picks draw from one
dedicated child stream over sorted candidate lists, keeping runs
byte-reproducible per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from ..net.network import Network, NetworkError
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.rand import RandomSource
from .blocks import Block
from .datanode import DataNodeError
from .namenode import NameNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.api import Observability
    from ..obs.registry import MetricsRegistry


@dataclass(frozen=True)
class RepairConfig:
    """Knobs for the repair scheduler (defaults mirror the PR 2 command
    machinery: bounded retries with exponential backoff)."""

    #: Concurrent outbound copies per source node.
    max_concurrent_per_source: int = 2
    #: Concurrent inbound copies per destination node.
    max_concurrent_per_target: int = 2
    #: Bandwidth cap (bytes/s) on the repair disk read, or ``None`` for
    #: the device's fair share (HDFS throttles re-replication so repair
    #: traffic cannot starve foreground jobs).
    copy_rate_cap: Optional[float] = None
    #: Copy attempts before a block's repair is parked/abandoned.
    max_retries: int = 3
    #: Base retry delay; doubles per attempt.
    backoff: float = 0.25
    backoff_factor: float = 2.0
    #: Polite wait while all copy slots on an endpoint are busy.
    poll_interval: float = 0.5
    #: Background rebalancing toward freshly joined nodes.
    rebalance: bool = True

    def __post_init__(self) -> None:
        if self.max_concurrent_per_source < 1:
            raise ValueError("max_concurrent_per_source must be >= 1")
        if self.max_concurrent_per_target < 1:
            raise ValueError("max_concurrent_per_target must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def retry_delay(self, attempt: int) -> float:
        return self.backoff * self.backoff_factor ** max(0, attempt - 1)


class ReplicationMonitor:
    """Tracks expected vs. live replica counts and heals the difference.

    Event-driven rather than scan-based so an idle simulation can drain:
    the cluster calls :meth:`handle_node_failure`,
    :meth:`handle_node_restart`, and :meth:`handle_node_join` on
    topology changes (wired automatically when the monitor is enabled),
    and :meth:`decommission` drains a node before release.
    """

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        network: Network,
        rng: Optional[RandomSource] = None,
        max_concurrent_per_source: int = 2,
        config: Optional[RepairConfig] = None,
        registry: Optional["MetricsRegistry"] = None,
        transport=None,
    ):
        if max_concurrent_per_source < 1:
            raise ValueError("max_concurrent_per_source must be >= 1")
        self.env = env
        self.namenode = namenode
        self.network = network
        self.rng = rng or RandomSource(0)
        #: Control-plane transport; when set, each chain copy announces
        #: itself to the pipeline targets with a one-way
        #: :class:`~repro.transport.messages.ReplicaPipelineMsg`.
        self.transport = transport
        if config is None:
            config = RepairConfig(max_concurrent_per_source=max_concurrent_per_source)
        self.config = config
        self.max_concurrent_per_source = config.max_concurrent_per_source
        self.registry = registry
        #: Tracing hooks (attached by ``Observability.attach``).
        self.obs: Optional["Observability"] = None
        #: Sabotage/self-test switch: ``False`` turns every handler into
        #: a no-op so DST can prove the oracles convict a cluster that
        #: does not heal.
        self.enabled = True

        self.copies_completed = 0
        self.copies_failed = 0
        self.copies_discarded = 0
        self.copy_retries = 0
        self.excess_dropped = 0
        self.rebalance_moves = 0
        self.decommissions_completed = 0

        self._active_by_source: Dict[str, int] = {}
        self._active_by_target: Dict[str, int] = {}
        #: Block ids with an in-flight repair process (dedupe).
        self._repairing: Set[str] = set()
        #: Nodes with an in-flight rebalance process.
        self._rebalancing: Set[str] = set()
        #: node -> completion Event for in-flight decommissions.
        self._decommissioning: Dict[str, Event] = {}
        #: Parked processes waiting for any topology change.
        self._topology_waiters: List[Event] = []
        #: Memoized block_id -> per-file expected replication factor.
        self._expected: Dict[str, int] = {}

    # -- public API --------------------------------------------------------------

    def under_replicated_blocks(self) -> List[Block]:
        """All blocks whose live replica count is below the target."""
        result: List[Block] = []
        live_nodes = len(self.namenode.live_datanodes())
        for path in self.namenode.list_files():
            metadata = self.namenode.get_file(path)
            target = min(metadata.replication, live_nodes)
            for block in metadata.blocks:
                live = self.namenode.get_block_locations(block.block_id)
                if 0 < len(live) < target:
                    result.append(block)
        return result

    def over_replicated_blocks(self) -> List[Block]:
        """Blocks with more live replicas than the target (a restarted
        node re-exposing replicas that were re-created elsewhere)."""
        result: List[Block] = []
        live_nodes = len(self.namenode.live_datanodes())
        for path in self.namenode.list_files():
            metadata = self.namenode.get_file(path)
            target = min(metadata.replication, live_nodes)
            for block in metadata.blocks:
                live = self.namenode.get_block_locations(block.block_id)
                if len(live) > target:
                    result.append(block)
        return result

    def missing_blocks(self) -> List[Block]:
        """Blocks with zero live replicas (data loss)."""
        result: List[Block] = []
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                if not self.namenode.get_block_locations(block.block_id):
                    result.append(block)
        return result

    def handle_node_failure(self, node_name: str) -> int:
        """Schedule re-replication for every under-replicated block.

        Returns the number of repair processes scheduled.  Blocks with no
        surviving replica are unrecoverable (counted in
        :attr:`copies_failed`).
        """
        self._notify_topology()
        if not self.enabled:
            return 0
        lost = len(self.missing_blocks())
        if lost:
            self._fail(lost)
        return self._schedule_repairs()

    def handle_node_restart(self, node_name: str) -> int:
        """React to a node coming back: thin excess replicas the restart
        re-exposed, and re-scan for under-replication (a repair that gave
        up while this node was the only hope can now proceed).

        Returns the number of excess replicas dropped.
        """
        self._notify_topology()
        if not self.enabled:
            return 0
        dropped = self._thin_excess()
        self._schedule_repairs()
        return dropped

    def handle_node_join(self, node_name: str) -> None:
        """React to a brand-new node: re-scan (its capacity may unblock
        parked repairs) and start background rebalancing toward it."""
        self._notify_topology()
        if not self.enabled:
            return
        self._schedule_repairs()
        if not self.config.rebalance or node_name in self._rebalancing:
            return
        self._rebalancing.add(node_name)
        self.env.process(
            self._rebalance(node_name), name=f"rebalance-{node_name}"
        )

    def decommission(self, node_name: str) -> Event:
        """Gracefully drain ``node_name``: copy every resident block to
        other live nodes, then succeed the returned event.  The drain
        refuses to finish while any block would drop below its (live-node
        capped) replication factor — if the cluster cannot absorb the
        replicas the event stays pending until topology changes make it
        possible."""
        pending = self._decommissioning.get(node_name)
        if pending is not None:
            return pending
        done = Event(self.env)
        self._decommissioning[node_name] = done
        self.env.process(
            self._drain(node_name, done), name=f"decommission-{node_name}"
        )
        return done

    def decommissioning_nodes(self) -> List[str]:
        return sorted(self._decommissioning)

    # -- repair scheduling -------------------------------------------------------

    def _schedule_repairs(self) -> int:
        scheduled = 0
        for block in self.under_replicated_blocks():
            if block.block_id in self._repairing:
                continue
            self._repairing.add(block.block_id)
            self.env.process(
                self._repair_block(block), name=f"re-replicate-{block.block_id}"
            )
            scheduled += 1
        return scheduled

    def _repair_block(self, block: Block):
        """One block's repair loop: copy until the target count is met,
        retrying with backoff and parking on topology changes when no
        placement is currently possible."""
        block_id = block.block_id
        attempt = 0
        try:
            while self.enabled:
                state = self._replication_state(block_id)
                if state is None:
                    return  # file deleted
                target, live = state
                need = target - len(live)
                if need <= 0:
                    return
                if not live:
                    # Every holder died while we were repairing.  If one
                    # restarts, handle_node_restart re-scans.
                    self._fail(need)
                    return
                candidates = self._repair_candidates(block)
                if not candidates:
                    yield self._wait_topology()
                    attempt = 0
                    continue
                source = self.rng.choice(sorted(live))
                targets = self._sample_targets(candidates, need)
                ok = yield from self._chain_copy(
                    block, source, targets, reason="repair"
                )
                if ok:
                    attempt = 0
                    continue
                attempt += 1
                if attempt > self.config.max_retries:
                    # Out of retries: park until the topology changes
                    # (a restart or loss-window end re-notifies us).
                    yield self._wait_topology()
                    attempt = 0
                    continue
                self.copy_retries += 1
                self._count("copy_retries")
                yield self.env.timeout(self.config.retry_delay(attempt))
        finally:
            self._repairing.discard(block_id)

    def _chain_copy(self, block: Block, source: str, targets: Sequence[str], reason: str):
        """Pipelined re-replication: one source disk read, then a
        store-and-forward network hop per destination, each committing
        its replica as soon as it lands.  Returns True if every hop
        committed."""
        if not targets:
            return False
        yield from self._acquire(source, targets)
        if self.transport is not None:
            # Announce the pipeline to its targets (one-way bookkeeping;
            # delivery is synchronous and touches no simulated clocks).
            from ..transport.messages import ReplicaPipelineMsg

            notice = ReplicaPipelineMsg(
                block_id=block.block_id,
                source=source,
                targets=tuple(targets),
                reason=reason,
            )
            for tgt in targets:
                try:
                    self.transport.send(f"datanode/{tgt}", notice)
                except NetworkError:
                    pass  # unregistered endpoint: the copy itself decides
        start = self.env.now
        committed = 0
        ok = True
        try:
            yield self._read_from(source, block)
            prev = source
            for tgt in targets:
                yield self.network.transfer(
                    prev, tgt, block.nbytes, tag=("re-replicate", block.block_id)
                )
                yield self.namenode.datanode(tgt).write_block(block)
                if self._commit_replica(block, tgt, reason):
                    committed += 1
                prev = tgt
        except (DataNodeError, NetworkError):
            # An endpoint died or the message was lost mid-chain; the
            # caller's retry loop re-examines the block's replication.
            ok = False
        finally:
            self._release(source, targets)
        obs = self.obs
        if obs is not None:
            obs.on_repair_copy(
                block.block_id,
                source,
                list(targets),
                block.nbytes,
                start,
                "completed" if ok else "failed",
                reason,
            )
        if committed:
            self._notify_topology()
        return ok and committed > 0

    def _commit_replica(self, block: Block, target: str, reason: str) -> bool:
        """Register the freshly written replica, or discard it if the
        block no longer needs it (a concurrent repair won the race or the
        file was deleted)."""
        block_id = block.block_id
        state = self._replication_state(block_id)
        already_holder = target in self.namenode.block_replicas(block_id)
        stale = (
            state is None
            or already_holder
            or (reason == "repair" and len(state[1]) >= state[0])
        )
        if stale:
            if not already_holder:
                # Losing a commit race to a concurrent copy chain means
                # the target now legitimately holds the block — dropping
                # would destroy the winner's replica while the NameNode
                # still lists the holder.  Only unregistered bytes go.
                self.namenode.datanode(target).drop_block(block_id)
            self.copies_discarded += 1
            self._count("copies_discarded")
            return False
        self.namenode.add_block_replica(block_id, target)
        self.copies_completed += 1
        self._count("copies_completed")
        return True

    # -- excess thinning ---------------------------------------------------------

    def _thin_excess(self) -> int:
        """Drop excess replicas a restarted node re-exposed.  Replicas
        resident in an upper tier (an Ignem-migrated copy) are never the
        victim — thinning must not fight the migration subsystem."""
        dropped = 0
        live_nodes = len(self.namenode.live_datanodes())
        for path in self.namenode.list_files():
            metadata = self.namenode.get_file(path)
            target = min(metadata.replication, live_nodes)
            for block in metadata.blocks:
                while True:
                    live = self.namenode.get_block_locations(block.block_id)
                    if len(live) <= target:
                        break
                    victim = self._thin_victim(block.block_id, live)
                    if victim is None:
                        break  # every excess holder is migration-pinned
                    self.namenode.remove_block_replica(block.block_id, victim)
                    self.namenode.datanode(victim).drop_block(block.block_id)
                    self.excess_dropped += 1
                    self._count("excess_dropped")
                    obs = self.obs
                    if obs is not None:
                        obs.on_repair_drop(block.block_id, victim, "excess")
                    dropped += 1
        return dropped

    def _thin_block(self, block_id: str) -> int:
        """Drop one block's replicas down to its target count."""
        dropped = 0
        while True:
            state = self._replication_state(block_id)
            if state is None:
                break
            target, live = state
            if len(live) <= target:
                break
            victim = self._thin_victim(block_id, live)
            if victim is None:
                break
            self.namenode.remove_block_replica(block_id, victim)
            self.namenode.datanode(victim).drop_block(block_id)
            self.excess_dropped += 1
            self._count("excess_dropped")
            obs = self.obs
            if obs is not None:
                obs.on_repair_drop(block_id, victim, "excess")
            dropped += 1
        return dropped

    def _thin_victim(self, block_id: str, live: Sequence[str]) -> Optional[str]:
        candidates = []
        for name in live:
            dn = self.namenode.datanode(name)
            tier = dn.block_tier(block_id)
            if tier is not None and tier != dn.tiers.bottom.spec.name:
                continue  # upward-migrated replica: byte accounting pins it
            candidates.append(name)
        if not candidates:
            return None
        # Deterministic: relieve the fullest disk, ties by name.
        return max(candidates, key=lambda n: (self.namenode.datanode(n).disk_used, n))

    # -- rebalancing -------------------------------------------------------------

    def _rebalance(self, node: str):
        """Move replicas toward a freshly joined node, one at a time,
        until it carries its fair share (floor of the cluster average)."""
        try:
            while self.enabled:
                move = self._pick_rebalance_move(node)
                if move is None:
                    return
                donor, block = move
                ok = yield from self._chain_copy(
                    block, donor, [node], reason="rebalance"
                )
                if not ok:
                    return
                # The copy committed node as a new holder; retire the
                # donor's replica to complete the move.
                live = self.namenode.get_block_locations(block.block_id)
                if node in live and donor in live and len(live) > 1:
                    self.namenode.remove_block_replica(block.block_id, donor)
                    self.namenode.datanode(donor).drop_block(block.block_id)
                    self.rebalance_moves += 1
                    self._count("rebalance_moves")
                    obs = self.obs
                    if obs is not None:
                        obs.on_repair_drop(block.block_id, donor, "rebalance")
                else:
                    # A concurrent chain re-homed the donor's replica while
                    # our copy was in flight, so the move degenerated into a
                    # plain extra copy.  Thin it back to target — nothing
                    # else revisits excess after a join.
                    self._thin_block(block.block_id)
        finally:
            self._rebalancing.discard(node)

    def _pick_rebalance_move(self, node: str):
        nn = self.namenode
        try:
            dn = nn.datanode(node)
        except Exception:
            return None
        if not dn.alive or node in self._decommissioning:
            return None
        counts = {
            d.name: 0
            for d in nn.live_datanodes()
            if d.name not in self._decommissioning
        }
        if node not in counts or len(counts) < 2:
            return None
        blocks_by_holder: Dict[str, List[Block]] = {n: [] for n in counts}
        total = 0
        for path in nn.list_files():
            for block in nn.get_file(path).blocks:
                for holder in nn.get_block_locations(block.block_id):
                    if holder in counts:
                        counts[holder] += 1
                        total += 1
                        blocks_by_holder[holder].append(block)
        fair = total // len(counts)
        if counts[node] >= fair:
            return None
        for donor in sorted(counts, key=lambda n: (-counts[n], n)):
            if donor == node or counts[donor] <= fair:
                continue
            donor_dn = nn.datanode(donor)
            bottom = donor_dn.tiers.bottom.spec.name
            for block in sorted(blocks_by_holder[donor], key=lambda b: b.block_id):
                if node in nn.block_replicas(block.block_id):
                    continue
                tier = donor_dn.block_tier(block.block_id)
                if tier is not None and tier != bottom:
                    continue  # never move an upward-migrated replica
                if dn.disk_used + block.nbytes > dn.disk_capacity:
                    continue
                return donor, block
        return None

    # -- decommission ------------------------------------------------------------

    def _drain(self, node: str, done: Event):
        """Copy every block the node holds whose replication would drop
        below target on release, then succeed ``done``.  Parks on
        topology changes whenever no progress is possible."""
        start = self.env.now
        failures = 0
        moved = 0
        while True:
            if not self.enabled:
                yield self._wait_topology()
                continue
            nn = self.namenode
            try:
                dn = nn.datanode(node)
            except Exception:
                # Node vanished from the namespace (e.g. killed and
                # removed); nothing left to drain but the decommission
                # can never complete cleanly.
                self._decommissioning.pop(node, None)
                return
            if not dn.alive:
                # Died mid-drain; resume if it restarts.
                yield self._wait_topology()
                continue
            pending = self._drain_pending(node)
            if not pending:
                self._decommissioning.pop(node, None)
                self.decommissions_completed += 1
                self._count("decommissions_completed")
                obs = self.obs
                if obs is not None:
                    obs.on_repair_decommission(node, start, moved)
                done.succeed((node, moved))
                self._notify_topology()
                return
            progressed = False
            for block in pending:
                if block.block_id in self._repairing:
                    continue  # a failure-repair is already copying it
                candidates = self._repair_candidates(block)
                if not candidates:
                    continue
                targets = self._sample_targets(candidates, 1)
                ok = yield from self._chain_copy(
                    block, node, targets, reason="decommission"
                )
                if ok:
                    progressed = True
                    moved += 1
            if progressed:
                failures = 0
                continue
            failures += 1
            if failures > self.config.max_retries:
                yield self._wait_topology()
                failures = 0
                continue
            self.copy_retries += 1
            self._count("copy_retries")
            yield self.env.timeout(self.config.retry_delay(failures))

    def _drain_pending(self, node: str) -> List[Block]:
        """Blocks on ``node`` that would fall below their replication
        factor if the node were released right now.

        Deliberately NOT capped by the live-node count: a decommission
        must never complete while any block would end below its full
        replication factor, even if the shrunken cluster could not hold
        more replicas anyway.  In that situation the drain parks until
        a join (or restart) makes the release safe — exactly HDFS's
        decommission-stuck-in-progress behavior."""
        nn = self.namenode
        pending: List[Block] = []
        for path in nn.list_files():
            metadata = nn.get_file(path)
            required = metadata.replication
            for block in metadata.blocks:
                if node not in nn.block_replicas(block.block_id):
                    continue
                safe = [
                    n
                    for n in nn.get_block_locations(block.block_id)
                    if n != node and n not in self._decommissioning
                ]
                if len(safe) < required:
                    pending.append(block)
        return pending

    # -- shared copy mechanics ---------------------------------------------------

    def _repair_candidates(self, block: Block) -> List[str]:
        holders = set(self.namenode.block_replicas(block.block_id))
        return [
            dn.name
            for dn in self.namenode.live_datanodes()
            if dn.name not in holders
            and dn.name not in self._decommissioning
            and dn.disk_used + block.nbytes <= dn.disk_capacity
        ]

    def _sample_targets(self, candidates: Sequence[str], k: int) -> List[str]:
        ordered = sorted(candidates)
        if len(ordered) <= k:
            return ordered
        return self.rng.sample(ordered, k)

    def _read_from(self, source: str, block: Block) -> Event:
        dn = self.namenode.datanode(source)
        if not dn.alive or not dn.has_block(block.block_id):
            raise DataNodeError(f"repair source {source} lost {block.block_id}")
        return dn.disk.transfer(
            block.nbytes,
            tag=("repair-read", block.block_id),
            rate_cap=self.config.copy_rate_cap,
        )

    def _acquire(self, source: str, targets: Sequence[str]):
        cfg = self.config
        while True:
            busy = self._active_by_source.get(source, 0) >= cfg.max_concurrent_per_source
            if not busy:
                busy = any(
                    self._active_by_target.get(t, 0) >= cfg.max_concurrent_per_target
                    for t in targets
                )
            if not busy:
                break
            yield self.env.timeout(cfg.poll_interval)
        self._active_by_source[source] = self._active_by_source.get(source, 0) + 1
        for t in targets:
            self._active_by_target[t] = self._active_by_target.get(t, 0) + 1

    def _release(self, source: str, targets: Sequence[str]) -> None:
        self._active_by_source[source] -= 1
        for t in targets:
            self._active_by_target[t] -= 1

    def _replication_state(self, block_id: str):
        """(target, live_holders) for a block, or None if it no longer
        exists in the namespace."""
        nn = self.namenode
        if not nn.is_block(block_id):
            return None
        expected = self._expected.get(block_id)
        if expected is None:
            for path in nn.list_files():
                metadata = nn.get_file(path)
                for blk in metadata.blocks:
                    self._expected[blk.block_id] = metadata.replication
            expected = self._expected.get(block_id)
            if expected is None:
                return None
        target = min(expected, len(nn.live_datanodes()))
        return target, nn.get_block_locations(block_id)

    # -- topology parking --------------------------------------------------------

    def _wait_topology(self) -> Event:
        """An event that fires at the next topology change (failure,
        restart, join, committed repair, or decommission completion).
        Parking on it instead of polling lets the sim drain when nothing
        else can happen."""
        event = Event(self.env)
        self._topology_waiters.append(event)
        return event

    def _notify_topology(self) -> None:
        waiters, self._topology_waiters = self._topology_waiters, []
        for event in waiters:
            event.succeed(None)

    def retry_stalled(self) -> None:
        """External nudge (e.g. a network loss window ending): wake every
        parked repair/drain so it re-examines the cluster."""
        self._notify_topology()
        if self.enabled:
            self._schedule_repairs()

    # -- counters ----------------------------------------------------------------

    def _fail(self, n: int) -> None:
        self.copies_failed += n
        self._count("copies_failed", n)

    def _count(self, name: str, n: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(f"dfs.repair.{name}").inc(n)
