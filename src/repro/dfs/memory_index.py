"""Memory-locality index: which blocks are RAM-resident on which nodes.

Historically every locality query re-derived in-memory replica locations
by probing each replica holder's buffer cache (`O(replicas)` RPCs per
block per query).  The scheduler issues one such query per pending task
per free slot per heartbeat, which made locality lookups ~70% of a SWIM
run's wall-clock.  This module replaces the poll with a push: DataNodes
publish buffer-cache residency *deltas* (insert/evict, including the
implicit mass-eviction of a node failure) and the NameNode-resident
index folds them into a ``block_id -> frozenset(node names)`` map, so
``memory_locations()`` becomes a dictionary lookup.

This mirrors how tiered-storage file systems (e.g. OctopusFS) maintain
per-tier block metadata at the master instead of polling storage nodes.

Downstream consumers (the scheduler's per-node candidate buckets) can
subscribe to the same deltas via :meth:`add_listener`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List

#: Shared empty result — the overwhelmingly common case for cold blocks.
EMPTY_NODES: FrozenSet[str] = frozenset()

#: Listener signature: ``listener(block_id, node, resident)``.
DeltaListener = Callable[[str, str, bool], None]


class MemoryLocalityIndex:
    """Incrementally maintained map of in-memory block replicas.

    Invariant (checked by the equivalence property test): for every block,
    ``nodes(block_id)`` equals the brute-force recomputation
    ``{n for n in replica_holders if datanode(n).block_in_memory(block_id)}``
    at every point in simulated time.
    """

    __slots__ = ("_nodes_by_block", "_listeners")

    def __init__(self) -> None:
        self._nodes_by_block: Dict[str, FrozenSet[str]] = {}
        self._listeners: List[DeltaListener] = []

    # -- queries ---------------------------------------------------------------

    def nodes(self, block_id: str) -> FrozenSet[str]:
        """Nodes currently holding ``block_id`` in RAM (O(1))."""
        return self._nodes_by_block.get(block_id, EMPTY_NODES)

    def blocks(self) -> Dict[str, FrozenSet[str]]:
        """Snapshot of the whole index (for tests and diagnostics)."""
        return dict(self._nodes_by_block)

    def __len__(self) -> int:
        return len(self._nodes_by_block)

    # -- delta intake -----------------------------------------------------------

    def add_listener(self, listener: DeltaListener) -> None:
        """Subscribe to residency deltas (fired after the index updates)."""
        self._listeners.append(listener)

    def update(self, node: str, block_id: str, resident: bool) -> None:
        """Fold one residency delta into the index.

        Idempotent: re-announcing an already-known state is a no-op and
        fires no listener, so callers need not dedupe.
        """
        current = self._nodes_by_block.get(block_id, EMPTY_NODES)
        if resident:
            if node in current:
                return
            self._nodes_by_block[block_id] = current | {node}
        else:
            if node not in current:
                return
            remaining = current - {node}
            if remaining:
                self._nodes_by_block[block_id] = remaining
            else:
                del self._nodes_by_block[block_id]
        for listener in self._listeners:
            listener(block_id, node, resident)

    def purge_node(self, node: str) -> None:
        """Drop every entry for ``node`` (decommission / removal path).

        Node *failure* needs no special handling — the dying DataNode
        flushes its cache, which publishes per-block eviction deltas —
        but removing a node from the namespace map must scrub entries
        even if the server process is still up.
        """
        stale = [
            block_id
            for block_id, nodes in self._nodes_by_block.items()
            if node in nodes
        ]
        for block_id in stale:
            self.update(node, block_id, False)

    def __repr__(self) -> str:
        return f"<MemoryLocalityIndex blocks={len(self._nodes_by_block)}>"
