"""Cluster assembly: wire devices, DFS, scheduler, engine, and Ignem.

:class:`Cluster` builds the paper's 8-server testbed (Section IV-A) — or
any size — in one call, and exposes the three evaluation configurations:

* plain HDFS (default; Ignem disabled),
* ``enable_ignem()`` — Ignem master in the NameNode, slaves in DataNodes,
* ``pin_all_inputs()`` — the HDFS-Inputs-in-RAM baseline (vmtouch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .core.config import IgnemConfig
from .core.master import IgnemMaster
from .core.slave import IgnemSlave
from .dfs.client import DFSClient
from .dfs.datanode import DataNode
from .dfs.namenode import NameNode
from .dfs.replication import ReplicationMonitor
from .mapreduce.engine import MapReduceEngine
from .mapreduce.spec import EngineConfig
from .metrics.collector import MetricsCollector
from .net.network import TEN_GBPS, Network
from .obs import Observability, ObservabilityConfig
from .sim.engine import Environment
from .sim.rand import RandomSource
from .storage.device import GB, MB
from .storage.presets import TIER_PRESETS, make_hdd, make_ram, make_ssd, tier_preset
from .storage.tiers import MEM, build_tier_set
from .transport.sim import SimTransport


@dataclass(frozen=True)
class ClusterConfig:
    """Testbed shape; defaults mirror the paper's 8-server cluster."""

    num_nodes: int = 8
    slots_per_node: int = 8
    disk_kind: str = "hdd"  # "hdd" | "ssd"
    disk_capacity: float = 1024 * GB
    ram_capacity: float = 128 * GB
    #: Storage-hierarchy preset name (see ``repro.storage.TIER_PRESETS``,
    #: e.g. ``"mem-ssd-hdd"``).  ``None`` keeps the classic 2-tier stack
    #: implied by ``disk_kind``.
    tier_preset: Optional[str] = None
    #: Capacity of a middle SSD tier when ``tier_preset`` includes one
    #: above the backing disk (ignored otherwise).
    ssd_capacity: float = 256 * GB
    heartbeat_interval: float = 3.0
    block_size: float = 64 * MB
    replication: int = 3
    network_bandwidth: float = TEN_GBPS
    #: Delay-scheduling patience (0 disables; plain Hadoop FIFO).
    locality_wait: float = 0.0
    #: O(replication) sampled block placement (see
    #: ``NameNode.fast_placement``).  Off by default: it draws a
    #: different RNG sequence than the exact scan, so only scale
    #: harnesses opt in.
    fast_placement: bool = False
    seed: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Structured tracing + metrics (disabled by default; see
    #: :class:`repro.obs.ObservabilityConfig`).
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.disk_kind not in ("hdd", "ssd"):
            raise ValueError(f"disk_kind must be 'hdd' or 'ssd', got {self.disk_kind!r}")
        if self.tier_preset is not None and self.tier_preset not in TIER_PRESETS:
            known = ", ".join(sorted(TIER_PRESETS))
            raise ValueError(
                f"unknown tier_preset {self.tier_preset!r} (known: {known})"
            )
        if self.ssd_capacity <= 0:
            raise ValueError("ssd_capacity must be positive")

    def tier_specs(self):
        """The resolved tier hierarchy (a tuple of ``TierSpec``)."""
        name = self.tier_preset
        if name is None:
            name = "mem-hdd" if self.disk_kind == "hdd" else "mem-ssd"
        return tier_preset(name)


@dataclass(frozen=True)
class RunOptions:
    """Optional outputs of one :meth:`Cluster.run` call.

    Collapses the run kwargs that accreted across PRs into one value
    (the PR 3 -> 5 counter-view playbook): pass
    ``cluster.run(options=RunOptions(trace=..., metrics=...))`` instead
    of the individual keyword arguments.

    * ``trace`` — activate tracing (if not already on) and write the
      JSONL trace to this path when the run returns;
    * ``metrics`` — write the metrics-registry snapshot to this path
      when the run returns (works without tracing).
    """

    trace: Optional[str] = None
    metrics: Optional[str] = None


class Cluster:
    """A fully wired simulated big-data cluster."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.env = Environment()
        self.rng = RandomSource(cfg.seed)
        self.collector = MetricsCollector()

        self.network = Network(self.env, bandwidth=cfg.network_bandwidth)
        #: The control-plane message transport.  Every cross-node
        #: interaction (master↔slave commands, client→master requests,
        #: pipeline notices) is a protocol message through here; the sim
        #: backend delivers synchronously in direct-call order, so the
        #: default configuration stays byte-identical.
        self.transport = SimTransport()
        self.namenode = NameNode(
            rng=self.rng.spawn("placement"),
            block_size=cfg.block_size,
            replication=cfg.replication,
        )
        self.namenode.fast_placement = cfg.fast_placement
        self.transport.register("namenode", self.namenode.handle_message)

        # Local import to avoid a cycle (scheduler has no deps on cluster).
        from .scheduler.node_manager import NodeManager
        from .scheduler.resource_manager import ResourceManager

        self.rm = ResourceManager(self.env, locality_wait=cfg.locality_wait)
        # Push-based memory-locality metadata: DataNode caches publish
        # residency deltas into the NameNode's index, and the scheduler's
        # per-node candidate buckets subscribe to the same feed.
        self.rm.attach_locality_index(self.namenode.locality_index)
        self.datanodes: Dict[str, DataNode] = {}
        stagger = cfg.heartbeat_interval / max(1, cfg.num_nodes)
        for index in range(cfg.num_nodes):
            name = f"node{index}"
            self.network.add_node(name)
            datanode = self._build_datanode(name)
            self.namenode.register_datanode(datanode)
            self.datanodes[name] = datanode
            self.transport.register(f"datanode/{name}", datanode.handle_message)
            self.rm.register_node(
                NodeManager(
                    self.env,
                    name,
                    slots=cfg.slots_per_node,
                    heartbeat_interval=cfg.heartbeat_interval,
                    heartbeat_offset=index * stagger,
                )
            )

        self.client = DFSClient(
            self.env, self.namenode, self.network, rng=self.rng.spawn("client")
        )
        self.client.transport = self.transport
        self.engine = MapReduceEngine(
            self.env, self.client, self.rm, self.collector, cfg.engine
        )

        self.ignem_master: Optional[IgnemMaster] = None
        self.ignem_slaves: Dict[str, IgnemSlave] = {}
        self.replication_monitor: Optional[ReplicationMonitor] = None
        self._ignem_config: Optional[IgnemConfig] = None
        #: Hint-free popularity-driven policy (``enable_heat_migration``).
        self.heat_migrator = None
        #: Nodes released by a completed decommission: their entry stays
        #: in :attr:`datanodes` (counters/devices remain inspectable) but
        #: they are gone from the namespace, network, and scheduler.
        self.released_nodes: set = set()
        #: ``(sim_time, node)`` per completed decommission, in order.
        self.decommission_log: List[tuple] = []
        self._decommission_watch: set = set()

        #: Observability facade: the metrics registry is always live
        #: (passive bookkeeping); tracing activates via
        #: ``ObservabilityConfig(enabled=True)`` or ``run(trace=...)``.
        self.obs = Observability(self.env, cfg.observability)
        self.obs.register_cluster_pulls(self)
        if cfg.observability.transport_metrics:
            # Opt-in transport.* counters + trace spans.  Never bound on
            # the clean path: counting encodes messages to measure wire
            # size, which the bit-identical default must not pay for.
            self.transport.instrument(self.obs.registry, self.obs)
        if cfg.observability.enabled:
            self.obs.activate()
            self.obs.attach(self)

    def _build_datanode(self, name: str) -> DataNode:
        """Construct one DataNode per the cluster config.  Device
        construction order and names are part of the deterministic
        clean-path contract — keep them exactly as the pre-tier wiring."""
        cfg = self.config
        if cfg.tier_preset is None:
            # Classic 2-tier stack: construct devices exactly as the
            # pre-tier wiring did (order and names are part of the
            # deterministic clean-path contract).
            disk = (
                make_hdd(self.env, f"hdd-{name}")
                if cfg.disk_kind == "hdd"
                else make_ssd(self.env, f"ssd-{name}")
            )
            return DataNode(
                self.env,
                name,
                disk=disk,
                ram=make_ram(self.env, f"ram-{name}"),
                cache_capacity=cfg.ram_capacity,
                disk_capacity=cfg.disk_capacity,
            )
        specs = cfg.tier_specs()
        bottom = min(specs, key=lambda spec: spec.height)
        capacities = {MEM: cfg.ram_capacity, bottom.name: cfg.disk_capacity}
        for spec in specs:
            if spec.name not in capacities:
                capacities[spec.name] = cfg.ssd_capacity
        return DataNode(
            self.env,
            name,
            tiers=build_tier_set(self.env, specs, name, capacities),
            disk_capacity=cfg.disk_capacity,
        )

    @property
    def metrics(self):
        """The cluster-wide :class:`~repro.obs.MetricsRegistry`."""
        return self.obs.registry

    # -- configurations -------------------------------------------------------------

    def enable_ignem(
        self, config: Optional[IgnemConfig] = None, ha: bool = False
    ):
        """Attach an Ignem master and one slave per DataNode.

        With ``ha=True`` a primary/standby master pair (paper III-A5's
        backup-master option) serves requests instead of a single master;
        the pair is returned and also stored as :attr:`ignem_master`.
        """
        if self.ignem_master is not None:
            raise RuntimeError("Ignem is already enabled on this cluster")
        ignem_config = config or IgnemConfig()
        self._ignem_config = ignem_config
        if ha:
            from .core.ha import HighAvailabilityMaster

            master = HighAvailabilityMaster(
                self.env,
                self.namenode,
                rng=self.rng.spawn("ignem-master"),
                config=ignem_config,
                collector=self.collector,
                registry=self.obs.registry,
                transport=self.transport,
            )
        else:
            master = IgnemMaster(
                self.env,
                self.namenode,
                rng=self.rng.spawn("ignem-master"),
                config=ignem_config,
                collector=self.collector,
                registry=self.obs.registry,
                transport=self.transport,
            )
        self.transport.register("master", master.handle_message)
        #: Cluster-wide per-tier occupancy, maintained incrementally by
        #: every slave's accounting deltas (O(1) per event).
        self.tier_totals: Dict[str, float] = {}
        for name, datanode in self.datanodes.items():
            slave = IgnemSlave(
                self.env,
                datanode,
                self.rm,
                ignem_config,
                self.collector,
                registry=self.obs.registry,
                tier_accumulator=self.tier_totals,
            )
            master.attach_slave(slave)
            self.ignem_slaves[name] = slave
            self.transport.register(f"slave/{name}", slave.handle_message)
        self.client.ignem_master = master
        self.client.transport_master = master
        self.ignem_master = master
        # Per-destination-tier occupancy, visible in every metrics
        # snapshot (pull metrics: zero hot-path cost).
        registry = self.obs.registry
        slaves = self.ignem_slaves
        totals = self.tier_totals

        def _tier_pull(tier_name):
            if len(slaves) > 64:
                # Trace-scale clusters read the incremental accumulator;
                # summing per-slave floats here would be O(nodes) and can
                # differ from the accumulator by float ulps, so the
                # small-cluster path keeps the historical summation order
                # (golden snapshots stay bit-identical).
                return lambda: totals.get(tier_name, 0.0)
            return lambda: sum(
                slave.tier_bytes.get(tier_name, 0.0)
                for slave in slaves.values()
            )

        for tier in ignem_config.destination_tiers():
            registry.register_pull(
                f"ignem.slave.tier.{tier}.resident_bytes", _tier_pull(tier)
            )
        if self.obs.active:
            self.obs.attach_ignem(master, self.ignem_slaves)
        return master

    def enable_heat_migration(self, config=None):
        """Attach the hint-free popularity-driven migration policy.

        Requires Ignem (:meth:`enable_ignem` first): promotions flow
        through the ordinary master/slave machinery under a synthetic
        owner job.  The policy observes every client block read via the
        NameNode's read-event hook, promotes blocks whose decayed heat
        crosses the threshold, and demotes them when they cool.  Pass a
        :class:`~repro.core.heat.HeatConfig` to tune it.
        """
        if self.ignem_master is None:
            raise RuntimeError(
                "enable_ignem() before enable_heat_migration()"
            )
        if self.heat_migrator is not None:
            raise RuntimeError(
                "heat migration is already enabled on this cluster"
            )
        from .core.heat import PopularityMigrator

        migrator = PopularityMigrator(
            self.env,
            self.ignem_master,
            self.namenode,
            self.rm,
            config=config,
            registry=self.obs.registry,
            default_tier=self._ignem_config.migration_tier,
            transport=self.transport,
        )
        self.heat_migrator = migrator
        self.namenode.subscribe_reads(migrator.on_read)
        migrator.start()
        return migrator

    def enable_rereplication(
        self, max_concurrent_per_source: int = 2, config=None
    ) -> ReplicationMonitor:
        """Attach the self-healing replication monitor.  :meth:`fail_node`,
        :meth:`restart_node`, :meth:`add_datanode`, and
        :meth:`decommission` notify it automatically; pass a
        :class:`~repro.dfs.replication.RepairConfig` to tune scheduling."""
        if self.replication_monitor is None:
            self.replication_monitor = ReplicationMonitor(
                self.env,
                self.namenode,
                self.network,
                rng=self.rng.spawn("re-replication"),
                max_concurrent_per_source=max_concurrent_per_source,
                config=config,
                registry=self.obs.registry,
                transport=self.transport,
            )
            monitor = self.replication_monitor
            self.obs.registry.register_pull(
                "dfs.repair.under_replicated_blocks",
                lambda: len(monitor.under_replicated_blocks()),
            )
            if self.obs.active:
                monitor.obs = self.obs
        return self.replication_monitor

    # -- elasticity -----------------------------------------------------------------

    def add_datanode(self, name: Optional[str] = None) -> DataNode:
        """Grow the cluster by one live node (elasticity join).

        The node gets the same device stack, scheduler slots, and Ignem
        slave (when Ignem is enabled) as the original nodes, starts
        heartbeating on the shared stagger grid, and — when the
        replication monitor is enabled — attracts background rebalancing
        until it carries its fair share of replicas."""
        cfg = self.config
        if name is None:
            index = len(self.datanodes)
            while f"node{index}" in self.datanodes:
                index += 1
            name = f"node{index}"
        if name in self.datanodes:
            raise ValueError(f"node name {name!r} already exists")
        from .scheduler.node_manager import NodeManager

        self.network.add_node(name)
        datanode = self._build_datanode(name)
        self.namenode.register_datanode(datanode)
        self.datanodes[name] = datanode
        self.transport.register(f"datanode/{name}", datanode.handle_message)
        stagger = cfg.heartbeat_interval / max(1, cfg.num_nodes)
        self.rm.register_node(
            NodeManager(
                self.env,
                name,
                slots=cfg.slots_per_node,
                heartbeat_interval=cfg.heartbeat_interval,
                heartbeat_offset=(len(self.datanodes) - 1) * stagger,
            )
        )
        if self.ignem_master is not None:
            slave = IgnemSlave(
                self.env,
                datanode,
                self.rm,
                self._ignem_config,
                self.collector,
                registry=self.obs.registry,
                tier_accumulator=self.tier_totals,
            )
            self.ignem_master.attach_slave(slave)
            self.ignem_slaves[name] = slave
            self.transport.register(f"slave/{name}", slave.handle_message)
            if self.obs.active:
                slave.obs = self.obs
        if self.obs.active:
            self.obs.attach_datanode(self, name)
        if self.replication_monitor is not None:
            self.replication_monitor.handle_node_join(name)
        return datanode

    def decommission(self, name: str):
        """Gracefully drain ``name`` and release it once every resident
        block is safe elsewhere.  Returns the drain-completion
        :class:`~repro.sim.events.Event`; the release itself (DataNode,
        slave, NodeManager, NIC teardown and namespace removal) runs
        automatically when the drain finishes."""
        if name not in self.datanodes:
            raise ValueError(f"unknown node {name!r}")
        if name in self.released_nodes:
            raise RuntimeError(f"{name} is already decommissioned")
        monitor = self.enable_rereplication()
        done = monitor.decommission(name)
        if name not in self._decommission_watch:
            self._decommission_watch.add(name)
            done.callbacks.append(lambda _event: self._release_node(name))
        return done

    def _release_node(self, name: str) -> None:
        """Final decommission step: tear the node down like a failure —
        but only after the drain guaranteed no block drops below its
        replication target — then drop it from the namespace map."""
        if name in self.released_nodes:
            return
        self.released_nodes.add(name)
        self.decommission_log.append((self.env.now, name))
        self._decommission_watch.discard(name)
        if name in self.ignem_slaves:
            self.ignem_slaves[name].decommission()
        self.datanodes[name].fail()
        self.network.fail_node(name)
        if self.ignem_master is not None:
            self.ignem_master.handle_slave_failure(name)
        for node_manager in self.rm.nodes():
            if node_manager.name == name:
                node_manager.fail()
        self.namenode.remove_datanode(name)
        if self.replication_monitor is not None:
            self.replication_monitor.retry_stalled()

    def fail_node(self, name: str) -> None:
        """Kill a whole server: DataNode, Ignem slave, NodeManager, and
        NIC.  In-flight transfers through the node fail deterministically,
        the buffer-cache flush publishes residency deltas (no stale
        memory-locality index entries), the Ignem master drops its routing
        state for the node, and re-replication is triggered when the
        monitor is enabled."""
        if name in self.released_nodes:
            return  # already torn down by a completed decommission
        if name in self.ignem_slaves:
            self.ignem_slaves[name].fail()
        self.datanodes[name].fail()
        self.network.fail_node(name)
        if self.ignem_master is not None:
            self.ignem_master.handle_slave_failure(name)
        for node_manager in self.rm.nodes():
            if node_manager.name == name:
                node_manager.fail()
        if self.replication_monitor is not None:
            self.replication_monitor.handle_node_failure(name)

    def restart_node(self, name: str) -> None:
        """Bring a failed server back: the DataNode, slave, and
        NodeManager processes restart with empty in-memory state; disk
        blocks survive (paper III-A5)."""
        if name in self.released_nodes:
            raise RuntimeError(f"{name} was decommissioned; it cannot restart")
        self.datanodes[name].restart()
        self.network.restore_node(name)
        if name in self.ignem_slaves:
            self.ignem_slaves[name].restart()
        for node_manager in self.rm.nodes():
            if node_manager.name == name:
                node_manager.restart()
        if self.replication_monitor is not None:
            self.replication_monitor.handle_node_restart(name)

    def pin_all_inputs(self, paths: Optional[Sequence[str]] = None) -> None:
        """The vmtouch baseline: lock every (or the given) input file's
        blocks into the cache of every replica holder before the run."""
        targets = paths if paths is not None else self.namenode.list_files()
        for path in targets:
            for block in self.namenode.file_blocks(path):
                for node in self.namenode.get_block_locations(block.block_id):
                    datanode = self.datanodes[node]
                    datanode.cache.insert(block.block_id, block.nbytes, pinned=True)

    def flush_caches(self) -> None:
        """Drop every node's buffer cache (the paper flushes before runs)."""
        for datanode in self.datanodes.values():
            datanode.cache.flush_all()

    # -- convenience -------------------------------------------------------------------

    def run(self, until=None, options: Optional[RunOptions] = None):
        """Advance the simulation (see :meth:`Environment.run`).

        Observability extensions (all optional; plain ``run()`` is the
        untouched clean path) live in :class:`RunOptions`:

        * ``RunOptions(trace="path.jsonl")`` — activate tracing (if not
          already on via :class:`~repro.obs.ObservabilityConfig`) and
          write the JSONL trace there when this run returns;
        * ``RunOptions(metrics="path.json")`` — write the
          metrics-registry snapshot there when this run returns (works
          without tracing too).

        The pre-RunOptions ``trace=``/``metrics=`` keyword arguments
        were deprecated in the PR that introduced :class:`RunOptions`
        and have been removed; passing them now raises ``TypeError``.
        With ``ObservabilityConfig(enabled=True, trace_path=...,
        metrics_path=...)`` the same outputs are produced without
        per-call arguments.
        """
        if options is None:
            options = RunOptions()
        obs = self.obs
        obs_cfg = self.config.observability
        if options.trace is not None and not obs.active:
            obs.activate()
        if obs.active:
            obs.attach(self)
        result = self.env.run(until=until)
        trace_path = (
            options.trace if options.trace is not None else obs_cfg.trace_path
        )
        if obs.active and trace_path is not None:
            obs.tracer.dump(trace_path)
        metrics_path = (
            options.metrics
            if options.metrics is not None
            else obs_cfg.metrics_path
        )
        if metrics_path is not None:
            obs.registry.write(metrics_path)
        return result

    def node_names(self) -> List[str]:
        return sorted(self.datanodes.keys())


def build_paper_testbed(
    seed: int = 0,
    ignem: bool = False,
    ignem_config: Optional[IgnemConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    **overrides,
) -> Cluster:
    """One-call construction of the paper's evaluation cluster."""
    kwargs = dict(seed=seed)
    if engine_config is not None:
        kwargs["engine"] = engine_config
    kwargs.update(overrides)
    cluster = Cluster(ClusterConfig(**kwargs))
    if ignem:
        cluster.enable_ignem(ignem_config)
    return cluster
