"""Central sink for measurement records produced during a simulation run."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .records import (
    BlockReadRecord,
    EvictionRecord,
    JobRecord,
    MemorySample,
    MigrationRecord,
    TaskRecord,
)


class MetricsCollector:
    """Accumulates typed records; every subsystem reports into one of these.

    The collector is passive — it never touches simulation time — so it can
    be shared freely and inspected after (or during) a run.
    """

    def __init__(self) -> None:
        self.block_reads: List[BlockReadRecord] = []
        self.tasks: List[TaskRecord] = []
        self.jobs: List[JobRecord] = []
        self.migrations: List[MigrationRecord] = []
        self.evictions: List[EvictionRecord] = []
        self.memory_samples: List[MemorySample] = []
        # Lazy id->record indexes for the lookup helpers; rebuilt on first
        # query after an append (experiments issue thousands of per-job
        # lookups against thousands of records, so linear scans were
        # quadratic in practice).  Each index remembers how many records it
        # covered so direct list appends are detected too.
        self._job_index: Optional[Dict[str, JobRecord]] = None
        self._job_indexed = 0
        self._tasks_index: Optional[Dict[str, List[TaskRecord]]] = None
        self._tasks_indexed = 0

    # -- record sinks ----------------------------------------------------------

    def record_block_read(self, record: BlockReadRecord) -> None:
        self.block_reads.append(record)

    def record_task(self, record: TaskRecord) -> None:
        self.tasks.append(record)
        self._tasks_index = None

    def record_job(self, record: JobRecord) -> None:
        self.jobs.append(record)
        self._job_index = None

    def record_migration(self, record: MigrationRecord) -> None:
        self.migrations.append(record)

    def record_eviction(self, record: EvictionRecord) -> None:
        self.evictions.append(record)

    def record_memory_sample(self, sample: MemorySample) -> None:
        self.memory_samples.append(sample)

    # -- convenience queries -------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        index = self._job_index
        if index is None or self._job_indexed != len(self.jobs):
            # First match wins, matching the old linear scan: keep the
            # earliest record for a duplicated job_id.
            index = {}
            for record in self.jobs:
                index.setdefault(record.job_id, record)
            self._job_index = index
            self._job_indexed = len(self.jobs)
        return index.get(job_id)

    def tasks_for_job(self, job_id: str, kind: Optional[str] = None) -> List[TaskRecord]:
        index = self._tasks_index
        if index is None or self._tasks_indexed != len(self.tasks):
            index = {}
            for task in self.tasks:
                index.setdefault(task.job_id, []).append(task)
            self._tasks_index = index
            self._tasks_indexed = len(self.tasks)
        tasks = index.get(job_id, [])
        if kind is None:
            return list(tasks)
        return [t for t in tasks if t.kind == kind]

    def map_tasks(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.kind == "map"]

    def reduce_tasks(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.kind == "reduce"]

    def block_reads_for_job(self, job_id: str) -> List[BlockReadRecord]:
        return [r for r in self.block_reads if r.job_id == job_id]

    def completed_migrations(self) -> List[MigrationRecord]:
        return [m for m in self.migrations if m.outcome == "completed"]

    def mean_job_duration(self) -> float:
        if not self.jobs:
            raise ValueError("no job records collected")
        return sum(j.duration for j in self.jobs) / len(self.jobs)

    def mean_task_duration(self, kind: Optional[str] = None) -> float:
        tasks = self.tasks if kind is None else [t for t in self.tasks if t.kind == kind]
        if not tasks:
            raise ValueError(f"no task records collected (kind={kind!r})")
        return sum(t.duration for t in tasks) / len(tasks)

    def mean_block_read_duration(self) -> float:
        if not self.block_reads:
            raise ValueError("no block read records collected")
        return sum(r.duration for r in self.block_reads) / len(self.block_reads)

    def filter_jobs(self, predicate: Callable[[JobRecord], bool]) -> List[JobRecord]:
        return [j for j in self.jobs if predicate(j)]

    def summary(self) -> Dict[str, float]:
        """A terse run summary used by examples and experiment logs."""
        out: Dict[str, float] = {
            "jobs": len(self.jobs),
            "tasks": len(self.tasks),
            "block_reads": len(self.block_reads),
            "migrations_completed": len(self.completed_migrations()),
        }
        if self.jobs:
            out["mean_job_duration"] = self.mean_job_duration()
        if self.tasks:
            out["mean_task_duration"] = self.mean_task_duration()
        if self.block_reads:
            out["mean_block_read_duration"] = self.mean_block_read_duration()
        return out
