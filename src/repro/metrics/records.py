"""Typed measurement records emitted by the simulated stack.

Each record corresponds to one level of instrumentation used in the
paper's evaluation: HDFS block reads (Fig 1, Fig 6), tasks (Fig 2,
Table II), jobs (Table I, Fig 5, Table III, Fig 8, Fig 9), and migrations
plus memory samples (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True, unsafe_hash=True)
class BlockReadRecord:
    """One HDFS block read by one task."""

    job_id: str
    task_id: str
    block_id: str
    node: str
    source: str  # "hdd" | "ssd" | "ram" | "remote"
    nbytes: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True, unsafe_hash=True)
class TaskRecord:
    """One task (map or reduce) execution."""

    job_id: str
    task_id: str
    kind: str  # "map" | "reduce"
    node: str
    scheduled_at: float
    start: float
    end: float
    input_bytes: float = 0.0
    output_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def queue_delay(self) -> float:
        return self.start - self.scheduled_at


@dataclass(slots=True, unsafe_hash=True)
class JobRecord:
    """One job from submission to completion."""

    job_id: str
    name: str
    submitted_at: float
    first_task_start: float
    end: float
    input_bytes: float
    num_maps: int
    num_reduces: int

    @property
    def duration(self) -> float:
        return self.end - self.submitted_at

    @property
    def lead_time(self) -> float:
        """Paper definition: submission to first task start."""
        return self.first_task_start - self.submitted_at


@dataclass(slots=True, unsafe_hash=True)
class MigrationRecord:
    """One block migration performed by an Ignem slave."""

    job_id: str
    block_id: str
    node: str
    nbytes: float
    enqueued_at: float
    start: float
    end: float
    outcome: str  # "completed" | "skipped" | "cancelled"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True, unsafe_hash=True)
class EvictionRecord:
    """One block eviction from an Ignem slave's migration buffer."""

    block_id: str
    node: str
    nbytes: float
    time: float
    reason: str  # "explicit" | "implicit" | "cleanup" | "failure"


@dataclass(slots=True, unsafe_hash=True)
class MemorySample:
    """Point-in-time migrated-bytes usage on one node (Fig 7)."""

    node: str
    time: float
    migrated_bytes: float
