"""Summary-statistic helpers shared by analyses, experiments, and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    if not len(values):
        raise ValueError("mean of empty sequence")
    return float(np.mean(values))


def median(values: Sequence[float]) -> float:
    if not len(values):
        raise ValueError("median of empty sequence")
    return float(np.median(values))


def percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


def cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    if not len(values):
        raise ValueError("cdf of empty sequence")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    fractions = [(index + 1) / n for index in range(n)]
    return ordered, fractions


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold``."""
    if not len(values):
        raise ValueError("fraction_below of empty sequence")
    return sum(1 for v in values if v < threshold) / len(values)


def histogram(
    values: Sequence[float],
    bins: int = 20,
    range_: Tuple[float, float] | None = None,
) -> Tuple[List[float], List[float]]:
    """Relative-frequency histogram: (bin edges, frequencies summing to 1)."""
    if not len(values):
        raise ValueError("histogram of empty sequence")
    counts, edges = np.histogram(values, bins=bins, range=range_)
    total = counts.sum()
    freqs = (counts / total) if total else counts.astype(float)
    return [float(e) for e in edges], [float(f) for f in freqs]


def speedup(baseline: float, improved: float) -> float:
    """Relative improvement: (baseline - improved) / baseline.

    Matches the paper's "Speedup w.r.t HDFS" columns: Ignem at 12.7s vs
    HDFS at 14.4s is a 0.12 (12%) speedup.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (baseline - improved) / baseline


def speedup_factor(baseline: float, improved: float) -> float:
    """Multiplicative factor: how many times faster (e.g. '160x')."""
    if improved <= 0:
        raise ValueError(f"improved must be positive, got {improved}")
    return baseline / improved
