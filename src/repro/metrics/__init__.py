"""Measurement records, the run-wide collector, and statistics helpers."""

from .collector import MetricsCollector
from .records import (
    BlockReadRecord,
    EvictionRecord,
    JobRecord,
    MemorySample,
    MigrationRecord,
    TaskRecord,
)
from .stats import (
    cdf,
    fraction_below,
    histogram,
    mean,
    median,
    percentile,
    speedup,
    speedup_factor,
)

__all__ = [
    "BlockReadRecord",
    "EvictionRecord",
    "JobRecord",
    "MemorySample",
    "MetricsCollector",
    "MigrationRecord",
    "TaskRecord",
    "cdf",
    "fraction_below",
    "histogram",
    "mean",
    "median",
    "percentile",
    "speedup",
    "speedup_factor",
]
