"""Batch experiment runner with file outputs.

Runs any subset of the paper's experiments and writes, per experiment:

* ``<name>.txt`` — the paper-style formatted rows;
* ``<name>.json`` — machine-readable key numbers;
* for the figure experiments, ``<name>_series.csv`` — the plottable
  series (CDF points, sweep curves) so figures can be regenerated with
  any plotting tool.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..storage.device import GB, MB
from . import (
    ablation_priority,
    fig5_size_bins,
    fig6_block_read_cdf,
    fig7_memory_footprint,
    fig8_wordcount_sweep,
    fig9_hive_study,
    run_block_read_study,
    run_leadtime_study,
    run_utilization_study,
    table1_job_duration,
    table2_task_duration,
    table3_sort,
)

PathLike = Union[str, pathlib.Path]


def _write(out_dir: pathlib.Path, name: str, text: str, data: Dict) -> None:
    (out_dir / f"{name}.txt").write_text(text + "\n")
    (out_dir / f"{name}.json").write_text(json.dumps(data, indent=2) + "\n")


def _write_series(
    out_dir: pathlib.Path, name: str, header: Sequence[str], rows: Sequence[Sequence]
) -> None:
    with open(out_dir / f"{name}_series.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _comparison_payload(table) -> Dict:
    return {
        row.mode: {"seconds": row.value, "speedup_vs_hdfs": row.speedup_vs_hdfs}
        for row in table.rows
    }


# -- experiment runners keyed by CLI name ----------------------------------------


def _run_fig1_fig2(out_dir: pathlib.Path, seed: int) -> str:
    study = run_block_read_study(seed=seed)
    _write(
        out_dir,
        "fig1_fig2",
        study.format(),
        {
            "ram_vs_hdd_reads": study.read_ratio("hdd"),
            "ram_vs_ssd_reads": study.read_ratio("ssd"),
            "ram_vs_hdd_mappers": study.mapper_ratio("hdd"),
        },
    )
    rows = []
    for medium in ("hdd", "ssd", "ram"):
        values, fractions = study.mapper_cdf(medium)
        rows.extend((medium, v, f) for v, f in zip(values, fractions))
    _write_series(out_dir, "fig2", ["medium", "mapper_seconds", "cdf"], rows)
    return study.format()


def _run_fig3(out_dir: pathlib.Path, seed: int) -> str:
    study = run_leadtime_study(seed=seed)
    _write(
        out_dir,
        "fig3",
        study.format(),
        {
            "sufficient_fraction": study.sufficient_fraction,
            "mean_lead_time": study.analysis.mean_lead_time,
            "median_lead_time": study.analysis.median_lead_time,
        },
    )
    ratios, fractions = study.cdf()
    step = max(1, len(ratios) // 500)
    _write_series(
        out_dir,
        "fig3",
        ["read_over_lead_ratio", "cdf"],
        list(zip(ratios, fractions))[::step],
    )
    return study.format()


def _run_fig4(out_dir: pathlib.Path, seed: int) -> str:
    study = run_utilization_study(seed=seed)
    _write(
        out_dir,
        "fig4",
        study.format(),
        {
            "overall_mean": study.overall_mean,
            "mean_timeline_peak": study.mean_timeline.peak,
        },
    )
    rows = list(zip(study.mean_timeline.times, study.mean_timeline.utilization))
    _write_series(out_dir, "fig4", ["time_s", "mean_utilization"], rows)
    return study.format()


def _run_table1(out_dir: pathlib.Path, seed: int) -> str:
    table = table1_job_duration(seed=seed)
    _write(out_dir, "table1", table.format(), _comparison_payload(table))
    return table.format()


def _run_table2(out_dir: pathlib.Path, seed: int) -> str:
    table = table2_task_duration(seed=seed)
    _write(out_dir, "table2", table.format(), _comparison_payload(table))
    return table.format()


def _run_fig5(out_dir: pathlib.Path, seed: int) -> str:
    bins = fig5_size_bins(seed=seed)
    lines = ["Fig 5 — reduction in mean job duration by size bin"]
    payload = {}
    rows = []
    for entry in bins:
        lines.append(
            f"{entry.bin_name:<7} n={entry.num_jobs:<4} "
            f"ignem={entry.ignem_reduction:6.1%} ram={entry.ram_reduction:6.1%}"
        )
        payload[entry.bin_name] = {
            "jobs": entry.num_jobs,
            "ignem_reduction": entry.ignem_reduction,
            "ram_reduction": entry.ram_reduction,
        }
        rows.append(
            (entry.bin_name, entry.num_jobs, entry.ignem_reduction, entry.ram_reduction)
        )
    text = "\n".join(lines)
    _write(out_dir, "fig5", text, payload)
    _write_series(out_dir, "fig5", ["bin", "jobs", "ignem", "ram"], rows)
    return text


def _run_fig6(out_dir: pathlib.Path, seed: int) -> str:
    result = fig6_block_read_cdf(seed=seed)
    text = (
        "Fig 6 — block read durations\n"
        f"mean reduction: {result.mean_reduction:.1%}; "
        f"migrated fraction: {result.migrated_fraction:.1%}"
    )
    _write(
        out_dir,
        "fig6",
        text,
        {
            "mean_reduction": result.mean_reduction,
            "migrated_fraction": result.migrated_fraction,
        },
    )
    rows = []
    for label, series in (
        ("hdfs", result.hdfs_cdf()),
        ("ignem", result.ignem_cdf()),
    ):
        values, fractions = series
        step = max(1, len(values) // 500)
        rows.extend(
            (label, v, f) for v, f in list(zip(values, fractions))[::step]
        )
    _write_series(out_dir, "fig6", ["config", "read_seconds", "cdf"], rows)
    return text


def _run_fig7(out_dir: pathlib.Path, seed: int) -> str:
    result = fig7_memory_footprint(seed=seed)
    text = (
        "Fig 7 — migrated-memory footprint\n"
        f"Ignem {result.ignem_mean_bytes / MB:.0f}MB vs hypothetical "
        f"{result.hypothetical_mean_bytes / MB:.0f}MB "
        f"({result.footprint_ratio:.1f}x lower)"
    )
    _write(
        out_dir,
        "fig7",
        text,
        {
            "ignem_mean_bytes": result.ignem_mean_bytes,
            "hypothetical_mean_bytes": result.hypothetical_mean_bytes,
            "footprint_ratio": result.footprint_ratio,
        },
    )
    return text


def _run_ablation_priority(out_dir: pathlib.Path, seed: int) -> str:
    result = ablation_priority(seed=seed)
    text = (
        "Ablation IV-C5 — priority policy\n"
        f"priority {result.priority_speedup:.1%} vs fifo "
        f"{result.fifo_speedup:.1%}; benefit lost {result.benefit_lost:.0%}"
    )
    _write(
        out_dir,
        "ablation_priority",
        text,
        {
            "priority_speedup": result.priority_speedup,
            "fifo_speedup": result.fifo_speedup,
            "benefit_lost": result.benefit_lost,
        },
    )
    return text


def _run_table3(out_dir: pathlib.Path, seed: int) -> str:
    table = table3_sort(seed=seed)
    _write(out_dir, "table3", table.format(), _comparison_payload(table))
    return table.format()


def _run_fig8(out_dir: pathlib.Path, seed: int) -> str:
    sweep = fig8_wordcount_sweep(seed=seed)
    _write(
        out_dir,
        "fig8",
        sweep.format(),
        {
            "ignem_matches_ram_until_gb": sweep.ignem_matches_ram_until(),
            "plus10_beats_ignem_at_gb": sweep.plus10_beats_ignem_at(),
        },
    )
    rows = [
        (point.input_gb, point.variant, point.duration)
        for point in sweep.points
    ]
    _write_series(out_dir, "fig8", ["input_gb", "variant", "seconds"], rows)
    return sweep.format()


def _run_fig9(out_dir: pathlib.Path, seed: int) -> str:
    study = fig9_hive_study(seed=seed)
    payload = {
        query.query_id: {
            "input_gb": query.input_bytes / GB,
            "durations": query.durations,
            "ignem_speedup": query.speedup("ignem"),
        }
        for query in study.queries
    }
    payload["mean_ignem_speedup"] = study.mean_ignem_speedup()
    payload["map_runtime_fraction"] = study.map_runtime_fraction
    _write(out_dir, "fig9", study.format(), payload)
    rows = [
        (q.query_id, q.input_bytes / GB, q.durations["hdfs"], q.durations["ignem"])
        for q in study.by_input_size()
    ]
    _write_series(
        out_dir, "fig9", ["query", "input_gb", "hdfs_s", "ignem_s"], rows
    )
    return study.format()


def _run_tier3(out_dir: pathlib.Path, seed: int) -> str:
    from .tier3_demo import run_tier3_demo

    study = run_tier3_demo(seed=seed)
    payload = {
        run.mode: {
            "mean_job_seconds": run.mean_job_seconds,
            "migrations_completed": run.migrations_completed,
            "tier_peak_bytes": run.tier_peaks,
            "routed_requests": run.routed,
        }
        for run in study.runs
    }
    payload["pull_metrics"] = study.pull_metrics
    _write(out_dir, "tier3", study.format(), payload)
    return study.format()


def _run_serve(out_dir: pathlib.Path, seed: int) -> str:
    from .serve_slo import serve_slo_study

    study = serve_slo_study(seed=seed)
    payload = {
        policy: result.to_dict() for policy, result in study.results.items()
    }
    payload["heat_beats_none"] = study.heat_beats_none()
    _write(out_dir, "serve", study.format(), payload)
    return study.format()


EXPERIMENTS: Dict[str, Callable[[pathlib.Path, int], str]] = {
    "fig1": _run_fig1_fig2,
    "fig2": _run_fig1_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "table1": _run_table1,
    "table2": _run_table2,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "ablation-priority": _run_ablation_priority,
    "table3": _run_table3,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "tier3": _run_tier3,
    "serve": _run_serve,
}


def available_experiments() -> List[str]:
    return sorted(set(EXPERIMENTS))


def run_experiments(
    names: Optional[Sequence[str]] = None,
    out_dir: PathLike = "results",
    seed: int = 0,
    trace_dir: Optional[PathLike] = None,
    metrics_dir: Optional[PathLike] = None,
) -> Dict[str, str]:
    """Run the named experiments (all by default); returns name -> text.

    ``trace_dir``/``metrics_dir`` enable observability on the shared SWIM
    runs behind the experiments: each (mode, seed, num_jobs) run writes a
    JSONL trace / metrics snapshot into the given directory.  Experiments
    not backed by the SWIM workload run unchanged.
    """
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    chosen = list(names) if names else available_experiments()
    for name in chosen:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; choose from "
                f"{available_experiments()}"
            )

    observing = trace_dir is not None or metrics_dir is not None
    if observing:
        from ..obs import ObservabilityConfig
        from . import swim_runs

        tdir = pathlib.Path(trace_dir) if trace_dir is not None else None
        mdir = pathlib.Path(metrics_dir) if metrics_dir is not None else None
        for directory in (tdir, mdir):
            if directory is not None:
                directory.mkdir(parents=True, exist_ok=True)

        def _observability(mode: str, run_seed: int, num_jobs: int):
            stem = f"swim_{mode}_{num_jobs}jobs_seed{run_seed}"
            return ObservabilityConfig(
                enabled=True,
                trace_path=(
                    str(tdir / f"{stem}.trace.jsonl") if tdir else None
                ),
                metrics_path=(
                    str(mdir / f"{stem}.metrics.json") if mdir else None
                ),
            )

        swim_runs.set_observability(_observability)

    results: Dict[str, str] = {}
    ran: set = set()
    try:
        for name in chosen:
            runner = EXPERIMENTS[name]
            if runner in ran:
                continue  # fig1/fig2 share one runner
            ran.add(runner)
            results[name] = runner(out_path, seed)
    finally:
        if observing:
            swim_runs.set_observability(None)
    return results
