"""Table III: the standalone 40GB sort job (paper Section IV-D)."""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster import build_paper_testbed
from ..core.config import IgnemConfig
from ..workloads.sort import SORT_INPUT_BYTES, make_sort_spec, materialize
from .common import ComparisonTable, make_comparison

PAPER_TABLE3 = {"hdfs": 147.0, "ignem": 114.0, "ram": 75.0}


def run_sort_once(
    mode: str,
    seed: int = 0,
    input_bytes: float = SORT_INPUT_BYTES,
    ignem_config: Optional[IgnemConfig] = None,
) -> float:
    """One sort run under one configuration; returns job duration."""
    if mode not in ("hdfs", "ignem", "ram"):
        raise ValueError(f"unknown mode {mode!r}")
    cluster = build_paper_testbed(
        seed=seed, ignem=(mode == "ignem"), ignem_config=ignem_config
    )
    materialize(cluster, input_bytes)
    if mode == "ram":
        cluster.pin_all_inputs()
    job = cluster.engine.submit_job(make_sort_spec(input_bytes))
    cluster.run()
    return job.duration


def table3_sort(seed: int = 0, input_bytes: float = SORT_INPUT_BYTES) -> ComparisonTable:
    """Table III: sort duration under the three configurations."""
    values: Dict[str, float] = {
        mode: run_sort_once(mode, seed=seed, input_bytes=input_bytes)
        for mode in ("hdfs", "ignem", "ram")
    }
    return make_comparison(
        "Table III — sort (40GB) job duration",
        "s",
        values,
        paper_values=PAPER_TABLE3,
    )
