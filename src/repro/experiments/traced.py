"""Traced experiment runs — the ``python -m repro trace`` implementation.

A traced run executes the SWIM workload behind an experiment with
:class:`~repro.obs.ObservabilityConfig` enabled, writes one Chrome
``trace_event``-compatible JSONL trace plus one metrics snapshot per
(experiment, mode), and validates every trace against the shipped
schema (:mod:`repro.obs.schema`) before reporting success.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..obs import ObservabilityConfig, validate_trace
from .swim_runs import run_swim

PathLike = Union[str, pathlib.Path]

#: Experiments that can be traced, mapped to the SWIM modes they measure.
#: ``swim`` / ``swim-<mode>`` trace the shared workload directly; the
#: table/figure names trace exactly the runs that experiment consumes.
TRACEABLE: Dict[str, Tuple[str, ...]] = {
    "swim": ("hdfs", "ignem", "ram"),
    "swim-hdfs": ("hdfs",),
    "swim-ignem": ("ignem",),
    "swim-ram": ("ram",),
    "table1": ("hdfs", "ignem", "ram"),
    "table2": ("hdfs", "ignem", "ram"),
    "fig5": ("hdfs", "ignem", "ram"),
    "fig6": ("hdfs", "ignem"),
    "fig7": ("ignem",),
}


def traceable_experiments() -> List[str]:
    return sorted(TRACEABLE)


@dataclass
class TracedRun:
    """Outcome of one traced (experiment, mode) execution."""

    experiment: str
    mode: str
    trace_path: pathlib.Path
    metrics_path: pathlib.Path
    num_events: int
    schema_errors: List[str]

    @property
    def ok(self) -> bool:
        return not self.schema_errors

    def format(self) -> str:
        status = "ok" if self.ok else f"{len(self.schema_errors)} schema errors"
        return (
            f"{self.experiment}/{self.mode}: {self.num_events} events -> "
            f"{self.trace_path} ({status})"
        )


def run_traced(
    experiment: str,
    out_dir: PathLike = "results",
    seed: int = 0,
    num_jobs: int = 40,
    sim_events: bool = False,
) -> List[TracedRun]:
    """Trace the SWIM runs behind ``experiment`` (see :data:`TRACEABLE`).

    ``num_jobs`` defaults to a short 40-job workload — traces of the full
    200-job run are large; raise it when the full workload matters.
    """
    if experiment not in TRACEABLE:
        raise KeyError(
            f"experiment {experiment!r} is not traceable; choose from "
            f"{traceable_experiments()}"
        )
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)

    results: List[TracedRun] = []
    for mode in TRACEABLE[experiment]:
        trace_path = out_path / f"{experiment}_{mode}.trace.jsonl"
        metrics_path = out_path / f"{experiment}_{mode}.metrics.json"
        config = ObservabilityConfig(
            enabled=True,
            sim_events=sim_events,
            trace_path=str(trace_path),
            metrics_path=str(metrics_path),
        )
        run_swim(
            mode, seed=seed, num_jobs=num_jobs, observability=config
        )
        errors = validate_trace(trace_path)
        num_events = sum(
            1 for line in trace_path.read_text().splitlines() if line.strip()
        )
        results.append(
            TracedRun(
                experiment=experiment,
                mode=mode,
                trace_path=trace_path,
                metrics_path=metrics_path,
                num_events=num_events,
                schema_errors=errors,
            )
        )
    return results
