"""Figures 1 and 2: HDFS block-read and mapper-runtime distributions by
storage medium (paper Section II-B).

The paper stores SWIM-style job inputs on HDD, SSD, or RAM and histograms
(Fig 1) the time a mapper takes to read one 64MB HDFS block, plus the CDF
(Fig 2) of mapper runtimes.  Headline ratios: RAM block reads are ~160x
faster than HDD and ~7x faster than SSD; mapper runtimes are ~23x faster
from RAM than from HDD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster import build_paper_testbed
from ..metrics.stats import cdf, histogram, mean, speedup_factor
from ..workloads import swim

#: Storage media compared in Fig 1a/1b/1c.
MEDIA = ("hdd", "ssd", "ram")


@dataclass(frozen=True)
class MediumResult:
    """Distributions measured on one storage medium."""

    medium: str
    block_read_durations: Tuple[float, ...]
    mapper_durations: Tuple[float, ...]

    @property
    def mean_block_read(self) -> float:
        return mean(self.block_read_durations)

    @property
    def mean_mapper(self) -> float:
        return mean(self.mapper_durations)


@dataclass(frozen=True)
class BlockReadStudy:
    """Fig 1 + Fig 2 outcome."""

    results: Dict[str, MediumResult]

    def read_ratio(self, slow: str, fast: str = "ram") -> float:
        """E.g. read_ratio('hdd') is the paper's 160x."""
        return speedup_factor(
            self.results[slow].mean_block_read, self.results[fast].mean_block_read
        )

    def mapper_ratio(self, slow: str, fast: str = "ram") -> float:
        """E.g. mapper_ratio('hdd') is the paper's 23x."""
        return speedup_factor(
            self.results[slow].mean_mapper, self.results[fast].mean_mapper
        )

    def read_histogram(self, medium: str, bins: int = 20):
        return histogram(self.results[medium].block_read_durations, bins=bins)

    def mapper_cdf(self, medium: str):
        return cdf(self.results[medium].mapper_durations)

    def format(self) -> str:
        lines = [
            "Fig 1/2 — block reads and mapper runtimes by medium",
            f"{'medium':<6} {'mean read (s)':>14} {'mean mapper (s)':>16}",
        ]
        for medium in MEDIA:
            result = self.results[medium]
            lines.append(
                f"{medium:<6} {result.mean_block_read:>14.3f} "
                f"{result.mean_mapper:>16.3f}"
            )
        lines.append(
            f"RAM vs HDD reads: {self.read_ratio('hdd'):.0f}x (paper ~160x); "
            f"RAM vs SSD reads: {self.read_ratio('ssd'):.1f}x (paper ~7x); "
            f"RAM vs HDD mappers: {self.mapper_ratio('hdd'):.0f}x (paper ~23x)"
        )
        return "\n".join(lines)


def run_block_read_study(seed: int = 0, num_jobs: int = 60) -> BlockReadStudy:
    """Run SWIM-style jobs with inputs on each medium and measure.

    ``medium='ram'`` uses the vmtouch-equivalent pinning on an HDD
    cluster, exactly as the paper's HDFS-Inputs-in-RAM setup does.
    """
    results: Dict[str, MediumResult] = {}
    for medium in MEDIA:
        disk_kind = "ssd" if medium == "ssd" else "hdd"
        cluster = build_paper_testbed(seed=seed, disk_kind=disk_kind)
        generator = swim.SwimGenerator(seed=seed)
        jobs = generator.generate(num_jobs=num_jobs)
        swim.materialize(cluster, jobs)
        if medium == "ram":
            cluster.pin_all_inputs()
        specs, arrivals = swim.to_specs(jobs)
        done = cluster.engine.run_workload(specs, arrivals)
        cluster.run(until=done)
        collector = cluster.collector
        results[medium] = MediumResult(
            medium=medium,
            block_read_durations=tuple(
                r.duration for r in collector.block_reads
            ),
            mapper_durations=tuple(t.duration for t in collector.map_tasks()),
        )
    return BlockReadStudy(results=results)
