"""Figure 9: Hive/TPC-DS query accelerations (paper Section IV-G), plus
the Section II-A map-dominance statistic.

Each query runs on a fresh cluster per configuration (the paper flushes
caches between runs).  Fig 9a reports query durations with queries sorted
by input size; Fig 9b the input sizes.  Paper headlines: query 3 speeds
up 34%, the mean speedup is ~20%, and the largest-input queries (82, 25,
29) gain least; map tasks account for ~97% of total task runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import build_paper_testbed
from ..core.config import IgnemConfig
from ..hive.catalog import TPCDS_QUERIES, HiveQuery, query_input_bytes
from ..hive.session import HiveSession, ignem_migration_hook
from ..metrics.stats import speedup
from ..storage.device import GB


@dataclass(frozen=True)
class QueryComparison:
    """One query's durations across configurations."""

    query_id: str
    input_bytes: float
    durations: Dict[str, float]  # mode -> seconds

    def speedup(self, mode: str = "ignem") -> float:
        return speedup(self.durations["hdfs"], self.durations[mode])


@dataclass(frozen=True)
class HiveStudy:
    """Fig 9 outcome."""

    queries: Tuple[QueryComparison, ...]
    map_runtime_fraction: float  # Section II-A's ~97%

    def mean_ignem_speedup(self) -> float:
        return sum(q.speedup("ignem") for q in self.queries) / len(self.queries)

    def best_query(self) -> QueryComparison:
        return max(self.queries, key=lambda q: q.speedup("ignem"))

    def by_input_size(self) -> List[QueryComparison]:
        return sorted(self.queries, key=lambda q: q.input_bytes)

    def format(self) -> str:
        lines = [
            "Fig 9 — Hive query durations (sorted by input size)",
            f"{'query':<6} {'input':>8} {'hdfs(s)':>9} {'ignem(s)':>9} "
            f"{'speedup':>8} {'ram(s)':>8}",
        ]
        for query in self.by_input_size():
            lines.append(
                f"{query.query_id:<6} {query.input_bytes / GB:>7.1f}G "
                f"{query.durations['hdfs']:>9.1f} "
                f"{query.durations['ignem']:>9.1f} "
                f"{query.speedup('ignem'):>8.1%} "
                f"{query.durations.get('ram', float('nan')):>8.1f}"
            )
        best = self.best_query()
        lines.append(
            f"best: {best.query_id} at {best.speedup('ignem'):.0%} "
            f"(paper: q3 at 34%); mean {self.mean_ignem_speedup():.0%} "
            f"(paper: ~20%); map tasks are {self.map_runtime_fraction:.0%} "
            f"of task runtime (paper: ~97%)"
        )
        return "\n".join(lines)


def run_query_once(
    query: HiveQuery,
    mode: str,
    seed: int = 0,
    ignem_config: Optional[IgnemConfig] = None,
) -> Tuple[float, float]:
    """Run one query on a fresh cluster.

    Returns (duration, map_fraction_of_task_runtime).
    """
    if mode not in ("hdfs", "ignem", "ram"):
        raise ValueError(f"unknown mode {mode!r}")
    cluster = build_paper_testbed(
        seed=seed, ignem=(mode == "ignem"), ignem_config=ignem_config
    )
    session = HiveSession(
        cluster, hook=ignem_migration_hook if mode == "ignem" else None
    )
    session.create_tables(query.tables)
    if mode == "ram":
        cluster.pin_all_inputs()
    done = session.run_query(query)
    result = cluster.run(until=done)

    map_seconds = sum(t.duration for t in cluster.collector.map_tasks())
    total_seconds = sum(t.duration for t in cluster.collector.tasks)
    map_fraction = map_seconds / total_seconds if total_seconds else 0.0
    return result.duration, map_fraction


def fig9_hive_study(
    seed: int = 0,
    queries: Sequence[HiveQuery] = TPCDS_QUERIES,
    modes: Sequence[str] = ("hdfs", "ignem", "ram"),
    ignem_config: Optional[IgnemConfig] = None,
) -> HiveStudy:
    """Run every catalog query under every configuration."""
    comparisons: List[QueryComparison] = []
    map_fractions: List[float] = []
    for query in queries:
        durations: Dict[str, float] = {}
        for mode in modes:
            duration, map_fraction = run_query_once(
                query, mode, seed=seed, ignem_config=ignem_config
            )
            durations[mode] = duration
            if mode == "hdfs":
                map_fractions.append(map_fraction)
        comparisons.append(
            QueryComparison(
                query_id=query.query_id,
                input_bytes=query_input_bytes(query),
                durations=durations,
            )
        )
    return HiveStudy(
        queries=tuple(comparisons),
        map_runtime_fraction=sum(map_fractions) / len(map_fractions),
    )
