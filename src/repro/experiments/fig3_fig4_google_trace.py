"""Figures 3 and 4: feasibility analyses over the Google trace
(paper Section II-C).

Fig 3: for ~81% of jobs the lead-time exceeds the total disk-read time —
their whole input could migrate before the first task starts.

Fig 4: per-server disk utilization over 24h is tiny (mean ~3.1%, and a
40-server mean never above ~5%) — abundant residual bandwidth exists for
migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.disk_utilization import (
    UtilizationTimeline,
    mean_utilization_timeline,
    overall_mean_utilization,
    server_utilization,
)
from ..analysis.leadtime import LeadTimeAnalysis, analyze_lead_time, ratio_cdf
from ..workloads.google_trace import GoogleTraceGenerator


@dataclass(frozen=True)
class LeadTimeStudy:
    """Fig 3 outcome."""

    analysis: LeadTimeAnalysis

    @property
    def sufficient_fraction(self) -> float:
        return self.analysis.sufficient_fraction

    def cdf(self) -> Tuple[List[float], List[float]]:
        return ratio_cdf(self.analysis)

    def format(self) -> str:
        return (
            "Fig 3 — lead-time sufficiency (Google trace)\n"
            f"jobs with lead-time >= read-time: "
            f"{self.sufficient_fraction:.1%} (paper: 81%)\n"
            f"mean lead-time: {self.analysis.mean_lead_time:.1f}s (paper: 8.8s); "
            f"median: {self.analysis.median_lead_time:.1f}s (paper: 1.8s)"
        )


@dataclass(frozen=True)
class UtilizationStudy:
    """Fig 4 outcome."""

    per_server: Dict[int, UtilizationTimeline]
    mean_timeline: UtilizationTimeline
    overall_mean: float

    def format(self) -> str:
        return (
            "Fig 4 — disk utilization over 24h (Google trace)\n"
            f"overall mean utilization: {self.overall_mean:.1%} (paper: ~3.1%)\n"
            f"peak of the {len(self.per_server)}-server mean: "
            f"{self.mean_timeline.peak:.1%} (paper: <=5%)"
        )


def run_leadtime_study(seed: int = 0, num_jobs: int = 10_000) -> LeadTimeStudy:
    generator = GoogleTraceGenerator(seed=seed)
    jobs = generator.generate_jobs(num_jobs=num_jobs)
    return LeadTimeStudy(analysis=analyze_lead_time(jobs))


def run_utilization_study(
    seed: int = 0,
    num_servers: int = 40,
    duration: float = 24 * 3600.0,
) -> UtilizationStudy:
    generator = GoogleTraceGenerator(seed=seed)
    intervals = generator.generate_server_usage(
        num_servers=num_servers, duration=duration
    )
    per_server = server_utilization(intervals, duration=duration)
    return UtilizationStudy(
        per_server=per_server,
        mean_timeline=mean_utilization_timeline(per_server),
        overall_mean=overall_mean_utilization(per_server),
    )
