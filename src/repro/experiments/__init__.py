"""Experiment runners — one per table and figure in the paper.

========== =========================================== =======================
Experiment Paper result                                Runner
========== =========================================== =======================
Fig 1      RAM reads 160x faster than HDD, 7x vs SSD   run_block_read_study
Fig 2      mapper runtimes 23x faster from RAM         run_block_read_study
Fig 3      81% of Google jobs have enough lead-time    run_leadtime_study
Fig 4      disk utilization ~3%, abundant residual bw  run_utilization_study
Table I    SWIM job duration 14.4/12.7/11.4s           table1_job_duration
Fig 5      speedup by size bin (8.8/7.7/25%)           fig5_size_bins
Table II   SWIM mapper duration 6.44/4.03/0.28s        table2_task_duration
Fig 6      40% block-read reduction, 60% migrated      fig6_block_read_cdf
Fig 7      2.6x lower memory footprint                 fig7_memory_footprint
IV-C5      prioritization worth ~15% of the benefit    ablation_priority
Table III  sort 147/114/75s                            table3_sort
Fig 8      wordcount sweep + Ignem+10s crossover       fig8_wordcount_sweep
Fig 9      Hive queries up to 34%, mean 20%            fig9_hive_study
========== =========================================== =======================
"""

from .common import ComparisonRow, ComparisonTable, make_comparison
from .fig1_fig2_block_reads import BlockReadStudy, MediumResult, run_block_read_study
from .fig3_fig4_google_trace import (
    LeadTimeStudy,
    UtilizationStudy,
    run_leadtime_study,
    run_utilization_study,
)
from .fig8_wordcount import WordcountSweep, fig8_wordcount_sweep, run_wordcount_point
from .fig9_hive import HiveStudy, fig9_hive_study, run_query_once
from .swim_runs import SwimRun, clear_cache, run_swim
from .swim_tables import (
    BlockReadCdfResult,
    MemoryFootprintResult,
    PriorityAblationResult,
    SizeBinResult,
    ablation_priority,
    fig5_size_bins,
    fig6_block_read_cdf,
    fig7_memory_footprint,
    table1_job_duration,
    table2_task_duration,
)
from .table3_sort import run_sort_once, table3_sort

__all__ = [
    "BlockReadCdfResult",
    "BlockReadStudy",
    "ComparisonRow",
    "ComparisonTable",
    "HiveStudy",
    "LeadTimeStudy",
    "MediumResult",
    "MemoryFootprintResult",
    "PriorityAblationResult",
    "SizeBinResult",
    "SwimRun",
    "UtilizationStudy",
    "WordcountSweep",
    "ablation_priority",
    "clear_cache",
    "fig5_size_bins",
    "fig6_block_read_cdf",
    "fig7_memory_footprint",
    "fig8_wordcount_sweep",
    "fig9_hive_study",
    "make_comparison",
    "run_block_read_study",
    "run_leadtime_study",
    "run_query_once",
    "run_sort_once",
    "run_swim",
    "run_utilization_study",
    "run_wordcount_point",
    "table1_job_duration",
    "table2_task_duration",
    "table3_sort",
]
