"""Figure 8: wordcount vs input size, and the Ignem+10s lead-time study
(paper Sections IV-E and IV-F).

The sweep runs wordcount at increasing input sizes under four
configurations: HDFS, Ignem, Ignem with 10 extra seconds of artificial
lead-time (the submitter sleeps after the migrate call; the sleep counts
toward job duration), and HDFS-Inputs-in-RAM.

Expected shape (paper):
* Ignem matches HDFS-Inputs-in-RAM while the whole input fits in the
  lead-time, then its relative benefit decays;
* Ignem+10s loses badly at small sizes (the sleep dominates), crosses
  below plain HDFS as inputs grow, and eventually beats plain Ignem —
  adding delay speeds up the job, because the extra lead-time lets Ignem
  read sequentially at full disk efficiency instead of the job's
  concurrent mappers thrashing the disk.

Our calibration reproduces every one of those features; the crossovers
sit at larger inputs than the paper's 2GB/4GB because our simulated
mmap/mlock migration path runs at full sequential disk bandwidth, while
the authors' measured one was ~5x slower (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import build_paper_testbed
from ..core.config import IgnemConfig
from ..workloads.wordcount import DEFAULT_SIZES_GB, make_wordcount_spec, materialize

#: The four Fig 8 configurations.
VARIANTS = ("hdfs", "ignem", "ignem+10s", "ram")


@dataclass(frozen=True)
class WordcountPoint:
    """One (input size, variant) measurement."""

    input_gb: float
    variant: str
    duration: float


@dataclass(frozen=True)
class WordcountSweep:
    """Fig 8 outcome: durations across the size sweep."""

    points: Tuple[WordcountPoint, ...]

    def duration(self, input_gb: float, variant: str) -> float:
        for point in self.points:
            if point.input_gb == input_gb and point.variant == variant:
                return point.duration
        raise KeyError((input_gb, variant))

    def relative(self, input_gb: float, variant: str) -> float:
        """Duration relative to plain HDFS at the same size."""
        return self.duration(input_gb, variant) / self.duration(input_gb, "hdfs")

    def sizes(self) -> List[float]:
        return sorted({point.input_gb for point in self.points})

    def ignem_matches_ram_until(self, tolerance: float = 0.05) -> float:
        """Largest size where Ignem is within ``tolerance`` of RAM (the
        paper's ~2GB inflection)."""
        matched = 0.0
        for size in self.sizes():
            ram = self.relative(size, "ram")
            ignem = self.relative(size, "ignem")
            if ignem <= ram + tolerance:
                matched = size
        return matched

    def plus10_beats_ignem_at(self) -> Optional[float]:
        """Smallest size where Ignem+10s outruns plain Ignem (the paper's
        counterintuitive Section IV-F result; ~4GB there)."""
        for size in self.sizes():
            if self.duration(size, "ignem+10s") < self.duration(size, "ignem"):
                return size
        return None

    def format(self) -> str:
        lines = [
            "Fig 8 — wordcount durations relative to HDFS",
            f"{'size':>6} {'hdfs(s)':>9} {'ignem':>7} {'ignem+10s':>10} {'ram':>7}",
        ]
        for size in self.sizes():
            lines.append(
                f"{size:>5.0f}G {self.duration(size, 'hdfs'):>9.1f} "
                f"{self.relative(size, 'ignem'):>7.2f} "
                f"{self.relative(size, 'ignem+10s'):>10.2f} "
                f"{self.relative(size, 'ram'):>7.2f}"
            )
        crossover = self.plus10_beats_ignem_at()
        lines.append(
            f"Ignem tracks RAM until ~{self.ignem_matches_ram_until():.0f}GB "
            f"(paper: ~2GB); Ignem+10s overtakes Ignem at "
            f"{'%.0fGB' % crossover if crossover else 'beyond the sweep'} "
            f"(paper: ~4GB)"
        )
        return "\n".join(lines)


def run_wordcount_point(
    variant: str,
    input_gb: float,
    seed: int = 0,
    extra_lead_time: float = 10.0,
    ignem_config: Optional[IgnemConfig] = None,
) -> float:
    """One wordcount run; returns job duration."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    use_ignem = variant in ("ignem", "ignem+10s")
    cluster = build_paper_testbed(
        seed=seed, ignem=use_ignem, ignem_config=ignem_config
    )
    materialize(cluster, input_gb)
    if variant == "ram":
        cluster.pin_all_inputs()
    job = cluster.engine.submit_job(
        make_wordcount_spec(input_gb),
        extra_lead_time=extra_lead_time if variant == "ignem+10s" else 0.0,
    )
    cluster.run()
    return job.duration


def fig8_wordcount_sweep(
    seed: int = 0,
    sizes_gb: Sequence[float] = DEFAULT_SIZES_GB,
    ignem_config: Optional[IgnemConfig] = None,
) -> WordcountSweep:
    """Run the full Fig 8 sweep."""
    points: List[WordcountPoint] = []
    for input_gb in sizes_gb:
        for variant in VARIANTS:
            duration = run_wordcount_point(
                variant, input_gb, seed=seed, ignem_config=ignem_config
            )
            points.append(
                WordcountPoint(
                    input_gb=float(input_gb), variant=variant, duration=duration
                )
            )
    return WordcountSweep(points=tuple(points))
