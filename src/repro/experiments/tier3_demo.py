"""Three-tier (mem/ssd/hdd) migration demo.

The tier axis the PR 5 refactor introduces, exercised end-to-end: the
``mem-ssd-hdd`` preset puts a capacity SSD tier between the paper's RAM
buffer and the backing HDD, and a size router sends each job's migration
to a tier by input size — small jobs go to memory (the paper's design),
big scans that would blow the RAM budget go to the SSD tier instead of
not migrating at all.

The same SWIM workload runs twice — classic 2-tier vs routed 3-tier —
and the report compares job durations, per-tier peak occupancy (from the
slaves' exact per-tier usage timelines), and the per-tier routing split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster import build_paper_testbed
from ..core.config import IgnemConfig
from ..metrics.stats import mean, speedup_factor
from ..storage.device import GB, MB
from ..workloads import swim
from .swim_runs import SWIM_ENGINE, SWIM_MAP_CPU_FACTOR, SWIM_REDUCE_CPU_FACTOR, _with_cpu_factors

#: Jobs with inputs above this migrate to the SSD tier, not memory.
SIZE_THRESHOLD = 256 * MB
#: RAM-tier cap: deliberately tight, so big-job migrations would not fit.
MEM_CAP = 2 * GB
#: SSD-tier cap: roomy — capacity is what the middle tier is for.
SSD_CAP = 12 * GB

_NUM_JOBS = 40
_NUM_NODES = 4


class SizeRoutingMaster:
    """Client-facing shim that routes each migrate call by input size.

    Sits where the :class:`~repro.dfs.client.DFSClient` expects the
    Ignem master and forwards with an explicit ``dst_tier``: the demo's
    policy layer, three lines on top of the tier-addressed master API.
    """

    def __init__(self, master, threshold: float):
        self.master = master
        self.threshold = threshold
        self.routed: Dict[str, int] = {}

    def request_migration(
        self,
        paths: Sequence[str],
        job_id: str,
        implicit_eviction: bool = False,
    ) -> None:
        nbytes = self.master.namenode.total_bytes(paths)
        tier = "ssd" if nbytes > self.threshold else "mem"
        self.routed[tier] = self.routed.get(tier, 0) + 1
        self.master.request_migration(
            paths, job_id, implicit_eviction=implicit_eviction, dst_tier=tier
        )

    def request_eviction(self, paths: Sequence[str], job_id: str) -> None:
        self.master.request_eviction(paths, job_id)


@dataclass
class TierRun:
    """One mode's outcome."""

    mode: str
    mean_job_seconds: float
    migrations_completed: int
    #: tier -> peak migrated bytes across all slaves (exact timelines).
    tier_peaks: Dict[str, float]
    #: tier -> migrate requests the router sent there (3-tier only).
    routed: Dict[str, int]


@dataclass
class Tier3Study:
    runs: List[TierRun]
    #: The per-tier occupancy pull metrics the registry now exposes.
    pull_metrics: List[str]

    def run_for(self, mode: str) -> TierRun:
        for run in self.runs:
            if run.mode == mode:
                return run
        raise KeyError(mode)

    def format(self) -> str:
        lines = [
            "Three-tier migration demo (SWIM %d jobs, %d nodes, "
            "size threshold %.0fMB)" % (_NUM_JOBS, _NUM_NODES, SIZE_THRESHOLD / MB),
            "",
            f"{'mode':<10} {'mean job (s)':>12} {'migrations':>11} "
            f"{'peak mem':>12} {'peak ssd':>12} {'routed mem/ssd':>15}",
        ]
        for run in self.runs:
            routed = (
                f"{run.routed.get('mem', 0)}/{run.routed.get('ssd', 0)}"
                if run.routed
                else "-"
            )
            lines.append(
                f"{run.mode:<10} {run.mean_job_seconds:>12.2f} "
                f"{run.migrations_completed:>11d} "
                f"{run.tier_peaks.get('mem', 0.0) / MB:>10.0f}MB "
                f"{run.tier_peaks.get('ssd', 0.0) / MB:>10.0f}MB "
                f"{routed:>15}"
            )
        two = self.run_for("2tier")
        three = self.run_for("3tier")
        lines.append("")
        ram_ratio = two.tier_peaks.get("mem", 0.0) / max(
            1.0, three.tier_peaks.get("mem", 0.0)
        )
        lines.append(
            "3-tier trade-off vs 2-tier: peak RAM footprint "
            f"{ram_ratio:.1f}x smaller, mean job duration "
            f"{speedup_factor(three.mean_job_seconds, two.mean_job_seconds):.2f}x "
            "the baseline"
        )
        lines.append(
            "per-tier occupancy pull metrics: " + ", ".join(self.pull_metrics)
        )
        return "\n".join(lines)


def _run_mode(mode: str, seed: int) -> TierRun:
    three_tier = mode == "3tier"
    overrides = {"num_nodes": _NUM_NODES}
    if three_tier:
        overrides["tier_preset"] = "mem-ssd-hdd"
    cluster = build_paper_testbed(
        seed=seed, engine_config=SWIM_ENGINE, **overrides
    )
    if three_tier:
        config = IgnemConfig(
            buffer_capacity=MEM_CAP,
            tier_buffer_capacities=(("mem", MEM_CAP), ("ssd", SSD_CAP)),
        )
    else:
        config = IgnemConfig(buffer_capacity=MEM_CAP)
    master = cluster.enable_ignem(config)

    router: Optional[SizeRoutingMaster] = None
    if three_tier:
        router = SizeRoutingMaster(master, SIZE_THRESHOLD)
        cluster.client.ignem_master = router

    jobs = swim.SwimGenerator(seed=seed).generate(num_jobs=_NUM_JOBS)
    swim.materialize(cluster, jobs)
    specs, arrivals = swim.to_specs(jobs)
    specs = [
        _with_cpu_factors(spec, SWIM_MAP_CPU_FACTOR, SWIM_REDUCE_CPU_FACTOR)
        for spec in specs
    ]
    done = cluster.engine.run_workload(specs, arrivals)
    cluster.run(until=done)

    durations = [
        job.finished_at - job.submitted_at
        for job in cluster.engine.jobs
        if job.finished_at is not None
    ]
    tier_peaks: Dict[str, float] = {}
    for slave in cluster.ignem_slaves.values():
        for tier, timeline in slave.tier_usage_timeline.items():
            peak = max(usage for _, usage in timeline)
            tier_peaks[tier] = max(tier_peaks.get(tier, 0.0), peak)
    return TierRun(
        mode=mode,
        mean_job_seconds=mean(durations),
        migrations_completed=int(
            cluster.metrics.value("ignem.slave.migrations_completed")
        ),
        tier_peaks=tier_peaks,
        routed=dict(router.routed) if router is not None else {},
    )


def run_tier3_demo(seed: int = 0) -> Tier3Study:
    """Run the 2-tier baseline and the routed 3-tier config."""
    runs = [_run_mode("2tier", seed), _run_mode("3tier", seed)]
    # Re-derive the pull-metric names from a fresh 3-tier registry so the
    # report documents exactly what a metrics snapshot exposes.
    pull_metrics = [
        f"ignem.slave.tier.{tier}.resident_bytes" for tier in ("mem", "ssd")
    ]
    return Tier3Study(runs=runs, pull_metrics=pull_metrics)
