"""Shared SWIM workload runs.

Table I, Table II, Fig 5, Fig 6, Fig 7, and the IV-C5 ablation all
measure the *same* three runs of the 200-job SWIM workload (HDFS, Ignem,
HDFS-Inputs-in-RAM).  This module runs them once per (mode, seed,
num_jobs, policy) and caches the outcome so the whole experiment family
shares identical inputs, exactly as the paper's one-workload/many-
metrics evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster import Cluster, build_paper_testbed
from ..core.config import IgnemConfig
from ..mapreduce.spec import EngineConfig, JobSpec
from ..metrics.collector import MetricsCollector
from ..obs import ObservabilityConfig
from ..storage.device import GB
from ..workloads import swim

#: SWIM jobs are synthetic IO movers: almost no per-byte compute, which
#: is what makes Table II's RAM mapper floor ~0.28s.
SWIM_ENGINE = EngineConfig(output_replication=1)
SWIM_MAP_CPU_FACTOR = 0.25
SWIM_REDUCE_CPU_FACTOR = 0.5


@dataclass
class SwimRun:
    """Everything one SWIM run leaves behind."""

    mode: str
    cluster: Cluster
    jobs: List[swim.SwimJob]
    collector: MetricsCollector
    input_paths_by_job: Dict[str, Tuple[str, ...]]


_CACHE: Dict[Tuple, SwimRun] = {}

#: Optional factory ``(mode, seed, num_jobs) -> ObservabilityConfig``
#: applied to every SWIM cluster built without an explicit
#: ``observability`` argument (the ``--trace/--metrics-out`` CLI path).
_OBS_FACTORY: Optional[Callable[[str, int, int], ObservabilityConfig]] = None


def clear_cache() -> None:
    _CACHE.clear()


def set_observability(
    factory: Optional[Callable[[str, int, int], ObservabilityConfig]],
) -> None:
    """Install (or clear, with ``None``) a default observability factory.

    Clears the run cache: cached runs were executed under the previous
    setting and would otherwise be returned without emitting traces.
    """
    global _OBS_FACTORY
    _OBS_FACTORY = factory
    clear_cache()


def prepare_swim_cluster(
    mode: str,
    seed: int = 0,
    num_jobs: int = 200,
    policy: str = "smallest-job-first",
    ignem_config: Optional[IgnemConfig] = None,
    ha: bool = False,
    observability: Optional[ObservabilityConfig] = None,
) -> Tuple[Cluster, List[swim.SwimJob], List[JobSpec], List[float]]:
    """Build the SWIM testbed without running it.

    Returns ``(cluster, trace jobs, job specs, arrival times)`` — the
    exact pre-run state :func:`run_swim` uses, also reusable by harnesses
    that drive the run differently (the chaos runner injects faults and
    runs to full drain instead of to the workload-done event).
    """
    if mode not in ("hdfs", "ignem", "ram"):
        raise ValueError(f"unknown mode {mode!r}")
    if observability is None and _OBS_FACTORY is not None:
        observability = _OBS_FACTORY(mode, seed, num_jobs)
    overrides = {}
    if observability is not None:
        overrides["observability"] = observability
    cluster = build_paper_testbed(
        seed=seed, engine_config=SWIM_ENGINE, **overrides
    )
    if mode == "ignem":
        config = ignem_config or IgnemConfig(buffer_capacity=16 * GB, policy=policy)
        cluster.enable_ignem(config, ha=ha)

    generator = swim.SwimGenerator(seed=seed)
    jobs = generator.generate(num_jobs=num_jobs)
    swim.materialize(cluster, jobs)
    if mode == "ram":
        cluster.pin_all_inputs()

    specs, arrivals = swim.to_specs(jobs)
    specs = [
        _with_cpu_factors(spec, SWIM_MAP_CPU_FACTOR, SWIM_REDUCE_CPU_FACTOR)
        for spec in specs
    ]
    return cluster, jobs, specs, arrivals


def run_swim(
    mode: str,
    seed: int = 0,
    num_jobs: int = 200,
    policy: str = "smallest-job-first",
    ignem_config: Optional[IgnemConfig] = None,
    observability: Optional[ObservabilityConfig] = None,
) -> SwimRun:
    """Run the SWIM workload under one configuration (cached)."""
    key = (mode, seed, num_jobs, policy, ignem_config, observability)
    if key in _CACHE:
        return _CACHE[key]

    cluster, jobs, specs, arrivals = prepare_swim_cluster(
        mode,
        seed=seed,
        num_jobs=num_jobs,
        policy=policy,
        ignem_config=ignem_config,
        observability=observability,
    )
    done = cluster.engine.run_workload(specs, arrivals, implicit_eviction=True)
    cluster.run(until=done)

    input_paths_by_job = {
        job.job_id: tuple(job.spec.input_paths) for job in cluster.engine.jobs
    }
    run = SwimRun(
        mode=mode,
        cluster=cluster,
        jobs=jobs,
        collector=cluster.collector,
        input_paths_by_job=input_paths_by_job,
    )
    _CACHE[key] = run
    return run


def _with_cpu_factors(spec: JobSpec, map_factor: float, reduce_factor: float) -> JobSpec:
    return JobSpec(
        name=spec.name,
        input_paths=spec.input_paths,
        shuffle_bytes=spec.shuffle_bytes,
        output_bytes=spec.output_bytes,
        num_reduces=spec.num_reduces,
        map_cpu_factor=map_factor,
        reduce_cpu_factor=reduce_factor,
    )
