"""Shared experiment plumbing: configurations, result formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.stats import speedup

#: The paper's three file-system configurations (Section IV-A).
MODES = ("hdfs", "ignem", "ram")

MODE_LABELS = {
    "hdfs": "HDFS",
    "ignem": "Ignem",
    "ram": "HDFS-Inputs-in-RAM",
}


@dataclass(frozen=True)
class ComparisonRow:
    """One mode's absolute number plus its speedup over the HDFS baseline."""

    mode: str
    value: float
    baseline: float

    @property
    def label(self) -> str:
        return MODE_LABELS.get(self.mode, self.mode)

    @property
    def speedup_vs_hdfs(self) -> float:
        if self.mode == "hdfs":
            return 0.0
        return speedup(self.baseline, self.value)


@dataclass(frozen=True)
class ComparisonTable:
    """A Table I/II/III-style comparison across the three modes."""

    title: str
    unit: str
    rows: Tuple[ComparisonRow, ...]
    paper_values: Dict[str, float] = field(default_factory=dict)

    def value(self, mode: str) -> float:
        for row in self.rows:
            if row.mode == mode:
                return row.value
        raise KeyError(f"no row for mode {mode!r}")

    def speedup(self, mode: str) -> float:
        for row in self.rows:
            if row.mode == mode:
                return row.speedup_vs_hdfs
        raise KeyError(f"no row for mode {mode!r}")

    def fraction_of_upper_bound(self) -> float:
        """How much of the inputs-in-RAM benefit Ignem realizes (the
        paper's '60% of the upper bound')."""
        ram_gain = self.speedup("ram")
        if ram_gain <= 0:
            return 0.0
        return self.speedup("ignem") / ram_gain

    def format(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        header = f"{'Configuration':<22} {'Measured ' + self.unit:>14} {'Speedup':>9}"
        if self.paper_values:
            header += f" {'Paper ' + self.unit:>12}"
        lines.append(header)
        for row in self.rows:
            line = f"{row.label:<22} {row.value:>14.2f} {row.speedup_vs_hdfs:>8.1%}"
            if self.paper_values:
                paper = self.paper_values.get(row.mode)
                line += f" {paper:>12.2f}" if paper is not None else f" {'-':>12}"
            lines.append(line)
        return "\n".join(lines)


def make_comparison(
    title: str,
    unit: str,
    values: Dict[str, float],
    paper_values: Optional[Dict[str, float]] = None,
) -> ComparisonTable:
    baseline = values["hdfs"]
    rows = tuple(
        ComparisonRow(mode=mode, value=values[mode], baseline=baseline)
        for mode in MODES
        if mode in values
    )
    return ComparisonTable(
        title=title, unit=unit, rows=rows, paper_values=paper_values or {}
    )
