"""The SWIM experiment family: Tables I & II, Figures 5, 6, 7, and the
prioritization ablation (paper Sections IV-C).

All results here derive from the three shared SWIM runs in
:mod:`repro.experiments.swim_runs`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..baselines.hypothetical import (
    hypothetical_memory_timelines,
    ignem_memory_timelines,
    mean_footprint,
)
from ..metrics.stats import cdf, mean, speedup
from ..workloads.swim import size_bin
from .common import ComparisonTable, make_comparison
from .swim_runs import SwimRun, run_swim

#: Paper values for Tables I and II.
PAPER_TABLE1 = {"hdfs": 14.4, "ignem": 12.7, "ram": 11.4}
PAPER_TABLE2 = {"hdfs": 6.44, "ignem": 4.03, "ram": 0.28}
#: Paper Fig 5 reductions in mean job duration per size bin (Ignem).
PAPER_FIG5_IGNEM = {"small": 0.088, "medium": 0.077, "large": 0.25}


def table1_job_duration(seed: int = 0, num_jobs: int = 200) -> ComparisonTable:
    """Table I: mean SWIM job duration across the three configurations."""
    values = {
        mode: run_swim(mode, seed=seed, num_jobs=num_jobs).collector.mean_job_duration()
        for mode in ("hdfs", "ignem", "ram")
    }
    return make_comparison(
        "Table I — SWIM mean job duration",
        "s",
        values,
        paper_values=PAPER_TABLE1,
    )


def table2_task_duration(seed: int = 0, num_jobs: int = 200) -> ComparisonTable:
    """Table II: mean SWIM mapper duration across the configurations."""
    values = {
        mode: run_swim(
            mode, seed=seed, num_jobs=num_jobs
        ).collector.mean_task_duration("map")
        for mode in ("hdfs", "ignem", "ram")
    }
    return make_comparison(
        "Table II — SWIM mean mapper duration",
        "s",
        values,
        paper_values=PAPER_TABLE2,
    )


@dataclass(frozen=True)
class SizeBinResult:
    """Fig 5: reduction in mean job duration for one size bin."""

    bin_name: str
    num_jobs: int
    hdfs_mean: float
    ignem_reduction: float
    ram_reduction: float


def fig5_size_bins(seed: int = 0, num_jobs: int = 200) -> List[SizeBinResult]:
    """Fig 5: per-size-bin mean job duration reductions."""
    runs = {m: run_swim(m, seed=seed, num_jobs=num_jobs) for m in ("hdfs", "ignem", "ram")}
    durations: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    for mode, run in runs.items():
        for job in run.collector.jobs:
            durations[size_bin(job.input_bytes)][mode].append(job.duration)

    results = []
    for bin_name in ("small", "medium", "large"):
        per_mode = durations[bin_name]
        if not per_mode.get("hdfs"):
            continue
        hdfs_mean = mean(per_mode["hdfs"])
        results.append(
            SizeBinResult(
                bin_name=bin_name,
                num_jobs=len(per_mode["hdfs"]),
                hdfs_mean=hdfs_mean,
                ignem_reduction=speedup(hdfs_mean, mean(per_mode["ignem"])),
                ram_reduction=speedup(hdfs_mean, mean(per_mode["ram"])),
            )
        )
    return results


@dataclass(frozen=True)
class BlockReadCdfResult:
    """Fig 6: block read duration distributions under HDFS vs Ignem."""

    hdfs_durations: Tuple[float, ...]
    ignem_durations: Tuple[float, ...]
    migrated_fraction: float  # fraction of Ignem reads served from RAM

    @property
    def mean_reduction(self) -> float:
        return speedup(mean(self.hdfs_durations), mean(self.ignem_durations))

    def hdfs_cdf(self):
        return cdf(self.hdfs_durations)

    def ignem_cdf(self):
        return cdf(self.ignem_durations)


def fig6_block_read_cdf(seed: int = 0, num_jobs: int = 200) -> BlockReadCdfResult:
    """Fig 6: Ignem's effect on every block read (paper: ~40% mean
    reduction, ~60% of blocks served from memory)."""
    hdfs = run_swim("hdfs", seed=seed, num_jobs=num_jobs).collector
    ignem = run_swim("ignem", seed=seed, num_jobs=num_jobs).collector
    ram_reads = sum(1 for r in ignem.block_reads if r.source == "ram")
    return BlockReadCdfResult(
        hdfs_durations=tuple(r.duration for r in hdfs.block_reads),
        ignem_durations=tuple(r.duration for r in ignem.block_reads),
        migrated_fraction=ram_reads / len(ignem.block_reads),
    )


@dataclass(frozen=True)
class MemoryFootprintResult:
    """Fig 7: Ignem vs the hypothetical instantaneous scheme."""

    ignem_mean_bytes: float
    hypothetical_mean_bytes: float
    ignem_nonzero_samples: Tuple[float, ...]
    hypothetical_nonzero_samples: Tuple[float, ...]

    @property
    def footprint_ratio(self) -> float:
        """How many times smaller Ignem's footprint is (paper: 2.6x)."""
        if self.ignem_mean_bytes <= 0:
            return float("inf")
        return self.hypothetical_mean_bytes / self.ignem_mean_bytes


def fig7_memory_footprint(seed: int = 0, num_jobs: int = 200) -> MemoryFootprintResult:
    """Fig 7: per-server migrated-memory footprints."""
    run: SwimRun = run_swim("ignem", seed=seed, num_jobs=num_jobs)
    ignem_timelines = ignem_memory_timelines(run.cluster)
    hypo_timelines = hypothetical_memory_timelines(
        run.cluster, run.collector.jobs, run.input_paths_by_job, seed=seed
    )
    ignem_samples = [
        v for t in ignem_timelines.values() for v in t.nonzero_samples()
    ]
    hypo_samples = [
        v for t in hypo_timelines.values() for v in t.nonzero_samples()
    ]
    return MemoryFootprintResult(
        ignem_mean_bytes=mean_footprint(ignem_timelines),
        hypothetical_mean_bytes=mean_footprint(hypo_timelines),
        ignem_nonzero_samples=tuple(ignem_samples),
        hypothetical_nonzero_samples=tuple(hypo_samples),
    )


@dataclass(frozen=True)
class PriorityAblationResult:
    """IV-C5: smallest-job-first vs FIFO migration order."""

    hdfs_mean: float
    priority_mean: float
    fifo_mean: float

    @property
    def priority_speedup(self) -> float:
        return speedup(self.hdfs_mean, self.priority_mean)

    @property
    def fifo_speedup(self) -> float:
        return speedup(self.hdfs_mean, self.fifo_mean)

    @property
    def benefit_lost(self) -> float:
        """Fraction of Ignem's benefit lost without prioritization
        (paper: ~15%)."""
        if self.priority_speedup <= 0:
            return 0.0
        return 1.0 - self.fifo_speedup / self.priority_speedup


def ablation_priority(seed: int = 0, num_jobs: int = 200) -> PriorityAblationResult:
    """Disable smallest-job-first and measure the lost benefit."""
    hdfs = run_swim("hdfs", seed=seed, num_jobs=num_jobs)
    priority = run_swim("ignem", seed=seed, num_jobs=num_jobs)
    fifo = run_swim("ignem", seed=seed, num_jobs=num_jobs, policy="fifo")
    return PriorityAblationResult(
        hdfs_mean=hdfs.collector.mean_job_duration(),
        priority_mean=priority.collector.mean_job_duration(),
        fifo_mean=fifo.collector.mean_job_duration(),
    )
