"""The serving-SLO experiment: three migration policies, one stream.

Replays the identical seeded request stream (Zipfian popularity,
diurnal load, one flash crowd, three tenants) under ``none`` (plain
HDFS), ``hint`` (oracle Ignem pin of the hottest objects), and ``heat``
(hint-free popularity-driven migration), and compares read-latency
percentiles.  The paper's batch experiments measure job duration; this
is the same Ignem machinery measured the way a serving cluster is: by
p99.

The headline check — popularity-driven migration beats no-migration on
p99 — is exposed as :meth:`ServeStudy.heat_beats_none`, asserted by the
test suite and visible in the golden report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..workloads.serve import ServeConfig, ServeResult, run_serve

POLICIES: Tuple[str, ...] = ("none", "hint", "heat")


@dataclass
class ServeStudy:
    """Per-policy results of one serving comparison."""

    results: Dict[str, ServeResult]

    def heat_beats_none(self) -> bool:
        """The headline claim: learned migration improves tail latency."""
        return self.results["heat"].p99 < self.results["none"].p99

    def p99_speedup(self, policy: str) -> float:
        """How many times lower ``policy``'s p99 is than no-migration."""
        baseline = self.results["none"].p99
        p99 = self.results[policy].p99
        return baseline / p99 if p99 > 0 else float("inf")

    def format(self) -> str:
        lines = [
            "Serving SLO — read latency by migration policy",
            "==============================================",
            f"{'policy':<8} {'p50':>9} {'p99':>9} {'p999':>9} "
            f"{'mean':>9} {'ram%':>6} {'migrated':>9}",
        ]
        for policy in POLICIES:
            result = self.results[policy]
            lines.append(
                f"{policy:<8} "
                f"{result.p50 * 1000:>7.0f}ms "
                f"{result.p99 * 1000:>7.0f}ms "
                f"{result.p999 * 1000:>7.0f}ms "
                f"{result.mean * 1000:>7.0f}ms "
                f"{100 * result.ram_share:>5.1f} "
                f"{result.migrated_bytes / 2**30:>7.2f}GB"
            )
        heat = self.results["heat"]
        lines.append(
            f"popularity-driven migration: p99 {self.p99_speedup('heat'):.1f}x "
            f"lower than no-migration "
            f"({heat.promotions} blocks promoted, {heat.demotions} demoted, "
            f"no hints given)"
        )
        return "\n".join(lines)


def serve_slo_study(seed: int = 0) -> ServeStudy:
    """Run the three-policy comparison on the default serving shape."""
    results = {
        policy: run_serve(ServeConfig(policy=policy, seed=seed))
        for policy in POLICIES
    }
    return ServeStudy(results=results)
