"""TPC-DS-shaped table and query catalog (paper Section IV-G, Figure 9).

The paper evaluates Hive on several TPC-DS queries; Figure 9 sorts them
by input size — query 3 reads little and speeds up most (34%), queries
82, 25, and 29 read the most and gain least.  This catalog defines tables
and a query set with the same input-size ordering and multi-stage (map ->
shuffle -> reduce -> next stage) structure, scaled to the 8-node testbed.

Selectivities are aggressive (a few percent survive the map stage), which
is what makes map tasks ~97% of total task runtime (Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..storage.device import GB, MB


@dataclass(frozen=True)
class Table:
    """One warehouse table stored as a file in the DFS."""

    name: str
    nbytes: float

    @property
    def path(self) -> str:
        return f"/tpcds/{self.name}"


@dataclass(frozen=True)
class QueryStage:
    """One MR stage of a compiled query.

    ``selectivity`` is output/input for the stage's map side (the WHERE
    predicates and SELECT projection); ``shuffle_fraction`` is the part of
    surviving rows that must cross the network to reducers.
    """

    selectivity: float
    shuffle_fraction: float = 1.0
    num_reduces: int = 4
    #: ORC decode + predicate evaluation runs at ~160MB/s per mapper.
    map_cpu_factor: float = 2.5
    reduce_cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        if not 0 <= self.shuffle_fraction <= 1:
            raise ValueError("shuffle_fraction must be in [0, 1]")
        if self.num_reduces < 1:
            raise ValueError("num_reduces must be >= 1")


@dataclass(frozen=True)
class HiveQuery:
    """A named query: the tables its first stage scans plus later stages."""

    query_id: str
    tables: Tuple[str, ...]
    stages: Tuple[QueryStage, ...]

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a query must scan at least one table")
        if not self.stages:
            raise ValueError("a query needs at least one stage")


#: Warehouse tables, scaled for the 8-node testbed.
TPCDS_TABLES: Dict[str, Table] = {
    table.name: table
    for table in [
        Table("date_dim", 96 * MB),
        Table("item", 192 * MB),
        Table("customer", 384 * MB),
        Table("promotion", 64 * MB),
        Table("store_sales_q1", 1.0 * GB),
        Table("web_sales", 1.8 * GB),
        Table("catalog_sales_q", 2.8 * GB),
        Table("inventory", 3.8 * GB),
        Table("store_sales_h1", 4.2 * GB),
        Table("store_sales", 9.5 * GB),
        Table("catalog_sales", 3.2 * GB),
    ]
}


def _q(query_id: str, tables: List[str], stages: List[QueryStage]) -> HiveQuery:
    for name in tables:
        if name not in TPCDS_TABLES:
            raise ValueError(f"unknown table {name!r}")
    return HiveQuery(query_id, tuple(tables), tuple(stages))


#: The Figure 9 query set, in increasing input-size order (as the paper
#: sorts both subfigures).  Queries 3 (smallest) and 82/25/29 (largest)
#: are named in the paper; the middle queries complete the sweep.
TPCDS_QUERIES: Tuple[HiveQuery, ...] = (
    _q(
        "q3",
        ["store_sales_q1", "date_dim", "item"],
        [
            QueryStage(selectivity=0.04, num_reduces=4),
            QueryStage(selectivity=0.3, num_reduces=2),
        ],
    ),
    _q(
        "q7",
        ["store_sales_q1", "customer", "promotion", "date_dim"],
        [
            QueryStage(selectivity=0.05, num_reduces=4),
            QueryStage(selectivity=0.3, num_reduces=2),
        ],
    ),
    _q(
        "q12",
        ["web_sales", "item", "date_dim"],
        [
            QueryStage(selectivity=0.04, num_reduces=4),
            QueryStage(selectivity=0.25, num_reduces=2),
        ],
    ),
    _q(
        "q15",
        ["catalog_sales_q", "customer", "date_dim"],
        [
            QueryStage(selectivity=0.05, num_reduces=4),
            QueryStage(selectivity=0.3, num_reduces=2),
        ],
    ),
    _q(
        "q21",
        ["inventory", "item", "date_dim"],
        [
            QueryStage(selectivity=0.03, num_reduces=4),
            QueryStage(selectivity=0.3, num_reduces=2),
        ],
    ),
    _q(
        "q82",
        ["inventory", "store_sales_h1", "item"],
        [
            QueryStage(selectivity=0.04, num_reduces=8),
            QueryStage(selectivity=0.3, num_reduces=2),
        ],
    ),
    _q(
        "q25",
        ["store_sales", "date_dim", "item"],
        [
            QueryStage(selectivity=0.04, num_reduces=8),
            QueryStage(selectivity=0.3, num_reduces=4),
        ],
    ),
    _q(
        "q29",
        ["store_sales", "catalog_sales", "date_dim", "item"],
        [
            QueryStage(selectivity=0.04, num_reduces=8),
            QueryStage(selectivity=0.3, num_reduces=4),
        ],
    ),
)


def query_input_bytes(query: HiveQuery) -> float:
    """Total bytes the query's first stage scans."""
    return sum(TPCDS_TABLES[name].nbytes for name in query.tables)


def get_query(query_id: str) -> HiveQuery:
    for query in TPCDS_QUERIES:
        if query.query_id == query_id:
            return query
    raise KeyError(f"unknown query {query_id!r}")
