"""Hive-like SQL-on-MapReduce layer with the Ignem post-compile hook."""

from .catalog import (
    TPCDS_QUERIES,
    TPCDS_TABLES,
    HiveQuery,
    QueryStage,
    Table,
    get_query,
    query_input_bytes,
)
from .session import HiveSession, QueryResult, ignem_migration_hook

__all__ = [
    "HiveQuery",
    "HiveSession",
    "QueryResult",
    "QueryStage",
    "TPCDS_QUERIES",
    "TPCDS_TABLES",
    "Table",
    "get_query",
    "ignem_migration_hook",
    "query_input_bytes",
]
