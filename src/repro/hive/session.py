"""HiveSession: compiles queries into MR stage-jobs and runs them.

The paper's integration is a one-off framework change: a hook invoked
when Hive finishes compiling a query hands Ignem the list of input files
(Section IV-B3).  All queries then benefit transparently.  This module
reproduces that structure: :class:`HiveSession` compiles a query into a
chain of MR jobs, and :func:`ignem_migration_hook` is the post-compile
hook issuing the single ``migrate`` call.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..mapreduce.spec import EngineConfig, JobSpec
from ..sim.events import Event
from .catalog import TPCDS_TABLES, HiveQuery, query_input_bytes

#: Hive runs its stages on a warm Tez session (paper Section IV-B): the
#: AM and containers are already up, so per-DAG submit/commit overheads
#: are far below a cold MapReduce job's.  Everything else inherits the
#: calibrated engine defaults.
TEZ_SESSION_ENGINE = EngineConfig(
    task_startup_overhead=0.1,
    job_submit_overhead=2.0,
    job_commit_overhead=0.5,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster

#: Signature of a post-compile hook: (session, query, execution_id, paths).
CompileHook = Callable[["HiveSession", HiveQuery, str, List[str]], None]


def ignem_migration_hook(
    session: "HiveSession",
    query: HiveQuery,
    execution_id: str,
    paths: List[str],
) -> None:
    """The paper's hook: migrate the compiled query's inputs via Ignem."""
    session.cluster.client.migrate(paths, execution_id, implicit_eviction=False)


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    query_id: str
    execution_id: str
    input_bytes: float
    submitted_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.submitted_at


class HiveSession:
    """Runs HiveQuery objects on a cluster as chained MR jobs."""

    _ids = itertools.count()

    def __init__(
        self,
        cluster: "Cluster",
        compile_time: float = 2.0,
        hook: Optional[CompileHook] = None,
    ):
        if compile_time < 0:
            raise ValueError("compile_time must be non-negative")
        self.cluster = cluster
        self.compile_time = float(compile_time)
        self.hook = hook
        self.results: List[QueryResult] = []

    def create_tables(self, names: Optional[Sequence[str]] = None) -> None:
        """Materialize warehouse tables in the DFS (idempotent)."""
        tables = (
            TPCDS_TABLES.values()
            if names is None
            else [TPCDS_TABLES[name] for name in names]
        )
        for table in tables:
            if not self.cluster.client.exists(table.path):
                self.cluster.client.create_file(table.path, table.nbytes)

    def run_query(self, query: HiveQuery) -> Event:
        """Execute ``query``; returns an event yielding a QueryResult."""
        done = self.cluster.env.event()
        self.cluster.env.process(
            self._execute(query, done), name=f"hive-{query.query_id}"
        )
        return done

    def _execute(self, query: HiveQuery, done: Event):
        env = self.cluster.env
        execution_id = f"hive-{query.query_id}-x{next(HiveSession._ids):03d}"
        submitted_at = env.now
        input_paths = [TPCDS_TABLES[name].path for name in query.tables]

        # Compile, then fire the post-compile hook (the Ignem integration
        # point): lead-time starts here, well before the first stage's
        # tasks can possibly run.
        yield env.timeout(self.compile_time)
        self.cluster.rm.register_job(execution_id)
        if self.hook is not None:
            self.hook(self, query, execution_id, input_paths)

        stage_inputs = list(input_paths)
        stage_input_bytes = sum(
            self.cluster.namenode.get_file(path).nbytes for path in stage_inputs
        )
        for index, stage in enumerate(query.stages):
            surviving = stage_input_bytes * stage.selectivity
            spec = JobSpec(
                name=f"{execution_id}-s{index}",
                input_paths=tuple(stage_inputs),
                shuffle_bytes=surviving * stage.shuffle_fraction,
                output_bytes=surviving,
                num_reduces=stage.num_reduces,
                map_cpu_factor=stage.map_cpu_factor,
                reduce_cpu_factor=stage.reduce_cpu_factor,
            )
            # Stage jobs do not re-issue migrate calls: the hook already
            # covered the query's DFS inputs, and intermediates are hot.
            job = self.cluster.engine.submit_job(
                spec, use_ignem=False, config=TEZ_SESSION_ENGINE
            )
            yield job.completed
            stage_inputs = [
                f"/out/{job.job_id}/part-{r:04d}" for r in range(job.num_reduces)
            ]
            stage_input_bytes = surviving

        self.cluster.rm.unregister_job(execution_id)
        self.cluster.client.evict(input_paths, execution_id)

        result = QueryResult(
            query_id=query.query_id,
            execution_id=execution_id,
            input_bytes=query_input_bytes(query),
            submitted_at=submitted_at,
            finished_at=env.now,
        )
        self.results.append(result)
        done.succeed(result)
