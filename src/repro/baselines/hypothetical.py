"""The hypothetical instantaneous migration scheme (paper Figure 7).

A scheme that could migrate a job's entire input into memory at the
instant of submission and evict it at the instant of completion.  It
cannot exist (data cannot move instantaneously) but upper-bounds the
speedup — and the paper uses its memory footprint as the comparison
point showing Ignem's footprint is 2.6x smaller.

The footprint is computed analytically from job records plus the block
placement: +input bytes on each holding server at submit, -at completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..metrics.records import JobRecord
from ..sim.rand import RandomSource

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster


@dataclass(frozen=True)
class MemoryTimeline:
    """Step function of migrated bytes on one server over time."""

    node: str
    points: Tuple[Tuple[float, float], ...]  # (time, bytes) after each change

    def nonzero_samples(self) -> List[float]:
        """Byte levels during the non-zero segments (Fig 7 histograms
        'only show samples when memory usage is non-zero')."""
        return [value for _, value in self.points if value > 0]

    def time_weighted_mean_nonzero(self) -> float:
        """Mean bytes held, weighting each level by how long it lasted,
        over the periods when usage was non-zero."""
        total_time = 0.0
        total_area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            if v0 > 0:
                total_time += t1 - t0
                total_area += v0 * (t1 - t0)
        if total_time == 0:
            return 0.0
        return total_area / total_time

    def peak(self) -> float:
        if not self.points:
            return 0.0
        return max(value for _, value in self.points)


def hypothetical_memory_timelines(
    cluster: "Cluster",
    jobs: Sequence[JobRecord],
    input_paths_by_job: Dict[str, Sequence[str]],
    seed: int = 0,
) -> Dict[str, MemoryTimeline]:
    """Per-server memory usage had the hypothetical scheme run the jobs.

    For each job, one replica of every input block (chosen with the same
    seeded-random rule Ignem's master uses) is counted against its server
    from job submission until job completion.
    """
    rng = RandomSource(seed).spawn("hypothetical")
    events: Dict[str, List[Tuple[float, float]]] = {}

    for job in jobs:
        paths = input_paths_by_job.get(job.job_id, ())
        for path in paths:
            if not cluster.namenode.exists(path):
                continue
            for block in cluster.namenode.file_blocks(path):
                locations = cluster.namenode.get_block_locations(block.block_id)
                if not locations:
                    continue
                node = rng.choice(sorted(locations))
                events.setdefault(node, []).append((job.submitted_at, block.nbytes))
                events.setdefault(node, []).append((job.end, -block.nbytes))

    timelines: Dict[str, MemoryTimeline] = {}
    for node, deltas in events.items():
        deltas.sort(key=lambda pair: pair[0])
        points: List[Tuple[float, float]] = [(0.0, 0.0)]
        level = 0.0
        for time, delta in deltas:
            level = max(0.0, level + delta)
            points.append((time, level))
        timelines[node] = MemoryTimeline(node=node, points=tuple(points))
    return timelines


def ignem_memory_timelines(cluster: "Cluster") -> Dict[str, MemoryTimeline]:
    """Ignem's measured per-server footprint, from the slaves' timelines."""
    if not cluster.ignem_slaves:
        raise ValueError("cluster has no Ignem slaves")
    return {
        name: MemoryTimeline(node=name, points=tuple(slave.usage_timeline))
        for name, slave in cluster.ignem_slaves.items()
    }


def mean_footprint(timelines: Dict[str, MemoryTimeline]) -> float:
    """Cluster-wide mean non-zero footprint (the Fig 7 comparison)."""
    values = [t.time_weighted_mean_nonzero() for t in timelines.values()]
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return sum(values) / len(values)
