"""Baselines from the paper's evaluation.

* plain HDFS — a :class:`~repro.cluster.Cluster` without Ignem;
* *HDFS-Inputs-in-RAM* — :meth:`Cluster.pin_all_inputs` (the vmtouch
  upper bound);
* the *hypothetical instantaneous scheme* — analytic memory timelines in
  :mod:`repro.baselines.hypothetical` (Fig 7's comparison point).
"""

from .hypothetical import (
    MemoryTimeline,
    hypothetical_memory_timelines,
    ignem_memory_timelines,
    mean_footprint,
)

__all__ = [
    "MemoryTimeline",
    "hypothetical_memory_timelines",
    "ignem_memory_timelines",
    "mean_footprint",
]
