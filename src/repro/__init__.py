"""repro: a full reproduction of *Ignem: Upward Migration of Cold Data in
Big Data File Systems* (Dzinamarira, Dinu, Ng — ICDCS 2018).

The package builds the paper's entire software stack as a deterministic
discrete-event simulation — storage devices, an HDFS-like DFS, a
YARN-like scheduler, a Tez-like execution engine, a Hive-like query
layer — and implements Ignem (proactive cold-data migration) on top,
together with every baseline, workload, and experiment in the paper.

Quickstart::

    from repro import build_paper_testbed, JobSpec
    from repro.storage import MB

    cluster = build_paper_testbed(ignem=True)
    cluster.client.create_file("/data/logs", 640 * MB)
    job = cluster.engine.submit_job(JobSpec("grep", ("/data/logs",)))
    cluster.run()
    print(f"{job.job_id} took {job.duration:.1f}s")
"""

from .cluster import Cluster, ClusterConfig, build_paper_testbed
from .core import IgnemConfig, IgnemMaster, IgnemSlave
from .mapreduce import EngineConfig, JobSpec, MapReduceEngine
from .metrics import MetricsCollector

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "EngineConfig",
    "IgnemConfig",
    "IgnemMaster",
    "IgnemSlave",
    "JobSpec",
    "MapReduceEngine",
    "MetricsCollector",
    "build_paper_testbed",
    "__version__",
]
