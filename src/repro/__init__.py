"""repro: a full reproduction of *Ignem: Upward Migration of Cold Data in
Big Data File Systems* (Dzinamarira, Dinu, Ng — ICDCS 2018).

The package builds the paper's entire software stack as a deterministic
discrete-event simulation — storage devices, an HDFS-like DFS, a
YARN-like scheduler, a Tez-like execution engine, a Hive-like query
layer — and implements Ignem (proactive cold-data migration) on top,
together with every baseline, workload, and experiment in the paper.

Quickstart::

    from repro import build_paper_testbed, JobSpec
    from repro.storage import MB

    cluster = build_paper_testbed(ignem=True)
    cluster.client.create_file("/data/logs", 640 * MB)
    job = cluster.engine.submit_job(JobSpec("grep", ("/data/logs",)))
    cluster.run()
    print(f"{job.job_id} took {job.duration:.1f}s")

Traced run (observability is off by default; enabling it never changes
simulation outcomes)::

    from repro import RunOptions, TraceReader, build_paper_testbed, JobSpec

    cluster = build_paper_testbed(ignem=True)
    cluster.client.create_file("/data/logs", 640 * MB)
    cluster.engine.submit_job(JobSpec("grep", ("/data/logs",)))
    cluster.run(options=RunOptions(trace="run.jsonl", metrics="metrics.json"))
    print(cluster.metrics.value("ignem.slave.migrations_completed"))
    TraceReader.load("run.jsonl").to_chrome("run.chrome.json")
"""

from .cluster import Cluster, ClusterConfig, RunOptions, build_paper_testbed
from .core import HeatConfig, HeatEstimator, IgnemConfig, IgnemMaster, IgnemSlave
from .mapreduce import EngineConfig, JobSpec, MapReduceEngine
from .metrics import MetricsCollector
from .obs import MetricsRegistry, ObservabilityConfig, TraceReader
from .workloads import ServeConfig, workload_registry

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "EngineConfig",
    "HeatConfig",
    "HeatEstimator",
    "IgnemConfig",
    "IgnemMaster",
    "IgnemSlave",
    "JobSpec",
    "MapReduceEngine",
    "MetricsCollector",
    "MetricsRegistry",
    "ObservabilityConfig",
    "RunOptions",
    "ServeConfig",
    "TraceReader",
    "build_paper_testbed",
    "workload_registry",
    "__version__",
]
