"""The Transport interface: named endpoints exchanging typed messages.

A transport carries :mod:`~repro.transport.messages` between *endpoints*
— string-named message handlers ("master", "namenode",
"datanode/node3", "slave/node0").  Two verbs cover every interaction in
the system:

* :meth:`Transport.request` — request/reply: deliver a message, return
  the handler's reply (RPC semantics; commands, namespace lookups,
  block reads/writes);
* :meth:`Transport.send` — one-way: deliver and forget (heartbeats,
  pipeline notices, failover announcements).

Delivery to an unknown or dead endpoint raises
:class:`~repro.net.network.NetworkError` — the same exception the data
plane uses, so callers have one failure surface for "the other side is
unreachable".

Instrumentation is strictly opt-in: :meth:`instrument` binds
``transport.*`` counters from a :class:`~repro.obs.registry.MetricsRegistry`
and an optional observability facade.  Un-instrumented (the default),
the delivery path performs no counting and no serialisation — the
simulator's clean path stays bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.network import NetworkError
from . import messages as wire

__all__ = ["Transport", "NetworkError"]


class Transport:
    """Base class: endpoint registry plus optional instrumentation.

    Subclasses implement the delivery verbs.  ``register`` overwrites an
    existing registration — restart and HA double-registration both
    re-register the same endpoint name, and last-writer-wins is the
    correct semantics for a process that replaced its predecessor.
    """

    def __init__(self) -> None:
        self._endpoints: Dict[str, Callable] = {}
        self._c_sent = None
        self._c_received = None
        self._c_bytes = None
        self._obs = None

    # -- endpoints ---------------------------------------------------------------

    def register(self, name: str, handler: Callable) -> None:
        """Bind ``name`` to a message handler (``handler(msg) -> reply``)."""
        if not name:
            raise ValueError("endpoint name must be non-empty")
        self._endpoints[name] = handler

    def deregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def _handler(self, endpoint: str) -> Callable:
        handler = self._endpoints.get(endpoint)
        if handler is None:
            raise NetworkError(f"endpoint {endpoint!r} is not registered")
        return handler

    # -- delivery verbs ----------------------------------------------------------

    def request(self, endpoint: str, message):
        """Deliver ``message`` and return the endpoint's reply."""
        raise NotImplementedError

    def send(self, endpoint: str, message) -> None:
        """Deliver ``message`` one-way (no reply)."""
        raise NotImplementedError

    # -- instrumentation ---------------------------------------------------------

    def instrument(self, registry, obs=None) -> None:
        """Opt in to ``transport.*`` counters (and trace spans via
        ``obs``).  Never called on the clean path, so the cost of
        counting — including encoding messages to measure wire size —
        exists only when the user asked for it."""
        self._c_sent = registry.counter("transport.messages_sent")
        self._c_received = registry.counter("transport.messages_received")
        self._c_bytes = registry.counter("transport.bytes_total")
        self._obs = obs

    @property
    def instrumented(self) -> bool:
        return self._c_sent is not None

    def _note(self, endpoint: str, message, reply=None) -> None:
        """Bookkeeping for one delivery (only when instrumented)."""
        if self._c_sent is None:
            return
        self._c_sent.inc()
        nbytes = len(wire.encode(message))
        if reply is not None:
            self._c_received.inc()
            nbytes += len(wire.encode(reply))
        self._c_bytes.inc(nbytes)
        if self._obs is not None:
            self._obs.on_transport_message(
                endpoint, type(message).__name__, nbytes
            )
