"""Typed protocol messages and the versioned wire codec.

Every cross-node interaction in the system — migrate/evict commands,
file-level migration requests, heartbeats, block reads and writes,
replica-pipeline notices, and failover announcements — is expressed as
one of the dataclasses below.  The message set is derived from
``core/commands.py`` (the Ignem master→slave command surface) and the
NameNode/DataNode call surface; a message is the unit a
:class:`~repro.transport.base.Transport` carries.

The codec serialises any message to a self-describing JSON document
``{"v": 1, "kind": "<ClassName>", "body": {...}}`` and back.  Nested
domain objects (:class:`~repro.dfs.blocks.Block`,
:class:`~repro.core.commands.MigrationWorkItem`,
:class:`~repro.core.commands.MigrateCommand`,
:class:`~repro.core.commands.EvictCommand`) travel as tagged dicts;
``bytes`` payloads are base64; JSON lists decode back to tuples so a
decoded message compares equal to the original.  ``MigrationWorkItem``
is reconstructed with its ``seq`` and ``received_at`` passed explicitly
— decoding must never consume the global sequence counter, or wire
round-trips would perturb priority tie-breaks in the simulator.

The ``SimTransport`` never serialises (it hands the original objects to
the destination, preserving delivery identity); the codec is the wire
format of the asyncio backend and the round-trip property suite.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.commands import EvictCommand, MigrateCommand, MigrationWorkItem
from ..dfs.blocks import Block

#: Bumped on any incompatible change to the message set or encoding.
PROTOCOL_VERSION = 1


class CodecError(Exception):
    """A message could not be encoded or decoded (unknown kind, wrong
    protocol version, malformed body)."""


# -- message types -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Ack:
    """Generic acknowledgement reply.  ``ok=False`` mirrors today's
    unacked-RPC semantics (e.g. a dead slave refusing a command)."""

    ok: bool = True


@dataclass(frozen=True, slots=True)
class MigrateMsg:
    """Master → slave: queue this batch of migration work."""

    command: MigrateCommand


@dataclass(frozen=True, slots=True)
class EvictMsg:
    """Master → slave: drop this job's block references."""

    command: EvictCommand


@dataclass(frozen=True, slots=True)
class MigrateFilesRequest:
    """Client → master: migrate these files' blocks for a job
    (the paper's ``client.migrate`` call, Section III-B3)."""

    paths: Tuple[str, ...]
    job_id: str
    implicit_eviction: bool = False
    dst_tier: Optional[str] = None


@dataclass(frozen=True, slots=True)
class EvictFilesRequest:
    """Client → master: the job is done with these files."""

    paths: Tuple[str, ...]
    job_id: str


@dataclass(frozen=True, slots=True)
class PromoteBlocksRequest:
    """Heat policy → master: promote these hot blocks under ``owner``."""

    blocks: Tuple[Block, ...]
    owner: str
    dst_tier: Optional[str] = None


@dataclass(frozen=True, slots=True)
class DemoteBlocksRequest:
    """Heat policy → master: demote cooled blocks promoted under ``owner``."""

    block_ids: Tuple[str, ...]
    owner: str


@dataclass(frozen=True, slots=True)
class HeartbeatMsg:
    """DataNode → NameNode: liveness plus per-tier block residency."""

    node: str
    seq: int
    tier_blocks: Dict[str, Tuple[str, ...]]


@dataclass(frozen=True, slots=True)
class BlockReadRequest:
    """Reader → DataNode: serve one block (or probe its residency)."""

    block_id: str
    prefer_tier: Optional[str] = None


@dataclass(frozen=True, slots=True)
class BlockReadReply:
    ok: bool
    tier: Optional[str] = None
    nbytes: float = 0.0
    data: bytes = b""


@dataclass(frozen=True, slots=True)
class BlockWriteRequest:
    """Writer → DataNode: store a block and forward it down the replica
    pipeline (store-and-forward, the ClusterDFS ``fwdlist`` scheme)."""

    block_id: str
    path: str
    index: int
    data: bytes
    pipeline: Tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class BlockWriteReply:
    ok: bool
    stored: Tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ReplicaPipelineMsg:
    """Repair coordinator → DataNode: a re-replication chain copy is
    pipelining this block through you (one-way bookkeeping notice)."""

    block_id: str
    source: str
    targets: Tuple[str, ...]
    reason: str


@dataclass(frozen=True, slots=True)
class FailoverMsg:
    """HA pair → slaves: the active master changed; purge reference
    state to stay consistent with the new master (paper III-A5)."""

    generation: int
    active: str


@dataclass(frozen=True, slots=True)
class CreateFileRequest:
    """Client → NameNode: create a file and place its blocks."""

    path: str
    nbytes: float
    replication: Optional[int] = None


@dataclass(frozen=True, slots=True)
class BlockPlacement:
    """One placed block inside a :class:`CreateFileReply`."""

    block_id: str
    index: int
    nbytes: float
    nodes: Tuple[str, ...]


@dataclass(frozen=True, slots=True)
class CreateFileReply:
    ok: bool
    blocks: Tuple[BlockPlacement, ...] = ()


@dataclass(frozen=True, slots=True)
class LocationsRequest:
    """Client → NameNode: where does this block live (and which holders
    serve it from memory)?"""

    block_id: str


@dataclass(frozen=True, slots=True)
class LocationsReply:
    nodes: Tuple[str, ...]
    memory_nodes: Tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class FileInfoRequest:
    path: str


@dataclass(frozen=True, slots=True)
class FileInfoReply:
    exists: bool
    blocks: Tuple[BlockPlacement, ...] = ()


#: Every type the codec can carry — top-level messages plus the nested
#: domain objects they embed.
_WIRE_TYPES = (
    Ack,
    MigrateMsg,
    EvictMsg,
    MigrateFilesRequest,
    EvictFilesRequest,
    PromoteBlocksRequest,
    DemoteBlocksRequest,
    HeartbeatMsg,
    BlockReadRequest,
    BlockReadReply,
    BlockWriteRequest,
    BlockWriteReply,
    ReplicaPipelineMsg,
    FailoverMsg,
    CreateFileRequest,
    BlockPlacement,
    CreateFileReply,
    LocationsRequest,
    LocationsReply,
    FileInfoRequest,
    FileInfoReply,
    Block,
    MigrationWorkItem,
    MigrateCommand,
    EvictCommand,
)

MESSAGE_TYPES = tuple(
    t for t in _WIRE_TYPES
    if t not in (Block, MigrationWorkItem, MigrateCommand, EvictCommand)
)

_BY_KIND = {t.__name__: t for t in _WIRE_TYPES}


# -- codec -------------------------------------------------------------------------


def _to_jsonable(value):
    if isinstance(value, bytes):
        return {"__b__": base64.b64encode(value).decode("ascii")}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        kind = type(value).__name__
        if kind not in _BY_KIND:
            raise CodecError(f"unregistered wire type {kind!r}")
        body = {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__t__": kind, **body}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def _from_jsonable(value):
    if isinstance(value, dict):
        if "__b__" in value and len(value) == 1:
            return base64.b64decode(value["__b__"])
        if "__t__" in value:
            kind = value["__t__"]
            cls = _BY_KIND.get(kind)
            if cls is None:
                raise CodecError(f"unknown wire type {kind!r}")
            fields = {
                key: _from_jsonable(item)
                for key, item in value.items()
                if key != "__t__"
            }
            try:
                return cls(**fields)
            except TypeError as exc:
                raise CodecError(f"malformed {kind} body: {exc}") from exc
        return {key: _from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def encode_obj(message) -> dict:
    """Message → envelope dict ``{"v", "kind", "body"}``."""
    kind = type(message).__name__
    if kind not in _BY_KIND:
        raise CodecError(f"unknown message type {kind!r}")
    wire = _to_jsonable(message)
    wire.pop("__t__")
    return {"v": PROTOCOL_VERSION, "kind": kind, "body": wire}


def decode_obj(envelope: dict):
    """Envelope dict → message (inverse of :func:`encode_obj`)."""
    if not isinstance(envelope, dict):
        raise CodecError(f"envelope must be a dict, got {type(envelope).__name__}")
    version = envelope.get("v")
    if version != PROTOCOL_VERSION:
        raise CodecError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    kind = envelope.get("kind")
    body = envelope.get("body")
    if kind not in _BY_KIND or not isinstance(body, dict):
        raise CodecError(f"malformed envelope: kind={kind!r}")
    return _from_jsonable({"__t__": kind, **body})


def encode(message) -> bytes:
    """Message → canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(
        encode_obj(message), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode(payload: bytes):
    """JSON bytes → message (inverse of :func:`encode`)."""
    try:
        envelope = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable payload: {exc}") from exc
    return decode_obj(envelope)
