"""AsyncioTransport: the same protocol over real TCP sockets.

Each endpoint is an ``asyncio`` TCP server on ``127.0.0.1`` with an
OS-assigned port, found through an in-process directory (name →
address).  Frames are 4-byte big-endian length prefixes followed by a
JSON envelope::

    {"v": 1, "mid": 7, "rsvp": true, "kind": "MigrateMsg", "body": {...}}

Replies echo the message id: ``{"v": 1, "re": 7, "kind": ..., "body":
...}`` (or ``{"re": 7, "err": "..."}`` when the handler raised).
Request/reply matching is by ``mid``, so one persistent connection per
(caller, endpoint) pair multiplexes any number of in-flight requests.

Delivery guarantees:

* **per-connection FIFO** — the server consumes each connection's
  frames sequentially and runs the handler to completion before the
  next frame, so two messages from one caller to one endpoint are
  handled in send order (the same order ``SimTransport`` gives);
* **no cross-endpoint ordering** — messages to different endpoints
  race, exactly like independent sockets;
* **errors surface as** :class:`~repro.net.network.NetworkError` — an
  unknown endpoint, a refused/reset connection, a handler crash, or a
  reply timeout all raise it, mirroring the sim's failure surface.

Handlers may be plain functions or coroutines; replies are codec-encoded
messages, so anything the wire format carries can cross the socket.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
from typing import Dict, Optional, Tuple

from .base import NetworkError, Transport
from .messages import decode_obj, encode_obj

__all__ = ["AsyncioTransport", "NetworkError"]

_HEADER = struct.Struct(">I")
#: Frames beyond this are a protocol error (a block plus envelope
#: overhead fits comfortably; this bounds a malformed length prefix).
MAX_FRAME = 64 * 1024 * 1024


async def _read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise NetworkError(f"oversized frame ({length} bytes)")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return json.loads(payload.decode("utf-8"))


def _write_frame(writer: asyncio.StreamWriter, envelope: dict) -> None:
    payload = json.dumps(
        envelope, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    writer.write(_HEADER.pack(len(payload)) + payload)


class _Peer:
    """One persistent client connection to a remote endpoint."""

    __slots__ = ("reader", "writer", "pending", "task")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.pending: Dict[int, asyncio.Future] = {}
        self.task: Optional[asyncio.Task] = None


class AsyncioTransport(Transport):
    """Real sockets on localhost; the ``repro real`` backend."""

    def __init__(self, host: str = "127.0.0.1", reply_timeout: float = 30.0):
        super().__init__()
        self.host = host
        self.reply_timeout = reply_timeout
        self._servers: Dict[str, asyncio.base_events.Server] = {}
        #: Live server-side connection tasks per endpoint.  ``Server.close``
        #: only stops *listening*; established connections must be
        #: cancelled explicitly or they outlive the endpoint.
        self._conn_tasks: Dict[str, set] = {}
        self._directory: Dict[str, Tuple[str, int]] = {}
        self._peers: Dict[str, _Peer] = {}
        self._mids = itertools.count(1)
        self._closed = False

    # -- serving -----------------------------------------------------------------

    async def serve(self, name: str, handler) -> Tuple[str, int]:
        """Start a TCP service for ``name``; returns its address."""
        self.register(name, handler)
        server = await asyncio.start_server(
            lambda r, w: self._serve_connection(name, r, w), self.host, 0
        )
        address = server.sockets[0].getsockname()[:2]
        self._servers[name] = server
        self._directory[name] = (address[0], address[1])
        return self._directory[name]

    async def stop(self, name: str) -> None:
        """Take one endpoint down (its address disappears; in-flight
        connections reset — callers observe :class:`NetworkError`)."""
        self.deregister(name)
        self._directory.pop(name, None)
        server = self._servers.pop(name, None)
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks.pop(name, ())):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def _serve_connection(self, name: str, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.setdefault(name, set()).add(task)
        try:
            while True:
                envelope = await _read_frame(reader)
                if envelope is None:
                    return
                await self._handle_frame(name, envelope, writer)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            if task is not None:
                self._conn_tasks.get(name, set()).discard(task)
            try:
                writer.close()
            except RuntimeError:
                pass  # event loop already torn down

    async def _handle_frame(self, name: str, envelope: dict, writer) -> None:
        mid = envelope.get("mid")
        rsvp = envelope.get("rsvp", False)
        try:
            message = decode_obj(
                {
                    "v": envelope.get("v"),
                    "kind": envelope.get("kind"),
                    "body": envelope.get("body"),
                }
            )
            handler = self._handler(name)
            reply = handler(message)
            if asyncio.iscoroutine(reply):
                reply = await reply
        except Exception as exc:
            if rsvp:
                _write_frame(writer, {"re": mid, "err": f"{exc}"})
            return
        if rsvp:
            out = {"re": mid}
            if reply is not None:
                out.update(encode_obj(reply))
            _write_frame(writer, out)

    # -- calling -----------------------------------------------------------------

    async def _peer(self, endpoint: str) -> _Peer:
        peer = self._peers.get(endpoint)
        if (
            peer is not None
            and not peer.writer.is_closing()
            # A finished reply-consumer means the remote hung up (EOF);
            # TCP would still accept writes, so check the task, not the
            # socket, and reconnect instead of waiting out the timeout.
            and not (peer.task is not None and peer.task.done())
        ):
            return peer
        address = self._directory.get(endpoint)
        if address is None:
            raise NetworkError(f"endpoint {endpoint!r} is not registered")
        try:
            reader, writer = await asyncio.open_connection(*address)
        except (ConnectionError, OSError) as exc:
            raise NetworkError(f"cannot reach {endpoint!r}: {exc}") from exc
        peer = _Peer(reader, writer)
        peer.task = asyncio.ensure_future(self._consume_replies(endpoint, peer))
        self._peers[endpoint] = peer
        return peer

    async def _consume_replies(self, endpoint: str, peer: _Peer) -> None:
        try:
            while True:
                envelope = await _read_frame(peer.reader)
                if envelope is None:
                    break
                future = peer.pending.pop(envelope.get("re"), None)
                if future is None or future.done():
                    continue
                if "err" in envelope:
                    future.set_exception(
                        NetworkError(
                            f"{endpoint!r} failed: {envelope['err']}"
                        )
                    )
                else:
                    future.set_result(envelope)
        finally:
            failure = NetworkError(f"connection to {endpoint!r} lost")
            for future in peer.pending.values():
                if not future.done():
                    future.set_exception(failure)
            peer.pending.clear()

    async def request(self, endpoint: str, message):
        envelope = await self._roundtrip(endpoint, message, rsvp=True)
        if envelope.get("kind") is None:
            reply = None
        else:
            reply = decode_obj(
                {
                    "v": envelope.get("v"),
                    "kind": envelope.get("kind"),
                    "body": envelope.get("body"),
                }
            )
        self._note(endpoint, message, reply)
        return reply

    async def send(self, endpoint: str, message) -> None:
        await self._roundtrip(endpoint, message, rsvp=False)
        self._note(endpoint, message)

    async def _roundtrip(self, endpoint: str, message, rsvp: bool):
        peer = await self._peer(endpoint)
        mid = next(self._mids)
        envelope = encode_obj(message)
        envelope["mid"] = mid
        envelope["rsvp"] = rsvp
        future = None
        if rsvp:
            future = asyncio.get_running_loop().create_future()
            peer.pending[mid] = future
        try:
            _write_frame(peer.writer, envelope)
            await peer.writer.drain()
        except (ConnectionError, OSError) as exc:
            peer.pending.pop(mid, None)
            raise NetworkError(f"send to {endpoint!r} failed: {exc}") from exc
        if not rsvp:
            return None
        try:
            return await asyncio.wait_for(future, self.reply_timeout)
        except asyncio.TimeoutError as exc:
            peer.pending.pop(mid, None)
            raise NetworkError(
                f"no reply from {endpoint!r} within {self.reply_timeout}s"
            ) from exc

    # -- lifecycle ---------------------------------------------------------------

    async def close(self) -> None:
        """Shut every server and client connection down cleanly."""
        if self._closed:
            return
        self._closed = True
        for name in list(self._servers):
            await self.stop(name)
        for peer in self._peers.values():
            if peer.task is not None:
                peer.task.cancel()
            peer.writer.close()
        for peer in self._peers.values():
            if peer.task is not None:
                try:
                    await peer.task
                except (asyncio.CancelledError, Exception):
                    pass
        self._peers.clear()

    @property
    def directory(self) -> Dict[str, Tuple[str, int]]:
        return dict(self._directory)
