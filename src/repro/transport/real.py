"""A real (wall-clock, multi-service) Ignem mini-cluster on localhost.

``python -m repro real`` boots the services below on an
:class:`~repro.transport.aio.AsyncioTransport` — one NameNode, one
Ignem master, N DataNodes, every one a TCP server on 127.0.0.1 — and
drives a serve+migrate workload end-to-end: write files through a
store-and-forward replica pipeline (the ClusterDFS scheme), serve a
Zipf-skewed read phase from disk, migrate the hot files up via the
master (the paper's ``client.migrate``), then serve a second phase and
measure how many reads came from RAM.

This is the same protocol the simulator speaks — the services handle
:mod:`~repro.transport.messages` — with real bytes, real sockets, and
real concurrency.  It is deliberately small: the sim remains the
instrument for performance claims; the real backend proves the protocol
is honest (nothing in it depends on simulator internals) and gives the
fault-finding tools genuine races to hunt.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.commands import EvictCommand, MigrateCommand, MigrationWorkItem
from ..dfs.blocks import Block
from ..sim.rand import RandomSource
from .aio import AsyncioTransport
from .base import NetworkError
from .messages import (
    Ack,
    BlockPlacement,
    BlockReadReply,
    BlockReadRequest,
    BlockWriteReply,
    BlockWriteRequest,
    CreateFileReply,
    CreateFileRequest,
    DemoteBlocksRequest,
    EvictFilesRequest,
    EvictMsg,
    FileInfoReply,
    FileInfoRequest,
    HeartbeatMsg,
    LocationsReply,
    LocationsRequest,
    MigrateFilesRequest,
    MigrateMsg,
    PromoteBlocksRequest,
    ReplicaPipelineMsg,
)

#: Real-mode block size: small enough that a demo writes in milliseconds,
#: large enough that a block is a meaningful payload.
BLOCK_SIZE = 256 * 1024


def block_payload(block_id: str, nbytes: int) -> bytes:
    """Deterministic content for a block (verifiable after migration)."""
    seed = block_id.encode("utf-8")
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:nbytes])


class DataNodeService:
    """One storage node: tiered byte stores plus the migration agent."""

    def __init__(self, name: str, transport: AsyncioTransport):
        self.name = name
        self.transport = transport
        self.tiers: Dict[str, Dict[str, bytes]] = {"mem": {}, "disk": {}}
        self.pipeline_notices = 0
        self._heartbeat_seq = 0
        self._heartbeat_task: Optional[asyncio.Task] = None

    async def start(self, heartbeat_interval: float = 1.0) -> None:
        await self.transport.serve(f"datanode/{self.name}", self.handle_message)
        await self.heartbeat()
        self._heartbeat_task = asyncio.ensure_future(
            self._heartbeat_loop(heartbeat_interval)
        )

    async def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        await self.transport.stop(f"datanode/{self.name}")

    # -- protocol ---------------------------------------------------------------

    async def handle_message(self, msg):
        if isinstance(msg, BlockWriteRequest):
            self.tiers["disk"][msg.block_id] = msg.data
            stored = (self.name,)
            if msg.pipeline:
                # Store-and-forward: pass the remaining pipeline on to
                # the next replica holder (ClusterDFS's fwdlist scheme).
                self.pipeline_notices += 1
                reply = await self.transport.request(
                    f"datanode/{msg.pipeline[0]}",
                    BlockWriteRequest(
                        block_id=msg.block_id,
                        path=msg.path,
                        index=msg.index,
                        data=msg.data,
                        pipeline=msg.pipeline[1:],
                    ),
                )
                stored += reply.stored
            return BlockWriteReply(ok=True, stored=stored)
        if isinstance(msg, BlockReadRequest):
            for tier in ("mem", "disk"):
                if msg.prefer_tier is not None and tier != msg.prefer_tier:
                    continue
                data = self.tiers[tier].get(msg.block_id)
                if data is not None:
                    return BlockReadReply(
                        ok=True, tier=tier, nbytes=float(len(data)), data=data
                    )
            return BlockReadReply(ok=False)
        if isinstance(msg, MigrateMsg):
            for item in msg.command.items:
                data = self.tiers["disk"].get(item.block_id)
                if data is not None:
                    self.tiers["mem"][item.block_id] = data
            # Publish the new residency before acking so the master's
            # request sees a consistent memory-locality index.
            await self.heartbeat()
            return Ack(True)
        if isinstance(msg, EvictMsg):
            for block_id in msg.command.block_ids:
                self.tiers["mem"].pop(block_id, None)
            await self.heartbeat()
            return Ack(True)
        if isinstance(msg, ReplicaPipelineMsg):
            self.pipeline_notices += 1
            return Ack(True)
        raise TypeError(f"datanode cannot handle {type(msg).__name__}")

    # -- heartbeats --------------------------------------------------------------

    async def heartbeat(self) -> None:
        self._heartbeat_seq += 1
        try:
            await self.transport.request(
                "namenode",
                HeartbeatMsg(
                    node=self.name,
                    seq=self._heartbeat_seq,
                    tier_blocks={
                        tier: tuple(sorted(blocks))
                        for tier, blocks in self.tiers.items()
                    },
                ),
            )
        except NetworkError:
            pass  # NameNode down: keep beating, it will hear the next one

    async def _heartbeat_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self.heartbeat()


class NameNodeService:
    """Namespace, block placement, and heartbeat-fed residency index."""

    def __init__(
        self,
        transport: AsyncioTransport,
        datanodes: Tuple[str, ...],
        replication: int = 2,
        block_size: int = BLOCK_SIZE,
        seed: int = 0,
    ):
        self.transport = transport
        self.datanodes = tuple(datanodes)
        self.replication = replication
        self.block_size = block_size
        self.rng = RandomSource(seed)
        self.files: Dict[str, Tuple[BlockPlacement, ...]] = {}
        self.holders: Dict[str, Tuple[str, ...]] = {}
        self.memory: Dict[str, set] = {}
        self.heartbeats: Dict[str, int] = {}

    async def start(self) -> None:
        await self.transport.serve("namenode", self.handle_message)

    def handle_message(self, msg):
        if isinstance(msg, CreateFileRequest):
            if msg.path in self.files:
                return CreateFileReply(ok=False)
            replication = msg.replication or self.replication
            replication = min(replication, len(self.datanodes))
            placements: List[BlockPlacement] = []
            remaining = int(msg.nbytes)
            index = 0
            while remaining > 0:
                nbytes = min(self.block_size, remaining)
                block_id = f"{msg.path}#blk{index}"
                nodes = tuple(
                    self.rng.sample(sorted(self.datanodes), replication)
                )
                self.holders[block_id] = nodes
                placements.append(
                    BlockPlacement(
                        block_id=block_id,
                        index=index,
                        nbytes=float(nbytes),
                        nodes=nodes,
                    )
                )
                remaining -= nbytes
                index += 1
            self.files[msg.path] = tuple(placements)
            return CreateFileReply(ok=True, blocks=tuple(placements))
        if isinstance(msg, FileInfoRequest):
            blocks = self.files.get(msg.path)
            if blocks is None:
                return FileInfoReply(exists=False)
            return FileInfoReply(exists=True, blocks=blocks)
        if isinstance(msg, LocationsRequest):
            nodes = self.holders.get(msg.block_id, ())
            resident = self.memory.get(msg.block_id, set())
            return LocationsReply(
                nodes=nodes,
                memory_nodes=tuple(n for n in nodes if n in resident),
            )
        if isinstance(msg, HeartbeatMsg):
            self.heartbeats[msg.node] = msg.seq
            mem = set(msg.tier_blocks.get("mem", ()))
            for block_id in list(self.memory):
                holders = self.memory[block_id]
                if msg.node in holders and block_id not in mem:
                    holders.discard(msg.node)
            for block_id in mem:
                self.memory.setdefault(block_id, set()).add(msg.node)
            return Ack(True)
        raise TypeError(f"namenode cannot handle {type(msg).__name__}")


class MasterService:
    """The Ignem master as a real service: file→block fan-out of
    migrate/evict commands, with per-(owner, block) eviction routing."""

    def __init__(self, transport: AsyncioTransport, seed: int = 0):
        self.transport = transport
        self.rng = RandomSource(seed)
        self.assignments: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    async def start(self) -> None:
        await self.transport.serve("master", self.handle_message)

    async def handle_message(self, msg):
        if isinstance(msg, MigrateFilesRequest):
            items_by_node: Dict[str, List[MigrationWorkItem]] = {}
            order_hint = 0
            for path in msg.paths:
                info = await self.transport.request(
                    "namenode", FileInfoRequest(path)
                )
                if not info.exists:
                    continue
                for placement in info.blocks:
                    locations = await self.transport.request(
                        "namenode", LocationsRequest(placement.block_id)
                    )
                    if not locations.nodes:
                        continue
                    key = (msg.job_id, placement.block_id)
                    chosen = self.assignments.get(key)
                    if chosen is None:
                        chosen = (self.rng.choice(sorted(locations.nodes)),)
                        self.assignments[key] = chosen
                    for node in chosen:
                        items_by_node.setdefault(node, []).append(
                            MigrationWorkItem(
                                block=Block(
                                    block_id=placement.block_id,
                                    path=path,
                                    index=placement.index,
                                    nbytes=placement.nbytes,
                                ),
                                job_id=msg.job_id,
                                job_input_bytes=placement.nbytes,
                                job_submitted_at=0.0,
                                implicit_eviction=msg.implicit_eviction,
                                order_hint=order_hint,
                                dst_tier=msg.dst_tier or "mem",
                            )
                        )
                    order_hint += 1
            for node, items in items_by_node.items():
                await self.transport.request(
                    f"datanode/{node}",
                    MigrateMsg(MigrateCommand(msg.job_id, tuple(items))),
                )
            return Ack(True)
        if isinstance(msg, (EvictFilesRequest, DemoteBlocksRequest)):
            if isinstance(msg, EvictFilesRequest):
                owner = msg.job_id
                block_ids = []
                for path in msg.paths:
                    info = await self.transport.request(
                        "namenode", FileInfoRequest(path)
                    )
                    block_ids.extend(p.block_id for p in info.blocks)
            else:
                owner = msg.owner
                block_ids = list(msg.block_ids)
            by_node: Dict[str, List[str]] = {}
            for block_id in block_ids:
                for node in self.assignments.pop((owner, block_id), ()):
                    by_node.setdefault(node, []).append(block_id)
            for node, ids in by_node.items():
                await self.transport.request(
                    f"datanode/{node}",
                    EvictMsg(EvictCommand(owner, tuple(ids))),
                )
            return Ack(True)
        if isinstance(msg, PromoteBlocksRequest):
            # The real demo promotes whole files; block-level promotion
            # reuses the file machinery once the heat policy runs real.
            return Ack(True)
        raise TypeError(f"master cannot handle {type(msg).__name__}")


@dataclass
class RealResult:
    """Outcome of one ``repro real`` run."""

    nodes: int
    files: int
    blocks: int
    reads_per_phase: int
    phase1_p50_ms: float
    phase1_p99_ms: float
    phase2_p50_ms: float
    phase2_p99_ms: float
    phase1_ram_reads: int
    phase2_ram_reads: int
    blocks_lost: int
    pipeline_depth: Tuple[int, ...] = ()
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and self.blocks_lost == 0

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "files": self.files,
            "blocks": self.blocks,
            "reads_per_phase": self.reads_per_phase,
            "phase1": {
                "p50_ms": self.phase1_p50_ms,
                "p99_ms": self.phase1_p99_ms,
                "ram_reads": self.phase1_ram_reads,
            },
            "phase2": {
                "p50_ms": self.phase2_p50_ms,
                "p99_ms": self.phase2_p99_ms,
                "ram_reads": self.phase2_ram_reads,
            },
            "blocks_lost": self.blocks_lost,
            "pipeline_forwards": sum(self.pipeline_depth),
            "errors": list(self.errors),
            "ok": self.ok,
        }

    def summary(self) -> str:
        lines = [
            "repro real: serve+migrate on an asyncio localhost cluster",
            f"  nodes={self.nodes} files={self.files} blocks={self.blocks} "
            f"reads/phase={self.reads_per_phase}",
            f"  phase1 (cold):     p50={self.phase1_p50_ms:.2f}ms "
            f"p99={self.phase1_p99_ms:.2f}ms ram_reads={self.phase1_ram_reads}",
            f"  phase2 (migrated): p50={self.phase2_p50_ms:.2f}ms "
            f"p99={self.phase2_p99_ms:.2f}ms ram_reads={self.phase2_ram_reads}",
            f"  blocks_lost={self.blocks_lost} ok={self.ok}",
        ]
        if self.errors:
            lines.extend(f"  error: {err}" for err in self.errors)
        return "\n".join(lines)


def _weighted_pick(rng: RandomSource, items, weights):
    """One weighted draw by CDF inversion (RandomSource has no
    ``choices``; this keeps the demo on the repo's seeded streams)."""
    point = rng.uniform(0.0, sum(weights))
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point <= acc:
            return item
    return items[-1]


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _run_demo(
    nodes: int,
    files: int,
    reads: int,
    seed: int,
    replication: int,
    file_blocks: int,
) -> RealResult:
    transport = AsyncioTransport()
    names = tuple(f"node{i}" for i in range(nodes))
    namenode = NameNodeService(
        transport, names, replication=replication, seed=seed
    )
    master = MasterService(transport, seed=seed)
    datanodes = [DataNodeService(name, transport) for name in names]
    errors: List[str] = []
    rng = RandomSource(seed)
    expected: Dict[str, bytes] = {}
    placements: Dict[str, Tuple[BlockPlacement, ...]] = {}

    try:
        await namenode.start()
        await master.start()
        for dn in datanodes:
            await dn.start()

        # -- write phase: create + pipeline-replicate every file ----------
        paths = [f"/real/file-{i}" for i in range(files)]
        for path in paths:
            created = await transport.request(
                "namenode",
                CreateFileRequest(path, float(BLOCK_SIZE * file_blocks)),
            )
            placements[path] = created.blocks
            for placement in created.blocks:
                data = block_payload(placement.block_id, int(placement.nbytes))
                expected[placement.block_id] = data
                head, tail = placement.nodes[0], placement.nodes[1:]
                reply = await transport.request(
                    f"datanode/{head}",
                    BlockWriteRequest(
                        block_id=placement.block_id,
                        path=path,
                        index=placement.index,
                        data=data,
                        pipeline=tail,
                    ),
                )
                if set(reply.stored) != set(placement.nodes):
                    errors.append(
                        f"pipeline write of {placement.block_id} stored on "
                        f"{reply.stored}, wanted {placement.nodes}"
                    )

        # -- read helper (Zipf-skewed towards the first files) ------------
        all_blocks = [p for path in paths for p in placements[path]]
        weights = [1.0 / (i + 1) for i in range(len(all_blocks))]

        async def serve_phase() -> Tuple[List[float], int]:
            latencies: List[float] = []
            ram = 0
            loop = asyncio.get_running_loop()
            for _ in range(reads):
                placement = _weighted_pick(rng, all_blocks, weights)
                start = loop.time()
                locations = await transport.request(
                    "namenode", LocationsRequest(placement.block_id)
                )
                serving = (
                    rng.choice(sorted(locations.memory_nodes))
                    if locations.memory_nodes
                    else rng.choice(sorted(locations.nodes))
                )
                reply = await transport.request(
                    f"datanode/{serving}", BlockReadRequest(placement.block_id)
                )
                latencies.append((loop.time() - start) * 1000.0)
                if not reply.ok:
                    errors.append(f"read of {placement.block_id} failed")
                elif reply.data != expected[placement.block_id]:
                    errors.append(f"read of {placement.block_id} corrupt")
                elif reply.tier == "mem":
                    ram += 1
            return latencies, ram

        phase1, ram1 = await serve_phase()

        # -- migrate the hot half of the files up -------------------------
        hot = paths[: max(1, len(paths) // 2)]
        await transport.request(
            "master", MigrateFilesRequest(tuple(hot), job_id="serve-demo")
        )

        phase2, ram2 = await serve_phase()

        # -- verify: every replica of every block is intact ---------------
        blocks_lost = 0
        for path in paths:
            for placement in placements[path]:
                for node in placement.nodes:
                    reply = await transport.request(
                        f"datanode/{node}",
                        BlockReadRequest(placement.block_id),
                    )
                    if (
                        not reply.ok
                        or reply.data != expected[placement.block_id]
                    ):
                        blocks_lost += 1

        return RealResult(
            nodes=nodes,
            files=files,
            blocks=len(all_blocks),
            reads_per_phase=reads,
            phase1_p50_ms=_percentile(phase1, 0.50),
            phase1_p99_ms=_percentile(phase1, 0.99),
            phase2_p50_ms=_percentile(phase2, 0.50),
            phase2_p99_ms=_percentile(phase2, 0.99),
            phase1_ram_reads=ram1,
            phase2_ram_reads=ram2,
            blocks_lost=blocks_lost,
            pipeline_depth=tuple(dn.pipeline_notices for dn in datanodes),
            errors=errors,
        )
    finally:
        for dn in datanodes:
            await dn.stop()
        await transport.close()


def run_real_demo(
    nodes: int = 3,
    files: int = 4,
    reads: int = 40,
    seed: int = 0,
    replication: int = 2,
    file_blocks: int = 2,
) -> RealResult:
    """Boot the asyncio mini-cluster and run the serve+migrate demo."""
    if nodes < 3:
        raise ValueError("the real demo needs >= 3 DataNodes")
    return asyncio.run(
        _run_demo(nodes, files, reads, seed, replication, file_blocks)
    )
