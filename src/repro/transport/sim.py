"""SimTransport: in-process delivery preserving direct-call semantics.

The simulator's determinism contract requires that putting the
message-passing seam between components changes *nothing* observable:
delivery must be synchronous, in program order, and must hand the
destination the **original** message objects (the DST differential
model taps command identity at the delivery boundary, and
``MigrationWorkItem`` equality/priority depends on the ``seq`` values
already stamped at construction — re-encoding would consume fresh
counter values and perturb tie-breaks).

``SimTransport`` is therefore a dict dispatch: ``request`` looks up the
endpoint and calls its handler inline.  No queue, no serialisation, no
simulated latency — RPC latency and loss live where they always did,
in the caller's retry machinery (:meth:`IgnemMaster._rpc`), fed by the
simulation clock.  The codec still *works* on every message (the
round-trip property suite proves it); the sim just never needs it.
"""

from __future__ import annotations

from .base import NetworkError, Transport

__all__ = ["SimTransport", "NetworkError"]


class SimTransport(Transport):
    """Synchronous in-process transport (the default backend)."""

    def request(self, endpoint: str, message):
        handler = self._handler(endpoint)
        reply = handler(message)
        self._note(endpoint, message, reply)
        return reply

    def send(self, endpoint: str, message) -> None:
        handler = self._handler(endpoint)
        handler(message)
        self._note(endpoint, message)
