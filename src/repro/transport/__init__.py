"""Message-passing transport layer: one protocol, two backends.

Every cross-node interaction — Ignem migrate/evict commands, namespace
lookups, heartbeats, block reads/writes, replica-pipeline notices,
failover announcements — is a typed message
(:mod:`~repro.transport.messages`) delivered through a
:class:`~repro.transport.base.Transport`:

* :class:`~repro.transport.sim.SimTransport` — synchronous in-process
  dispatch preserving the simulator's direct-call delivery order
  exactly (the default; outputs stay byte-identical);
* :class:`~repro.transport.aio.AsyncioTransport` — the same protocol
  over real TCP sockets on localhost, used by ``python -m repro real``
  (:mod:`~repro.transport.real`).
"""

from ..net.network import NetworkError
from .aio import AsyncioTransport
from .base import Transport
from .messages import (
    PROTOCOL_VERSION,
    Ack,
    BlockPlacement,
    BlockReadReply,
    BlockReadRequest,
    BlockWriteReply,
    BlockWriteRequest,
    CodecError,
    CreateFileReply,
    CreateFileRequest,
    DemoteBlocksRequest,
    EvictFilesRequest,
    EvictMsg,
    FailoverMsg,
    FileInfoReply,
    FileInfoRequest,
    HeartbeatMsg,
    LocationsReply,
    LocationsRequest,
    MigrateFilesRequest,
    MigrateMsg,
    PromoteBlocksRequest,
    ReplicaPipelineMsg,
    decode,
    encode,
)
from .real import RealResult, run_real_demo
from .sim import SimTransport

__all__ = [
    "Ack",
    "AsyncioTransport",
    "BlockPlacement",
    "BlockReadReply",
    "BlockReadRequest",
    "BlockWriteReply",
    "BlockWriteRequest",
    "CodecError",
    "CreateFileReply",
    "CreateFileRequest",
    "DemoteBlocksRequest",
    "EvictFilesRequest",
    "EvictMsg",
    "FailoverMsg",
    "FileInfoReply",
    "FileInfoRequest",
    "HeartbeatMsg",
    "LocationsReply",
    "LocationsRequest",
    "MigrateFilesRequest",
    "MigrateMsg",
    "NetworkError",
    "PROTOCOL_VERSION",
    "PromoteBlocksRequest",
    "RealResult",
    "ReplicaPipelineMsg",
    "SimTransport",
    "Transport",
    "decode",
    "encode",
    "run_real_demo",
]
