"""First-class storage tiers.

The paper's design is a two-level hierarchy — cold data migrates upward
from disk into memory — and earlier revisions hard-coded that binary
(``disk`` vs ``cache``) through every layer.  This module names the
concept instead: a :class:`TierSpec` describes one storage medium (its
ordinal *height*, bandwidth, latency, concurrency penalty), a
:class:`NodeTier` is that medium instantiated on one server, and a
:class:`NodeTierSet` is the ordered per-node hierarchy the DataNode
serves reads from and the Ignem slave migrates into.

The calibrated specs and named tier-set presets live in
:mod:`repro.storage.presets`; the default preset is exactly the paper's
two tiers (``mem`` over ``hdd``), and everything above the storage layer
speaks tier *names*, so a 3-tier ``mem``/``ssd``/``hdd`` hierarchy is a
preset choice, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..sim.engine import Environment
from .buffer_cache import BufferCache
from .device import TransferDevice, no_penalty, seek_thrash_penalty

#: Canonical tier names used by the shipped presets.
MEM = "mem"
SSD = "ssd"
HDD = "hdd"


@dataclass(frozen=True)
class TierSpec:
    """One storage medium: identity plus calibrated device parameters.

    ``height`` is the tier's ordinal position — larger is closer to the
    CPU — and orders tiers within a :class:`NodeTierSet`.  ``bandwidth``,
    ``latency``, ``thrash_alpha`` (``None`` = concurrency-insensitive)
    and ``stream_rate_cap`` parameterize the
    :class:`~repro.storage.device.TransferDevice` the tier serves reads
    from; :meth:`make_device` is the single factory, so presets, cluster
    wiring and tests all share one copy of the numbers.
    """

    name: str
    height: int
    bandwidth: float
    latency: float
    thrash_alpha: Optional[float] = None
    stream_rate_cap: Optional[float] = None
    #: Device-name prefix (``ram`` for the mem tier, by convention).
    device_prefix: str = ""
    #: Label reported by ``ReadHandle.source`` for reads this tier serves.
    read_source: str = ""
    #: Per-node capacity used when the cluster config does not override.
    default_capacity: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.bandwidth <= 0:
            raise ValueError(f"tier {self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"tier {self.name}: latency must be >= 0")

    @property
    def prefix(self) -> str:
        return self.device_prefix or self.name

    @property
    def source(self) -> str:
        return self.read_source or self.name

    def make_device(self, env: Environment, name: str) -> TransferDevice:
        """Build this tier's serving device (shared by all presets)."""
        if self.thrash_alpha is None:
            penalty = no_penalty
        else:
            penalty = seek_thrash_penalty(self.thrash_alpha)
        return TransferDevice(
            env,
            name,
            bandwidth=self.bandwidth,
            latency=self.latency,
            penalty=penalty,
            default_rate_cap=self.stream_rate_cap,
        )

    def make_node_device(self, env: Environment, node_name: str) -> TransferDevice:
        """Build the device for one server, named ``<prefix>-<node>``."""
        return self.make_device(env, f"{self.prefix}-{node_name}")


class NodeTier:
    """One tier instantiated on one server.

    Upper tiers (everything above the bottom) carry a
    :class:`~repro.storage.BufferCache` tracking which blocks are
    resident; the bottom tier is the backing store and holds every
    replica by definition.  The cache is attached by the DataNode (which
    owns flush wiring), so it starts as ``None``.
    """

    __slots__ = ("spec", "device", "capacity", "cache")

    def __init__(
        self, spec: TierSpec, device: TransferDevice, capacity: float
    ):
        if capacity <= 0:
            raise ValueError(f"tier {spec.name}: capacity must be positive")
        self.spec = spec
        self.device = device
        self.capacity = float(capacity)
        self.cache: Optional[BufferCache] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"<NodeTier {self.spec.name} h={self.spec.height}>"


class NodeTierSet:
    """The ordered storage hierarchy of one server, top tier first."""

    __slots__ = ("tiers", "_by_name")

    def __init__(self, tiers: Sequence[NodeTier]):
        if not tiers:
            raise ValueError("a tier set needs at least one tier")
        ordered = sorted(tiers, key=lambda tier: -tier.spec.height)
        heights = [tier.spec.height for tier in ordered]
        if len(set(heights)) != len(heights):
            raise ValueError("tier heights must be distinct within a node")
        names = [tier.spec.name for tier in ordered]
        if len(set(names)) != len(names):
            raise ValueError("tier names must be distinct within a node")
        self.tiers: Tuple[NodeTier, ...] = tuple(ordered)
        self._by_name: Dict[str, NodeTier] = {
            tier.spec.name: tier for tier in ordered
        }

    @property
    def top(self) -> NodeTier:
        return self.tiers[0]

    @property
    def bottom(self) -> NodeTier:
        return self.tiers[-1]

    @property
    def upper(self) -> Tuple[NodeTier, ...]:
        """Every tier above the backing store, top first."""
        return self.tiers[:-1]

    def names(self) -> Tuple[str, ...]:
        return tuple(tier.spec.name for tier in self.tiers)

    def get(self, name: str) -> Optional[NodeTier]:
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[NodeTier]:
        return iter(self.tiers)

    def __len__(self) -> int:
        return len(self.tiers)

    def __repr__(self) -> str:
        return f"<NodeTierSet {'/'.join(self.names())}>"


def build_tier_set(
    env: Environment,
    specs: Sequence[TierSpec],
    node_name: str,
    capacities: Optional[Mapping[str, float]] = None,
) -> NodeTierSet:
    """Instantiate ``specs`` on one server.

    Devices are created bottom-up (backing disk first) so the default
    2-tier preset creates devices in exactly the order the pre-tier
    cluster wiring did.  ``capacities`` overrides per-tier capacity by
    tier name; anything not named falls back to the spec default.
    """
    capacities = capacities or {}
    tiers = []
    for spec in sorted(specs, key=lambda spec: spec.height):
        capacity = capacities.get(spec.name, spec.default_capacity)
        tiers.append(
            NodeTier(spec, spec.make_node_device(env, node_name), capacity)
        )
    return NodeTierSet(tiers)
