"""Storage substrate: device models and the OS buffer cache.

The physics layer of the reproduction.  Devices are processor-sharing
byte movers whose aggregate bandwidth degrades with concurrency (hard
disks thrash, SSDs barely notice, RAM not at all); the buffer cache gives
each server a pinnable page cache with LRU eviction and background
write-back — the substrate onto which Ignem's mmap/mlock migration maps.
"""

from .buffer_cache import BufferCache, CacheEntry
from .device import (
    GB,
    MB,
    Transfer,
    TransferDevice,
    UtilizationProbe,
    no_penalty,
    seek_thrash_penalty,
)
from .presets import (
    DEFAULT_BLOCK_SIZE,
    HDD_BANDWIDTH,
    RAM_BANDWIDTH,
    SSD_BANDWIDTH,
    make_hdd,
    make_ram,
    make_ssd,
)

__all__ = [
    "GB",
    "MB",
    "DEFAULT_BLOCK_SIZE",
    "HDD_BANDWIDTH",
    "RAM_BANDWIDTH",
    "SSD_BANDWIDTH",
    "BufferCache",
    "CacheEntry",
    "Transfer",
    "TransferDevice",
    "UtilizationProbe",
    "make_hdd",
    "make_ram",
    "make_ssd",
    "no_penalty",
    "seek_thrash_penalty",
]
