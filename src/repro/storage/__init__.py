"""Storage substrate: device models and the OS buffer cache.

The physics layer of the reproduction.  Devices are processor-sharing
byte movers whose aggregate bandwidth degrades with concurrency (hard
disks thrash, SSDs barely notice, RAM not at all); the buffer cache gives
each server a pinnable page cache with LRU eviction and background
write-back — the substrate onto which Ignem's mmap/mlock migration maps.
"""

from .buffer_cache import BufferCache, CacheEntry
from .device import (
    GB,
    MB,
    Transfer,
    TransferDevice,
    UtilizationProbe,
    no_penalty,
    seek_thrash_penalty,
)
from .presets import (
    DEFAULT_BLOCK_SIZE,
    HDD_BANDWIDTH,
    HDD_TIER,
    MEM_TIER,
    RAM_BANDWIDTH,
    SSD_BANDWIDTH,
    SSD_TIER,
    TIER_PRESETS,
    make_hdd,
    make_ram,
    make_ssd,
    tier_preset,
)
from .tiers import (
    HDD,
    MEM,
    SSD,
    NodeTier,
    NodeTierSet,
    TierSpec,
    build_tier_set,
)

__all__ = [
    "GB",
    "MB",
    "DEFAULT_BLOCK_SIZE",
    "HDD",
    "HDD_BANDWIDTH",
    "HDD_TIER",
    "MEM",
    "MEM_TIER",
    "RAM_BANDWIDTH",
    "SSD",
    "SSD_BANDWIDTH",
    "SSD_TIER",
    "TIER_PRESETS",
    "BufferCache",
    "CacheEntry",
    "NodeTier",
    "NodeTierSet",
    "TierSpec",
    "Transfer",
    "TransferDevice",
    "UtilizationProbe",
    "build_tier_set",
    "make_hdd",
    "make_ram",
    "make_ssd",
    "no_penalty",
    "seek_thrash_penalty",
    "tier_preset",
]
