"""Processor-sharing storage device model.

A :class:`TransferDevice` serves any number of concurrent byte transfers.
The device has an *aggregate* bandwidth that depends on the number of
concurrent streams through a pluggable concurrency-penalty curve: one
sequential stream gets the full sequential bandwidth, while many
concurrent streams on a spinning disk interleave and the aggregate
degrades.  This is the physical effect Ignem exploits — a dedicated
sequential migration stream moves bytes more efficiently than a busy
mapper wave (paper Section III-A1, Figure 1, and the Ignem+10s result in
Section IV-F).

Sharing is max-min fair: each transfer may carry a ``rate_cap`` (e.g. the
mmap/mlock page-in path of Ignem's slaves is self-limited well below raw
disk bandwidth); capped streams take at most their cap and the slack is
redistributed to the unconstrained streams.  Whenever the active set
changes, progress is settled at the old rates and the next completion is
rescheduled.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

try:  # pragma: no cover - numpy is present in the supported environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..sim.engine import Environment
from ..sim.events import Event

#: Tolerance (in bytes) below which a transfer counts as finished.
#: Sub-byte remainders are float noise, never real data.
_EPSILON_BYTES = 1e-2

#: Above this many active streams the device switches to the vectorized
#: resharing path (numpy water-fill over parallel arrays); below
#: ``_VECTOR_EXIT`` it switches back.  The hysteresis band keeps a device
#: hovering around the threshold from paying the sync cost every event.
#: Default-config runs never reach 65 concurrent streams on one device,
#: so the scalar arithmetic — and the golden outputs — are untouched.
_VECTOR_THRESHOLD = 64
_VECTOR_EXIT = 48

MB = 1024 * 1024
GB = 1024 * MB


def _consume_failure(event: Event) -> None:
    """Sink callback marking an intentionally-aborted event as handled."""


class Transfer:
    """One in-flight byte transfer on a :class:`TransferDevice`."""

    __slots__ = (
        "id",
        "nbytes",
        "remaining",
        "done",
        "tag",
        "rate_cap",
        "rate",
        "submitted_at",
        "started_at",
    )

    _ids = itertools.count()

    def __init__(
        self,
        nbytes: float,
        done: Event,
        tag: Any = None,
        rate_cap: Optional[float] = None,
    ):
        self.id = next(Transfer._ids)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.done = done
        self.tag = tag
        self.rate_cap = rate_cap
        #: Current allocated rate (bytes/s); set by the device.
        self.rate = 0.0
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"<Transfer #{self.id} {self.nbytes / MB:.1f}MB "
            f"remaining={self.remaining / MB:.1f}MB tag={self.tag!r}>"
        )


def no_penalty(streams: int) -> float:
    """Aggregate efficiency is 1.0 regardless of concurrency (RAM-like)."""
    return 1.0


def seek_thrash_penalty(alpha: float) -> Callable[[int], float]:
    """HDD-style penalty: aggregate efficiency 1 / (1 + alpha * (n - 1)).

    With ``alpha=0`` the device is a pure PS server; larger ``alpha``
    makes concurrent streams collectively slower than one sequential
    stream, modeling seek overhead between interleaved readers.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")

    def penalty(streams: int) -> float:
        if streams <= 1:
            return 1.0
        return 1.0 / (1.0 + alpha * (streams - 1))

    return penalty


class TransferDevice:
    """A storage device serving concurrent transfers by max-min fair
    processor sharing.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Human-readable identifier (shows up in metrics).
    bandwidth:
        Sequential (single-stream) bandwidth in bytes/second.
    latency:
        Fixed per-transfer setup time in seconds (seek + request setup).
        Modeled as a delay before the transfer joins the shared stream.
    penalty:
        Aggregate-efficiency curve ``f(n) -> (0, 1]``; the device moves
        at most ``bandwidth * f(n)`` bytes/second across ``n`` streams.
    default_rate_cap:
        Per-stream ceiling applied to transfers that do not specify their
        own ``rate_cap``.  Lets DRAM be modeled as a huge aggregate whose
        individual streams still run at memcpy speed.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        penalty: Optional[Callable[[int], float]] = None,
        default_rate_cap: Optional[float] = None,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if default_rate_cap is not None and default_rate_cap <= 0:
            raise ValueError(
                f"default_rate_cap must be positive, got {default_rate_cap}"
            )
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.penalty = penalty or no_penalty
        self.default_rate_cap = default_rate_cap

        self._active: List[Transfer] = []
        self._epoch = 0
        self._expected_finisher: Optional[Transfer] = None
        self._pending_wakeup = None
        self._last_update = env.now
        # Vectorized resharing state (engaged above _VECTOR_THRESHOLD
        # streams): parallel numpy arrays indexed like _active.  While
        # engaged, per-record ``remaining``/``rate`` are stale — the
        # arrays are authoritative — and are synced back on exit.
        self._vec_rem = None
        self._vec_caps = None
        self._vec_rates = None
        self._vec_rate_sum = 0.0
        self._expected_idx = -1
        # Instrumentation integrals.
        self._busy_time = 0.0
        self._bytes_moved = 0.0
        #: Completion hook ``(Transfer) -> None``, fired per successful
        #: transfer.  ``None`` is the zero-overhead clean path; the
        #: observability layer installs one when storage tracing is on.
        self.on_complete: Optional[Callable[[Transfer], None]] = None

    # -- public API ----------------------------------------------------------

    def transfer(
        self,
        nbytes: float,
        tag: Any = None,
        rate_cap: Optional[float] = None,
    ) -> Event:
        """Start moving ``nbytes``; returns an event that fires when done.

        ``rate_cap`` bounds this transfer's share (bytes/s) — the slack is
        redistributed to unconstrained streams.  The event's value is the
        :class:`Transfer` record.  Zero-byte transfers complete after just
        the device latency.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        done = Event(self.env)
        record = Transfer(
            nbytes, done, tag=tag, rate_cap=rate_cap or self.default_rate_cap
        )
        record.submitted_at = self.env.now
        if self.latency > 0:
            delay = self.env.timeout(self.latency)
            delay.callbacks.append(lambda _event, rec=record: self._admit(rec))
        else:
            self._admit(record)
        return done

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the sequential bandwidth mid-run (slow-disk fault).

        Progress made so far is settled at the old rates; every in-flight
        transfer continues at the new speed.  Used by the fault injector
        to model a straggling disk without disturbing the transfer set.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if bandwidth == self.bandwidth:
            return
        self._settle()
        self.bandwidth = float(bandwidth)
        self._reschedule()

    def fail_all(self, error: BaseException) -> int:
        """Abort every in-flight transfer, failing its done event with
        ``error`` (the device's host died).  Returns the abort count.

        A waiter that died in the same host failure (its container is
        interrupted at URGENT priority, unsubscribing it before the
        failed event processes) would leave the event callback-less and
        the engine would treat the failure as unhandled — so each
        aborted event gets a sink callback; live waiters still see the
        exception.
        """
        if not self._active:
            return 0
        self._settle()
        if self._vec_rem is not None:
            self._vec_sync_out()
        failed = self._active
        self._active = []
        self._reschedule()
        for record in failed:
            record.done.fail(error)
            record.done.callbacks.append(_consume_failure)
        return len(failed)

    def cancel(self, done_event: Event) -> bool:
        """Abort the in-flight transfer whose done-event is ``done_event``.

        Returns ``True`` if a transfer was cancelled.  The done event is
        never triggered for a cancelled transfer.
        """
        for index, record in enumerate(self._active):
            if record.done is done_event:
                self._settle()
                self._active.pop(index)
                if self._vec_rem is not None:
                    record.remaining = float(self._vec_rem[index])
                    self._vec_rem = np.delete(self._vec_rem, index)
                    self._vec_caps = np.delete(self._vec_caps, index)
                    self._vec_rates = np.delete(self._vec_rates, index)
                self._reschedule()
                return True
        return False

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the device."""
        return len(self._active)

    @property
    def queue_depth(self) -> int:
        """Alias for :attr:`active_transfers` (PS device has no queue)."""
        return len(self._active)

    @property
    def busy_time(self) -> float:
        """Total simulated seconds during which >=1 transfer was active."""
        self._settle()
        return self._busy_time

    @property
    def bytes_moved(self) -> float:
        """Total bytes transferred so far."""
        self._settle()
        return self._bytes_moved

    def current_rate(self) -> float:
        """Bytes/second of the slowest active stream (0 when idle)."""
        if not self._active:
            return 0.0
        if self._vec_rates is not None:
            return float(self._vec_rates.min())
        granted = self._recompute_rates()
        return min(record.rate for record in granted)

    def aggregate_rate(self) -> float:
        """Total bytes/second across all active streams right now."""
        if not self._active:
            return 0.0
        if self._vec_rates is not None:
            return float(self._vec_rate_sum)
        return sum(record.rate for record in self._recompute_rates())

    def estimate_time(self, nbytes: float, extra_streams: int = 0) -> float:
        """Rough time to move ``nbytes`` at the current concurrency level.

        A planning helper, not a guarantee: assumes the active set stays
        as it is plus ``extra_streams`` additional streams.
        """
        streams = len(self._active) + max(1, extra_streams)
        rate = self.bandwidth * self.penalty(streams) / streams
        return self.latency + nbytes / rate

    # -- internals -------------------------------------------------------------

    def _admit(self, record: Transfer) -> None:
        self._settle()
        record.started_at = self.env.now
        if record.remaining <= _EPSILON_BYTES:
            record.done.succeed(record)
            if self.on_complete is not None:
                self.on_complete(record)
            return
        self._active.append(record)
        if self._vec_rem is not None:
            self._vec_rem = np.append(self._vec_rem, record.remaining)
            cap = record.rate_cap
            self._vec_caps = np.append(
                self._vec_caps, float("inf") if cap is None else cap
            )
            self._vec_rates = np.append(self._vec_rates, 0.0)
        self._reschedule()

    def _recompute_rates(self) -> List[Transfer]:
        """Set max-min fair rates on the active set (water-filling).

        Writes each record's ``rate`` in place and returns the records in
        grant order.  Grants ascend by cap so slack from tightly-capped
        streams flows to the unconstrained ones.  When no stream is capped
        the sort is skipped: a stable sort on all-equal keys is the
        original order, so the arithmetic sequence is unchanged.
        """
        active = self._active
        streams = len(active)
        budget = self.bandwidth * self.penalty(streams)
        if streams == 1:
            # Lone stream: the whole budget, clipped by its cap.  Matches
            # the general path bit for bit (``budget / 1`` is exact).
            record = active[0]
            cap = record.rate_cap
            record.rate = budget if cap is None else min(cap, budget)
            return active
        # Classify the cap layout in one pass; the full sort is needed
        # only for >=2 capped streams out of grant order.  Every fast
        # path reproduces the stable-sort order exactly: an ascending
        # key sequence is already sorted, and with one capped stream the
        # sorted order is that stream first, the rest in list order.
        inf = float("inf")
        capped_count = 0
        first_capped = None
        ascending = True
        prev_key = -1.0
        for record in active:
            cap = record.rate_cap
            if cap is None:
                key = inf
            else:
                key = cap
                capped_count += 1
                if first_capped is None:
                    first_capped = record
            if key < prev_key:
                ascending = False
            prev_key = key
        if ascending or capped_count == 0:
            pending = active
        elif capped_count == 1:
            pending = [first_capped]
            for record in active:
                if record is not first_capped:
                    pending.append(record)
        else:
            pending = sorted(
                active,
                key=lambda t: t.rate_cap if t.rate_cap is not None else inf,
            )
        count = streams
        for record in pending:
            fair = budget / count
            cap = record.rate_cap
            rate = fair if cap is None else min(cap, fair)
            record.rate = rate
            budget -= rate
            count -= 1
        return pending

    def _settle(self) -> None:
        """Account progress for all active transfers up to ``env.now``
        at the rates fixed by the last reschedule."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        if self._vec_rem is not None:
            self._vec_rem -= self._vec_rates * elapsed
            self._busy_time += elapsed
            self._bytes_moved += self._vec_rate_sum * elapsed
            return
        moved = 0.0
        for record in self._active:
            delta = record.rate * elapsed
            record.remaining -= delta
            moved += delta
        self._busy_time += elapsed
        self._bytes_moved += moved

    def _reschedule(self) -> None:
        """Fix rates for the active set and schedule the next completion."""
        self._epoch += 1
        self._expected_finisher = None
        self._expected_idx = -1
        pending = self._pending_wakeup
        if pending is not None:
            # Retract the superseded wakeup so the dispatch loop recycles
            # it without re-entering Python (the old epoch-check path).
            pending.cancel()
            self._pending_wakeup = None
        active = self._active
        if not active:
            self._vec_rem = self._vec_caps = self._vec_rates = None
            return
        if self._vec_rem is not None:
            if len(active) < _VECTOR_EXIT:
                self._vec_sync_out()
        elif np is not None and len(active) > _VECTOR_THRESHOLD:
            self._vec_enter()
        if self._vec_rem is not None:
            self._vec_reschedule()
            return
        epoch = self._epoch
        self._recompute_rates()
        # First transfer with the smallest projected finish time (manual
        # min: avoids a lambda call per stream; strict ``<`` keeps the
        # same first-wins tie-breaking as min() with a key).
        projected: Optional[Transfer] = None
        best = float("inf")
        for record in active:
            rate = record.rate
            if rate > 0:
                finish = record.remaining / rate
                if finish < best:
                    best = finish
                    projected = record
        if projected is None:
            return  # everything is stalled (all caps zero — impossible)
        # Remember who this wakeup is for: if the epoch still matches when
        # it fires, the active set (and hence the rates) never changed, so
        # the projected transfer has truly finished even when float
        # round-off leaves a sub-epsilon residue that a same-instant
        # timeout could never burn down.
        self._expected_finisher = projected
        # The epoch rides as the timeout's value so one bound method
        # serves every wakeup (no per-reschedule closure allocation).
        wakeup = self.env.pooled_timeout(max(0.0, best), value=epoch)
        wakeup.callbacks.append(self._wakeup)
        self._pending_wakeup = wakeup

    # -- vectorized resharing (>_VECTOR_THRESHOLD streams) --------------------

    def _vec_enter(self) -> None:
        """Lift record state into parallel numpy arrays."""
        active = self._active
        count = len(active)
        self._vec_rem = np.fromiter(
            (r.remaining for r in active), dtype=float, count=count
        )
        inf = float("inf")
        self._vec_caps = np.fromiter(
            (inf if r.rate_cap is None else r.rate_cap for r in active),
            dtype=float,
            count=count,
        )
        self._vec_rates = np.zeros(count)

    def _vec_sync_out(self) -> None:
        """Copy array state back into the records and leave vector mode."""
        rem = self._vec_rem
        rates = self._vec_rates
        for index, record in enumerate(self._active):
            record.remaining = float(rem[index])
            record.rate = float(rates[index])
        self._vec_rem = self._vec_caps = self._vec_rates = None

    def _vec_water_fill(self):
        """Closed-form max-min water-fill over the cap array.

        Same allocation the sequential loop computes, evaluated level-wise:
        sort caps ascending, find the first stream whose cap exceeds its
        fair share of the then-remaining budget, and give it and everyone
        after it that level.  May differ from the scalar loop by float
        ulps — acceptable because this path only engages above
        ``_VECTOR_THRESHOLD`` streams, a regime the golden runs never
        enter — but is fully deterministic for a given active set.
        """
        caps = self._vec_caps
        count = len(caps)
        budget = self.bandwidth * self.penalty(count)
        order = np.argsort(caps, kind="stable")
        sorted_caps = caps[order]
        spent_before = np.empty(count)
        spent_before[0] = 0.0
        np.cumsum(sorted_caps[:-1], out=spent_before[1:])
        fair = (budget - spent_before) / np.arange(count, 0, -1, dtype=float)
        unbound = sorted_caps >= fair
        if unbound.any():
            level_index = int(np.argmax(unbound))
            sorted_rates = np.minimum(sorted_caps, fair[level_index])
        else:
            # Every cap binds: the budget is not even exhausted.
            sorted_rates = sorted_caps.copy()
        rates = np.empty(count)
        rates[order] = sorted_rates
        return rates

    def _vec_reschedule(self) -> None:
        rates = self._vec_water_fill()
        self._vec_rates = rates
        self._vec_rate_sum = float(rates.sum())
        finish = self._vec_rem / rates
        index = int(np.argmin(finish))
        best = float(finish[index])
        self._expected_idx = index
        self._expected_finisher = self._active[index]
        wakeup = self.env.pooled_timeout(max(0.0, best), value=self._epoch)
        wakeup.callbacks.append(self._wakeup)
        self._pending_wakeup = wakeup

    def _wakeup(self, event: Event) -> None:
        self._pending_wakeup = None
        epoch = event._value
        if epoch != self._epoch:
            return  # superseded by a newer reschedule
        self._settle()
        if self._vec_rem is not None:
            rem = self._vec_rem
            if self._expected_idx >= 0:
                rem[self._expected_idx] = 0.0
            done_mask = rem <= _EPSILON_BYTES
            indices = np.nonzero(done_mask)[0]
            active = self._active
            finished = [active[i] for i in indices]
            if finished:
                keep = ~done_mask
                self._vec_rem = rem[keep]
                self._vec_caps = self._vec_caps[keep]
                self._vec_rates = self._vec_rates[keep]
                self._active = [
                    active[i] for i in np.nonzero(keep)[0]
                ]
            self._reschedule()
            hook = self.on_complete
            for record in finished:
                record.remaining = 0.0
                record.done.succeed(record)
                if hook is not None:
                    hook(record)
            return
        if self._expected_finisher is not None:
            self._expected_finisher.remaining = 0.0
        finished = [r for r in self._active if r.remaining <= _EPSILON_BYTES]
        for record in finished:
            self._active.remove(record)
        # Reschedule *before* succeeding the events: completion callbacks
        # may start new transfers on this device synchronously.
        self._reschedule()
        hook = self.on_complete
        for record in finished:
            record.remaining = 0.0
            record.done.succeed(record)
            if hook is not None:
                hook(record)

    def __repr__(self) -> str:
        return (
            f"<TransferDevice {self.name!r} bw={self.bandwidth / MB:.0f}MB/s "
            f"active={len(self._active)}>"
        )


class UtilizationProbe:
    """Samples a device's busy fraction over fixed windows.

    Used by the Fig 4 reproduction to derive per-server disk utilization
    timelines the way the paper derives them from the Google trace.
    """

    def __init__(self, env: Environment, device: TransferDevice, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.env = env
        self.device = device
        self.window = float(window)
        self.samples: List[float] = []
        self._last_busy = device.busy_time
        env.process(self._run(), name=f"util-probe-{device.name}")

    def _run(self):
        while True:
            yield self.env.timeout(self.window)
            busy = self.device.busy_time
            self.samples.append((busy - self._last_busy) / self.window)
            self._last_busy = busy
