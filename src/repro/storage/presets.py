"""Calibrated device presets matching the paper's testbed (Section IV-A).

The paper's servers have one 1TB HDD, 128GB RAM, and a 10Gbps network.
The figures to reproduce pin down the effective speeds:

* Fig 1: 64MB HDFS block reads from RAM are ~160x faster than from HDD
  and ~7x faster than from SSD, *under the concurrency of a running
  MapReduce workload*.
* Table II: a 64MB-reading mapper takes ~6.4s on HDFS (disk) and ~0.28s
  with inputs in RAM — so a contended HDD stream delivers ~10MB/s while
  a RAM read delivers GB/s.
* Section III-A1 / IV-F: one *sequential* migration stream reads far
  faster than contended mapper streams, which is why Ignem migrates one
  block at a time.

The presets below reproduce those ratios:

============ ================== ============ ======================
device       sequential bw      latency      concurrency penalty
============ ================== ============ ======================
HDD          130 MB/s           8 ms         1 / (1 + 0.12 (n-1))
SSD          2000 MB/s          0.1 ms       1 / (1 + 0.005 (n-1))
RAM          1.7 GB/s           ~0           none
============ ================== ============ ======================

With ~8 concurrent mapper streams per disk (one busy wave of a large
job), the HDD serves ~8.8MB/s per stream (64MB in ~7s); RAM reads the
same block in ~0.038s (~160x faster); SSD lands ~7x slower than RAM per
Fig 1b/1c.  One *sequential* stream still gets the full 130MB/s — the
~1.9x aggregate efficiency gap between one migration stream and a busy
mapper wave is what makes Ignem's one-block-at-a-time migration (and the
Ignem+10s result) profitable.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.engine import Environment
from .device import GB, MB, TransferDevice
from .tiers import HDD, MEM, SSD, TierSpec

#: Default HDFS block size used throughout the paper's evaluation.
DEFAULT_BLOCK_SIZE = 64 * MB

HDD_BANDWIDTH = 130 * MB
HDD_LATENCY = 0.008
HDD_THRASH_ALPHA = 0.12

SSD_BANDWIDTH = 2000 * MB
SSD_LATENCY = 0.0001
SSD_THRASH_ALPHA = 0.005

#: Per-stream page-cache read throughput (one mapper's memcpy speed).
RAM_STREAM_RATE = 1.7 * GB
#: Aggregate DRAM bandwidth: many streams each run at full stream rate.
RAM_BANDWIDTH = 64 * GB
RAM_LATENCY = 0.0

#: The calibrated tier specs.  These are the single copy of the device
#: numbers; ``make_hdd``/``make_ssd``/``make_ram`` below and the cluster
#: tier wiring all build devices through them.
MEM_TIER = TierSpec(
    name=MEM,
    height=2,
    bandwidth=RAM_BANDWIDTH,
    latency=RAM_LATENCY,
    thrash_alpha=None,
    stream_rate_cap=RAM_STREAM_RATE,
    device_prefix="ram",
    read_source="ram",
    default_capacity=128 * GB,
)

SSD_TIER = TierSpec(
    name=SSD,
    height=1,
    bandwidth=SSD_BANDWIDTH,
    latency=SSD_LATENCY,
    thrash_alpha=SSD_THRASH_ALPHA,
    default_capacity=256 * GB,
)

HDD_TIER = TierSpec(
    name=HDD,
    height=0,
    bandwidth=HDD_BANDWIDTH,
    latency=HDD_LATENCY,
    thrash_alpha=HDD_THRASH_ALPHA,
    default_capacity=1024 * GB,
)

#: Named per-node tier hierarchies selectable via ``ClusterConfig``.
#: ``default`` is exactly the paper's testbed: memory over one HDD.
TIER_PRESETS: Dict[str, Tuple[TierSpec, ...]] = {
    "default": (MEM_TIER, HDD_TIER),
    "mem-hdd": (MEM_TIER, HDD_TIER),
    "mem-ssd": (MEM_TIER, SSD_TIER),
    "mem-ssd-hdd": (MEM_TIER, SSD_TIER, HDD_TIER),
}


def tier_preset(name: str) -> Tuple[TierSpec, ...]:
    """Look up a named tier preset; raises ``KeyError`` with the roster."""
    try:
        return TIER_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(TIER_PRESETS))
        raise KeyError(f"unknown tier preset {name!r} (known: {known})") from None


def make_hdd(env: Environment, name: str = "hdd") -> TransferDevice:
    """A 1TB-class spinning disk with heavy concurrent-read degradation."""
    return HDD_TIER.make_device(env, name)


def make_ssd(env: Environment, name: str = "ssd") -> TransferDevice:
    """A SATA-class SSD: fast, mildly sensitive to concurrency."""
    return SSD_TIER.make_device(env, name)


def make_ram(env: Environment, name: str = "ram") -> TransferDevice:
    """Server DRAM viewed as a block source (page-cache reads).

    DRAM has far more aggregate bandwidth than any realistic number of
    concurrent block readers can use, so each read runs at the per-stream
    memcpy rate regardless of concurrency.
    """
    return MEM_TIER.make_device(env, name)
