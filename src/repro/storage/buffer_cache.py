"""OS buffer-cache model with pinning (the mmap/mlock substrate).

Ignem's slaves migrate blocks by mmap+mlock-ing the block files so the
data lands in the OS buffer cache, pinned against page-out (paper Section
III-B1).  This module models that cache per server:

* entries are keyed by arbitrary hashable keys (block IDs) with a byte
  size;
* *pinned* entries (mlock) can never be evicted until unpinned (munmap);
* unpinned entries are evicted LRU when capacity is exceeded;
* dirty bytes from absorbed writes are flushed to the backing device in
  the background, contending with foreground reads exactly as real
  write-back does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Set

from ..sim.engine import Environment
from .device import MB, TransferDevice


class CacheEntry:
    """One resident object in the buffer cache."""

    __slots__ = ("key", "nbytes", "pinned", "cached_at")

    def __init__(self, key: Hashable, nbytes: float, pinned: bool, now: float):
        self.key = key
        self.nbytes = float(nbytes)
        self.pinned = pinned
        self.cached_at = now


class BufferCache:
    """A per-server page cache with mlock-style pinning.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Cache capacity in bytes (the server's usable RAM).
    flush_device:
        Backing device that absorbs write-back traffic.  ``None`` disables
        write-back modeling (writes still count as cached bytes).
    flush_chunk:
        Granularity of background flush transfers, in bytes.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float,
        flush_device: Optional[TransferDevice] = None,
        flush_chunk: float = 64 * MB,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.flush_device = flush_device
        self.flush_chunk = float(flush_chunk)

        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._used = 0.0
        self._pinned_bytes = 0.0
        self._dirty_bytes = 0.0
        self._flusher_running = False

        #: Residency-delta hook: called with ``(key, resident)`` whenever a
        #: key becomes resident or stops being resident (including LRU
        #: evictions and flush_all).  Feeds the memory-locality index.
        self.on_residency_change: Optional[Callable[[Hashable, bool], None]] = None
        #: Trace hook ``(op, key, nbytes) -> None`` with op "insert" or
        #: "evict"; ``None`` is the zero-overhead clean path (set by the
        #: observability layer when storage tracing is enabled).
        self.on_event: Optional[Callable[[str, Hashable, float], None]] = None

        # Counters for tests/metrics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries --------------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def pinned_bytes(self) -> float:
        return self._pinned_bytes

    @property
    def dirty_bytes(self) -> float:
        return self._dirty_bytes

    @property
    def free_bytes(self) -> float:
        return self.capacity - self._used

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is resident (counts a hit/miss and touches LRU)."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return True
        self.misses += 1
        return False

    def peek(self, key: Hashable) -> bool:
        """Residency check without touching LRU order or counters."""
        return key in self._entries

    def is_pinned(self, key: Hashable) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.pinned

    def resident_keys(self) -> Set[Hashable]:
        return set(self._entries.keys())

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: Hashable, nbytes: float, pinned: bool = False) -> bool:
        """Make ``key`` resident, evicting LRU unpinned entries if needed.

        Returns ``False`` (and caches nothing) if even after evicting every
        unpinned entry the object would not fit — e.g. trying to pin more
        than the whole cache.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        existing = self._entries.get(key)
        if existing is not None:
            self._entries.move_to_end(key)
            if pinned and not existing.pinned:
                existing.pinned = True
                self._pinned_bytes += existing.nbytes
            return True

        if not self._make_room(nbytes):
            return False
        entry = CacheEntry(key, nbytes, pinned, self.env.now)
        self._entries[key] = entry
        self._used += nbytes
        if pinned:
            self._pinned_bytes += nbytes
        callback = self.on_residency_change
        if callback is not None:
            callback(key, True)
        if self.on_event is not None:
            self.on_event("insert", key, nbytes)
        return True

    def pin(self, key: Hashable) -> bool:
        """mlock an already-resident entry; returns ``False`` if absent."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if not entry.pinned:
            entry.pinned = True
            self._pinned_bytes += entry.nbytes
        return True

    def unpin(self, key: Hashable) -> bool:
        """munmap: make the entry evictable again."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if entry.pinned:
            entry.pinned = False
            self._pinned_bytes -= entry.nbytes
        return True

    def evict(self, key: Hashable) -> bool:
        """Drop ``key`` immediately (pinned entries are unpinned first)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        if entry.pinned:
            self._pinned_bytes -= entry.nbytes
        self._used -= entry.nbytes
        if not self._entries:
            # Snap float residue from fractional entry sizes to zero.
            self._used = 0.0
            self._pinned_bytes = 0.0
        self.evictions += 1
        callback = self.on_residency_change
        if callback is not None:
            callback(key, False)
        if self.on_event is not None:
            self.on_event("evict", key, entry.nbytes)
        return True

    def flush_all(self) -> None:
        """Drop every entry (the experiment-setup 'echo 3 > drop_caches')."""
        for key in list(self._entries.keys()):
            self.evict(key)
        self._dirty_bytes = 0.0

    def write_absorb(self, key: Hashable, nbytes: float) -> None:
        """Absorb a write: bytes land in cache dirty and flush in background.

        The write itself completes at memory speed (the caller does not
        wait); the dirty bytes are trickled to ``flush_device`` by the
        background flusher, generating realistic disk contention.
        """
        self.insert(key, nbytes, pinned=False)
        if self.flush_device is None:
            return
        self._dirty_bytes += nbytes
        if not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flush_loop(), name="buffer-cache-flusher")

    # -- internals ---------------------------------------------------------------

    def _make_room(self, nbytes: float) -> bool:
        if nbytes > self.capacity - self._pinned_bytes:
            return False
        while self._used + nbytes > self.capacity:
            victim = self._lru_unpinned()
            if victim is None:
                return False
            self.evict(victim)
        return True

    def _lru_unpinned(self) -> Optional[Hashable]:
        for key, entry in self._entries.items():
            if not entry.pinned:
                return key
        return None

    def _flush_loop(self):
        while self._dirty_bytes > 0:
            chunk = min(self.flush_chunk, self._dirty_bytes)
            try:
                yield self.flush_device.transfer(chunk, tag="write-back")
            except Exception:
                # The backing device died mid-flush (host failure): the
                # dirty pages are gone with the process.
                self._dirty_bytes = 0.0
                break
            self._dirty_bytes -= chunk
        self._flusher_running = False

    def __repr__(self) -> str:
        return (
            f"<BufferCache used={self._used / MB:.0f}MB/"
            f"{self.capacity / MB:.0f}MB pinned={self._pinned_bytes / MB:.0f}MB "
            f"dirty={self._dirty_bytes / MB:.0f}MB>"
        )
