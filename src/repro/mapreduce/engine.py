"""MapReduceEngine: the execution-engine facade applications talk to."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dfs.client import DFSClient
from ..metrics.collector import MetricsCollector
from ..scheduler.resource_manager import ResourceManager
from ..sim.engine import Environment
from ..sim.events import Event
from .job import MRJob
from .spec import EngineConfig, JobSpec


class MapReduceEngine:
    """Submits and tracks MapReduce jobs on a cluster.

    This plays the role Apache Tez plays in the paper's setup: the thing
    that turns a job spec into scheduled tasks.  ``use_ignem`` defaults to
    whether the cluster's DFS client has an Ignem master attached, so the
    same workload code runs unmodified on all three paper configurations
    (HDFS, HDFS-Inputs-in-RAM, Ignem).
    """

    def __init__(
        self,
        env: Environment,
        client: DFSClient,
        rm: ResourceManager,
        collector: Optional[MetricsCollector] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.env = env
        self.client = client
        self.rm = rm
        self.collector = collector or MetricsCollector()
        self.config = config or EngineConfig()
        self.jobs: List[MRJob] = []
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

    def submit_job(
        self,
        spec: JobSpec,
        use_ignem: Optional[bool] = None,
        implicit_eviction: bool = True,
        extra_lead_time: float = 0.0,
        config: Optional[EngineConfig] = None,
    ) -> MRJob:
        """Build and submit a job; returns the runtime job object.

        ``config`` overrides the engine-wide cost model for this job
        (e.g. Hive-on-Tez stages reuse warm sessions and pay far lower
        submit/commit overheads than cold MapReduce jobs).
        """
        if use_ignem is None:
            use_ignem = self.client.ignem_master is not None
        job = MRJob(
            self.env,
            spec,
            self.client,
            self.rm,
            self.collector,
            config or self.config,
            use_ignem=use_ignem,
            implicit_eviction=implicit_eviction,
            extra_lead_time=extra_lead_time,
            obs=self.obs,
            job_id=f"job-{len(self.jobs):05d}",
        )
        self.jobs.append(job)
        job.submit()
        return job

    def run_workload(
        self,
        specs: Sequence[JobSpec],
        arrival_times: Sequence[float],
        use_ignem: Optional[bool] = None,
        implicit_eviction: bool = True,
    ) -> Event:
        """Submit ``specs`` at the given absolute times; returns an event
        that fires when every job has completed."""
        if len(specs) != len(arrival_times):
            raise ValueError(
                f"{len(specs)} specs but {len(arrival_times)} arrival times"
            )
        all_done = self.env.event()
        jobs_completed: List[Event] = []

        def driver():
            now = self.env.now
            for spec, at in sorted(
                zip(specs, arrival_times), key=lambda pair: pair[1]
            ):
                if at > self.env.now:
                    yield self.env.timeout(at - self.env.now)
                job = self.submit_job(
                    spec,
                    use_ignem=use_ignem,
                    implicit_eviction=implicit_eviction,
                )
                jobs_completed.append(job.completed)
            yield self.env.all_of(jobs_completed)
            all_done.succeed(None)

        self.env.process(driver(), name="workload-driver")
        return all_done
