"""MapReduce/Tez-like execution engine.

Turns :class:`JobSpec` descriptions into scheduled map and reduce tasks:
mappers read one DFS block each (this is where Ignem's migrated replicas
pay off), spill shuffle data locally, reducers fetch over the network,
compute, and write replicated output.
"""

from .engine import MapReduceEngine
from .job import MRJob
from .spec import EngineConfig, JobSpec

__all__ = ["EngineConfig", "JobSpec", "MRJob", "MapReduceEngine"]
