"""Runtime job object: maps, shuffle, reduces, and per-level metrics."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..dfs.blocks import Block
from ..dfs.client import DFSClient
from ..metrics.collector import MetricsCollector
from ..metrics.records import BlockReadRecord, JobRecord, TaskRecord
from ..net.network import NetworkError
from ..scheduler.containers import TaskRequest
from ..scheduler.resource_manager import ResourceManager
from ..sim.engine import Environment
from ..sim.events import Event, Timeout, join_all
from .spec import EngineConfig, JobSpec

#: Shuffle-fetch retry budget before declaring a map output lost.
_SHUFFLE_RETRIES = 3
#: Base backoff between shuffle-fetch retries (linear: 0.25s, 0.5s, ...).
_SHUFFLE_BACKOFF = 0.25


class MRJob:
    """One submitted MapReduce job, from migrate-call to completion.

    Lifecycle (paper Section III-B3):

    1. the *job submitter* runs: it issues the Ignem ``migrate`` call
       (when enabled), optionally sleeps (the Ignem+10s experiment),
       pays the submit overhead, and queues map tasks with the RM;
    2. map tasks read their input block through the DFS client (best
       replica: memory > local disk > remote), compute, and spill their
       shuffle share locally;
    3. when all maps finish, reduce tasks are queued; each fetches its
       shuffle share from every map node, computes, and writes output;
    4. on completion the submitter issues the explicit ``evict`` call.
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        spec: JobSpec,
        client: DFSClient,
        rm: ResourceManager,
        collector: MetricsCollector,
        config: EngineConfig,
        use_ignem: bool = False,
        implicit_eviction: bool = True,
        extra_lead_time: float = 0.0,
        obs=None,
        job_id: Optional[str] = None,
    ):
        self.env = env
        self.spec = spec
        self.client = client
        self.rm = rm
        self.collector = collector
        self.config = config
        self.use_ignem = use_ignem
        self.implicit_eviction = implicit_eviction
        self.extra_lead_time = float(extra_lead_time)
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = obs

        # The engine passes a per-engine id so identically seeded runs name
        # jobs identically (trace determinism); the process-global counter
        # only backs direct MRJob construction.
        self.job_id = (
            job_id if job_id is not None else f"job-{next(MRJob._ids):05d}"
        )
        self.completed: Event = env.event()
        #: Set when the scheduler abandoned one of the job's tasks after
        #: exhausting retries (node churn).  The job still runs to
        #: completion — with partial output, as a real cluster would
        #: surface a failed job — instead of hanging the submitter.
        self.failed = False
        self.submitted_at: Optional[float] = None
        self.first_task_start: Optional[float] = None
        self.finished_at: Optional[float] = None

        self._blocks: List[Block] = []
        for path in spec.input_paths:
            self._blocks.extend(client.open(path).blocks)
        self.input_bytes = sum(block.nbytes for block in self._blocks)
        #: Shuffle bytes produced on each node by that node's map tasks.
        self._map_output_by_node: Dict[str, float] = {}
        #: Per-map first-finisher events (original vs speculative attempt).
        self._map_done_events: List[Event] = []
        self._map_durations: List[float] = []
        #: Number of speculative duplicate attempts launched.
        self.speculative_attempts = 0
        #: Which node holds each committed map's shuffle output.
        self._map_winner_node: Dict[int, str] = {}
        #: One shared recovery event per node whose shuffle output was
        #: lost; its value is the list of nodes holding the re-run output.
        self._map_recoveries: Dict[str, Event] = {}
        self._recovery_seq = 1
        #: Shuffle fetches that failed and had to be retried or recovered.
        self.shuffle_refetches = 0

    # -- public API -----------------------------------------------------------

    @property
    def num_maps(self) -> int:
        return len(self._blocks)

    @property
    def num_reduces(self) -> int:
        if self.spec.shuffle_bytes <= 0 and self.spec.output_bytes <= 0:
            return 0
        return self.spec.num_reduces

    @property
    def duration(self) -> float:
        if self.submitted_at is None or self.finished_at is None:
            raise RuntimeError(f"{self.job_id} has not finished")
        return self.finished_at - self.submitted_at

    def submit(self) -> Event:
        """Start the job-submitter process; returns the completion event."""
        self.env.process(self._submitter(), name=f"submitter-{self.job_id}")
        return self.completed

    # -- submitter -------------------------------------------------------------

    def _submitter(self):
        self.submitted_at = self.env.now
        self.rm.register_job(self.job_id)

        # The migrate call is the *first* thing the submitter does so the
        # slaves get the entire lead-time to work with (paper III-B3).
        if self.use_ignem:
            self.client.migrate(
                list(self.spec.input_paths),
                self.job_id,
                implicit_eviction=self.implicit_eviction,
            )

        # Artificially inserted lead-time (the Ignem+10s experiment,
        # Section IV-F).  The sleep is counted in the job duration.
        if self.extra_lead_time > 0:
            yield Timeout(self.env, self.extra_lead_time)

        if self.config.job_submit_overhead > 0:
            yield Timeout(self.env, self.config.job_submit_overhead)

        self._map_done_events = [Event(self.env) for _ in self._blocks]
        self._map_durations: List[float] = []
        map_tasks = [
            self._make_map_task(index, block, self._map_done_events[index])
            for index, block in enumerate(self._blocks)
        ]
        self.rm.submit_all(map_tasks)
        if self.config.speculative_execution:
            self.env.process(
                self._speculator(map_tasks), name=f"speculator-{self.job_id}"
            )
        yield join_all(self.env, self._map_done_events)

        if self.num_reduces > 0:
            reduce_tasks = [
                self._make_reduce_task(index) for index in range(self.num_reduces)
            ]
            self.rm.submit_all(reduce_tasks)
            try:
                yield join_all(
                    self.env, [task.completed for task in reduce_tasks]
                )
            except Exception:
                # A reduce was abandoned after retry exhaustion (its
                # nodes kept dying): finish the job as failed rather
                # than crash the submitter.
                self.failed = True

        if self.config.job_commit_overhead > 0:
            yield Timeout(self.env, self.config.job_commit_overhead)

        self.finished_at = self.env.now
        self.rm.unregister_job(self.job_id)
        if self.use_ignem:
            # Explicit eviction on completion cleans up any blocks the job
            # never read (implicit eviction already dropped the read ones).
            self.client.evict(list(self.spec.input_paths), self.job_id)

        self.collector.record_job(
            JobRecord(
                job_id=self.job_id,
                name=self.spec.name,
                submitted_at=self.submitted_at,
                first_task_start=(
                    self.first_task_start
                    if self.first_task_start is not None
                    else self.finished_at
                ),
                end=self.finished_at,
                input_bytes=self.input_bytes,
                num_maps=self.num_maps,
                num_reduces=self.num_reduces,
            )
        )
        if self.obs is not None:
            self.obs.on_job_complete(self)
        self.completed.succeed(self)

    # -- map side ----------------------------------------------------------------

    def _make_map_task(
        self,
        index: int,
        block: Block,
        done: Event,
        attempt: int = 0,
        avoid: Tuple[str, ...] = (),
    ) -> TaskRequest:
        suffix = "" if attempt == 0 else f"-a{attempt}"
        task_id = f"{self.job_id}-m{index:04d}{suffix}"

        def execute(node: str):
            return self._run_map(task_id, index, block, node, done, avoid)

        locations = self.client.namenode.get_block_locations(block.block_id)
        if avoid:
            avoid_set = set(avoid)
            disk_nodes = [
                node for node in locations if node not in avoid_set
            ] or locations
        else:
            disk_nodes = locations
        task = TaskRequest(
            self.env,
            self.job_id,
            task_id,
            "map",
            execute,
            disk_nodes=disk_nodes,
            memory_nodes_fn=lambda: self.client.memory_locations(block),
            input_block_id=block.block_id,
        )
        # Failure backstop: when the RM abandons the attempt after
        # exhausting retries, resolve the map's done-event so the
        # submitter's join completes (job marked failed, never hung).
        task.completed.callbacks.append(
            lambda event: self._on_map_abandoned(done) if not event._ok else None
        )
        return task

    def _on_map_abandoned(self, done: Event) -> None:
        self.failed = True
        if not done.triggered:
            done.succeed(None)

    def _speculator(self, map_tasks: List[TaskRequest]):
        """Launch duplicate attempts for straggling maps (Hadoop-style).

        The duplicate and the original race; whichever finishes first
        resolves the map's done-event, and only the winner contributes
        shuffle output.  The loser's work is wasted, as in Hadoop when
        the kill is slower than the task.
        """
        cfg = self.config
        speculated: set = set()
        total = len(map_tasks)
        budget = max(1, int(cfg.speculative_max_fraction * total))
        while True:
            if len(speculated) >= budget:
                return
            pending = [
                index
                for index, done in enumerate(self._map_done_events)
                if not done.triggered
            ]
            if not pending:
                return
            threshold_count = cfg.speculative_min_completed * total
            if len(self._map_durations) >= threshold_count and self._map_durations:
                ordered = sorted(self._map_durations)
                median = ordered[len(ordered) // 2]
                for index in pending:
                    if len(speculated) >= budget:
                        break
                    task = map_tasks[index]
                    if index in speculated or task.started_at is None:
                        continue
                    elapsed = self.env.now - task.started_at
                    if median > 0 and elapsed > cfg.speculative_slowdown * median:
                        speculated.add(index)
                        self.speculative_attempts += 1
                        avoid = (
                            (task.assigned_node,)
                            if task.assigned_node is not None
                            else ()
                        )
                        duplicate = self._make_map_task(
                            index,
                            self._blocks[index],
                            self._map_done_events[index],
                            attempt=1,
                            avoid=avoid,
                        )
                        self.rm.submit(duplicate)
            yield Timeout(self.env, cfg.speculative_poll_interval)

    def _run_map(
        self,
        task_id: str,
        index: int,
        block: Block,
        node: str,
        done: Event,
        avoid: Tuple[str, ...] = (),
    ):
        scheduled_at = self.env.now
        if self.first_task_start is None:
            self.first_task_start = self.env.now

        yield Timeout(self.env, self.config.task_startup_overhead)

        read = self.client.read_block(
            block, node, job_id=self.job_id, avoid=avoid
        )
        read_start = self.env.now
        yield read.done
        self.collector.record_block_read(
            BlockReadRecord(
                job_id=self.job_id,
                task_id=task_id,
                block_id=block.block_id,
                node=read.serving_node,
                source=read.source,
                nbytes=block.nbytes,
                start=read_start,
                end=self.env.now,
            )
        )

        cpu_rate = self.config.map_cpu_bytes_per_sec
        if self.spec.map_cpu_factor > 0 and block.nbytes > 0:
            yield Timeout(
                self.env,
                block.nbytes * self.spec.map_cpu_factor / cpu_rate
            )

        # With speculative execution two attempts may race; only the
        # winner commits shuffle output and resolves the map's event.
        winner = not done.triggered
        if winner:
            done.succeed(task_id)
            self._map_durations.append(self.env.now - scheduled_at)

        out_bytes = self._map_output_bytes(block) if winner else 0.0
        if out_bytes > 0:
            datanode = self.client.namenode.datanode(node)
            datanode.cache.write_absorb(("shuffle", task_id), out_bytes)
            self._map_output_by_node[node] = (
                self._map_output_by_node.get(node, 0.0) + out_bytes
            )
            self._map_winner_node[index] = node

        self.collector.record_task(
            TaskRecord(
                job_id=self.job_id,
                task_id=task_id,
                kind="map",
                node=node,
                scheduled_at=scheduled_at,
                start=scheduled_at,
                end=self.env.now,
                input_bytes=block.nbytes,
                output_bytes=out_bytes,
            )
        )
        if self.obs is not None:
            self.obs.on_task_complete(
                "map", task_id, self.job_id, node, scheduled_at
            )

    def _map_output_bytes(self, block: Block) -> float:
        if self.input_bytes <= 0:
            return 0.0
        return self.spec.shuffle_bytes * (block.nbytes / self.input_bytes)

    # -- shuffle recovery -------------------------------------------------------

    def _refetch_shuffle(self, map_node: str, node: str, nbytes: float, task_id: str):
        """Recover one lost shuffle share (Hadoop's fetch-failure path).

        While the source node lives the failure is transient (a lossy
        network window): retry with linear backoff.  Once the source is
        known dead its map outputs are gone with its page cache, so
        re-execute those maps on surviving nodes and fetch the
        regenerated output from wherever the re-runs landed.
        """
        self.shuffle_refetches += 1
        network = self.client.network
        for attempt in range(_SHUFFLE_RETRIES):
            if network.node_is_down(map_node):
                break
            yield Timeout(self.env, _SHUFFLE_BACKOFF * (attempt + 1))
            try:
                yield network.transfer(
                    map_node, node, nbytes, tag=("shuffle", task_id)
                )
                return
            except NetworkError:
                continue
        replacements = yield self._recover_map_outputs(map_node)
        sources = [name for name in replacements if name != node]
        if not sources:
            # Regenerated output is local to this reduce (or the re-runs
            # were abandoned, in which case the job is already failed).
            return
        part = nbytes / len(sources)
        for source in sources:
            try:
                yield network.transfer(
                    source, node, part, tag=("shuffle", task_id)
                )
            except NetworkError:
                # The replacement died too; the run is churning faster
                # than recovery can keep up — surface a failed job
                # rather than recurse indefinitely.
                self.failed = True

    def _recover_map_outputs(self, lost_node: str) -> Event:
        """Re-run the maps whose shuffle output died with ``lost_node``.

        Shared by every reduce that notices the loss: the first caller
        starts the recovery process, later callers wait on the same
        event.  Its value is the sorted list of nodes now holding the
        regenerated output.
        """
        recovery = self._map_recoveries.get(lost_node)
        if recovery is not None:
            return recovery
        recovery = Event(self.env)
        self._map_recoveries[lost_node] = recovery
        indices = sorted(
            index
            for index, winner in self._map_winner_node.items()
            if winner == lost_node
        )
        self._map_output_by_node.pop(lost_node, None)
        for index in indices:
            del self._map_winner_node[index]
        self.env.process(
            self._rerun_maps(lost_node, indices, recovery),
            name=f"map-recovery-{self.job_id}-{lost_node}",
        )
        return recovery

    def _rerun_maps(self, lost_node: str, indices: List[int], recovery: Event):
        done_events = []
        tasks = []
        for index in indices:
            self._recovery_seq += 1
            done = Event(self.env)
            done_events.append((index, done))
            tasks.append(
                self._make_map_task(
                    index,
                    self._blocks[index],
                    done,
                    attempt=self._recovery_seq,
                    avoid=(lost_node,),
                )
            )
        self.rm.submit_all(tasks)
        if done_events:
            # Abandoned re-runs resolve their done-event through
            # _on_map_abandoned (marking the job failed), so this join
            # cannot fail or hang.
            yield join_all(self.env, [done for _, done in done_events])
        recovery.succeed(
            sorted(
                {
                    self._map_winner_node[index]
                    for index, _ in done_events
                    if index in self._map_winner_node
                }
            )
        )

    # -- reduce side --------------------------------------------------------------

    def _make_reduce_task(self, index: int) -> TaskRequest:
        task_id = f"{self.job_id}-r{index:04d}"

        def execute(node: str):
            return self._run_reduce(task_id, index, node)

        return TaskRequest(self.env, self.job_id, task_id, "reduce", execute)

    def _run_reduce(self, task_id: str, index: int, node: str):
        scheduled_at = self.env.now
        yield Timeout(self.env, self.config.task_startup_overhead)

        share = (
            self.spec.shuffle_bytes / self.num_reduces if self.num_reduces else 0.0
        )
        fetches = []
        total_map_output = sum(self._map_output_by_node.values())
        if share > 0 and total_map_output > 0:
            for map_node, produced in self._map_output_by_node.items():
                nbytes = share * (produced / total_map_output)
                if map_node != node and nbytes > 0:
                    fetches.append(
                        (
                            map_node,
                            nbytes,
                            self.client.network.transfer(
                                map_node, node, nbytes, tag=("shuffle", task_id)
                            ),
                        )
                    )
        if fetches:
            try:
                yield join_all(self.env, [event for _, _, event in fetches])
            except NetworkError:
                # At least one map node became unreachable mid-shuffle.
                # Settle every fetch individually: retry transient
                # failures, re-execute the maps of dead sources.
                for map_node, nbytes, event in fetches:
                    try:
                        yield event
                    except NetworkError:
                        yield from self._refetch_shuffle(
                            map_node, node, nbytes, task_id
                        )

        if share > 0 and self.spec.reduce_cpu_factor > 0:
            yield Timeout(
                self.env,
                share
                * self.spec.reduce_cpu_factor
                / self.config.reduce_cpu_bytes_per_sec
            )

        out_share = (
            self.spec.output_bytes / self.num_reduces if self.num_reduces else 0.0
        )
        if out_share > 0:
            out_path = f"/out/{self.job_id}/part-{index:04d}"
            if self.client.exists(out_path):
                # A previous attempt of this reduce died after creating
                # the file; overwrite like a Hadoop output committer.
                self.client.delete(out_path)
            yield self.client.write_file(
                out_path,
                out_share,
                writer_node=node,
                replication=self.config.output_replication,
            )

        self.collector.record_task(
            TaskRecord(
                job_id=self.job_id,
                task_id=task_id,
                kind="reduce",
                node=node,
                scheduled_at=scheduled_at,
                start=scheduled_at,
                end=self.env.now,
                input_bytes=share,
                output_bytes=out_share,
            )
        )
        if self.obs is not None:
            self.obs.on_task_complete(
                "reduce", task_id, self.job_id, node, scheduled_at
            )
