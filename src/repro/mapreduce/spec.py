"""Job specifications and engine cost-model configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..storage.device import MB


@dataclass(frozen=True)
class JobSpec:
    """A MapReduce job description (what SWIM traces record per job).

    ``input_paths`` must already exist in the DFS.  ``shuffle_bytes`` and
    ``output_bytes`` are job totals, split evenly over ``num_reduces``
    (zero reduces make a map-only job).
    """

    name: str
    input_paths: Tuple[str, ...]
    shuffle_bytes: float = 0.0
    output_bytes: float = 0.0
    num_reduces: int = 1
    #: Multiplier on the engine's map CPU cost (1.0 = default workload).
    map_cpu_factor: float = 1.0
    #: Multiplier on the engine's reduce CPU cost.
    reduce_cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.input_paths:
            raise ValueError("a job needs at least one input path")
        if self.shuffle_bytes < 0 or self.output_bytes < 0:
            raise ValueError("shuffle/output bytes must be non-negative")
        if self.num_reduces < 0:
            raise ValueError(f"num_reduces must be >= 0, got {self.num_reduces}")
        if self.map_cpu_factor < 0 or self.reduce_cpu_factor < 0:
            raise ValueError("cpu factors must be non-negative")


@dataclass(frozen=True)
class EngineConfig:
    """Cost model for the execution engine, calibrated to the paper's
    testbed (Section IV-A: Xeon E5-1650, Tez on YARN, 3s heartbeats).

    * ``task_startup_overhead`` — container launch + JVM warm-up per task.
      Table II pins the floor: a mapper whose 64MB input is already in RAM
      takes ~0.28s total, so overheads are a couple hundred ms.
    * ``job_submit_overhead`` — job-submitter work before tasks reach the
      RM queue (config, AM/DAG setup, shipping binaries): additional
      lead-time for migration (Section II-C1).
    * ``job_commit_overhead`` — output commit + AM teardown after the last
      task finishes.
    * ``map_cpu_bytes_per_sec`` — mapper compute throughput applied to its
      input bytes, covering deserialization + user code.
    * ``reduce_cpu_bytes_per_sec`` — reducer compute throughput applied to
      its shuffle share.
    * speculative execution knobs — see the field comments below.
    """

    task_startup_overhead: float = 0.2
    job_submit_overhead: float = 4.0
    job_commit_overhead: float = 6.0
    map_cpu_bytes_per_sec: float = 400 * MB
    reduce_cpu_bytes_per_sec: float = 200 * MB
    #: Replication factor for job output files.
    output_replication: int = 1
    #: Hadoop-style speculative execution for map stragglers: once
    #: ``speculative_min_completed`` of a job's maps have finished, any
    #: running map slower than ``speculative_slowdown`` x the median gets
    #: a duplicate attempt; the first finisher wins (the loser's work is
    #: wasted, as in Hadoop without task kill).
    speculative_execution: bool = False
    speculative_slowdown: float = 1.5
    speculative_min_completed: float = 0.5
    speculative_poll_interval: float = 1.0
    #: At most this fraction of a job's maps may get duplicate attempts
    #: (Hadoop similarly caps speculation to bound wasted work).
    speculative_max_fraction: float = 0.25

    def __post_init__(self) -> None:
        if (
            self.task_startup_overhead < 0
            or self.job_submit_overhead < 0
            or self.job_commit_overhead < 0
        ):
            raise ValueError("overheads must be non-negative")
        if self.map_cpu_bytes_per_sec <= 0 or self.reduce_cpu_bytes_per_sec <= 0:
            raise ValueError("cpu rates must be positive")
        if self.output_replication < 1:
            raise ValueError("output replication must be >= 1")
        if self.speculative_slowdown <= 1.0:
            raise ValueError("speculative_slowdown must be > 1")
        if not 0 <= self.speculative_min_completed <= 1:
            raise ValueError("speculative_min_completed must be in [0, 1]")
        if self.speculative_poll_interval <= 0:
            raise ValueError("speculative_poll_interval must be positive")
        if not 0 < self.speculative_max_fraction <= 1:
            raise ValueError("speculative_max_fraction must be in (0, 1]")
