"""Event primitives for the discrete-event simulation kernel.

The kernel is generator-based: simulation processes are Python generators
that ``yield`` :class:`Event` objects.  An event is *triggered* when it has
been given a value (or an exception) and scheduled on the engine's event
queue; once the engine pops it, the event is *processed* and its callbacks
run.  This mirrors the design of mature DES libraries while remaining a
small, fully self-contained implementation.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Environment
    from .process import Process

#: Priority band for events that must run before ordinary events at the
#: same timestamp (used for interrupts).
URGENT = 0
#: Priority band for ordinary events.
NORMAL = 1

#: Queue entries are ``(time, key, event)`` 3-tuples where ``key`` packs
#: the priority band above the insertion counter: ``(priority << 56) +
#: eid``.  A single int comparison then reproduces the (priority, eid)
#: lexicographic order, and the smaller tuples are cheaper to build and
#: compare in the heap — the kernel's hottest data structure.  Counters
#: stay far below 2**56 (a large run emits ~10**5 events).
PRIORITY_SHIFT = 56
#: Precomputed key base for NORMAL, the band of nearly every event.
NORMAL_KEY = NORMAL << PRIORITY_SHIFT


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause`` which the interrupted
    process can inspect to decide how to react.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A happening in simulated time that processes may wait on.

    Events move through three states: *untriggered* (just created),
    *triggered* (value decided, queued on the engine), and *processed*
    (callbacks executed).  Waiting on an already-processed event resumes
    the waiter immediately at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: Sentinel distinguishing "no value yet" from ``None`` values.
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether a value (or exception) has been decided for this event."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks for this event have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.

        Raises :class:`SimulationError` if the event is not yet triggered.
        """
        if self._value is Event.PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # Inlined env.schedule(self, priority=NORMAL): succeed() fires for
        # nearly every event in a run, so skip the extra call.
        env = self.env
        env._eid += 1
        heappush(env._queue, (env.now, NORMAL_KEY + env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception will be re-raised inside every process waiting on
        this event.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env.schedule(self, priority=NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def _mark_processed(self) -> None:
        self._processed = True
        self.callbacks = None

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are born triggered, so initialize every field directly
        # instead of chaining through Event.__init__ and overwriting half
        # of them — this constructor is the kernel's hottest allocation.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        # Inlined env.schedule(self, priority=NORMAL, delay=delay).
        env._eid += 1
        heappush(env._queue, (env.now + delay, NORMAL_KEY + env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {hex(id(self))}>"


class PooledTimeout(Timeout):
    """A :class:`Timeout` owned by the engine's free pool.

    Created via ``Environment.pooled_timeout``; the dispatch loop returns
    the object to the pool immediately after running its callbacks, so a
    pooled timeout must be **fire-and-forget**: no caller may retain the
    reference past processing (e.g. inside a :class:`Condition`) — it
    would alias a future, recycled wakeup.  Periodic kernel-internal
    wakeups (device reschedules, heartbeat grid sleeps, replay drivers)
    use this to avoid one allocation per event.

    ``cancel()`` retracts a speculative wakeup: the dispatch loop skips
    the callbacks entirely and recycles the object without re-entering
    Python — cheaper than dispatching into a callback that immediately
    discovers it is stale.
    """

    __slots__ = ("_cancelled",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        self._cancelled = False
        env._eid += 1
        heappush(env._queue, (env.now + delay, NORMAL_KEY + env._eid, self))

    def cancel(self) -> None:
        """Retract the wakeup: its callbacks will never run."""
        self._cancelled = True

    def __repr__(self) -> str:
        state = "cancelled " if self._cancelled else ""
        return f"<PooledTimeout {state}delay={self.delay} at {hex(id(self))}>"


def join_all(env: "Environment", events: Iterable[Event]) -> Event:
    """Event that fires once every child has fired (lightweight ``AllOf``).

    The hot fan-in points of the stack — remote block reads, shuffle
    fetches, write replication — join events purely for synchronization
    and never look at the result value.  The generic :class:`Condition`
    machinery allocates a :class:`ConditionValue` and runs bookkeeping
    per child that such callers pay for without using; this helper keeps
    only the countdown.  Failure semantics match ``AllOf``: the first
    failed child fails the join immediately.  The join's value is
    ``None``, so use :class:`AllOf` when child values matter.
    """
    done = Event(env)
    state = [0]

    def arm(event: Event) -> None:
        if done._triggered:
            return
        if not event._ok:
            done.fail(event._value)
            return
        state[0] -= 1
        if state[0] == 0:
            done.succeed(None)

    pending = 0
    for event in events:
        if event.callbacks is None:
            # Already processed: count it down up front (mirrors the
            # immediate _check AllOf performs for processed children).
            if not event._ok:
                done.fail(event._value)
                return done
        else:
            event.callbacks.append(arm)
            pending += 1
    state[0] = pending
    if pending == 0:
        done.succeed(None)
    return done


class ConditionValue:
    """Mapping-like result of a condition event.

    Maps each triggered child event to its value, preserving insertion
    order so ``AllOf`` results read in the order events were passed.
    """

    def __init__(self) -> None:
        self.events: list = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event._value for event in self.events)

    def items(self):
        return ((event, event._value) for event in self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a combination of events (see :class:`AllOf`, :class:`AnyOf`).

    ``evaluate`` receives the list of child events and the count of
    triggered children and returns ``True`` once the condition holds.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event._processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only include children whose callbacks have already run;
            # a pending Timeout is "triggered" from birth but has not
            # actually happened yet.
            if event._processed and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        self._count += 1
        if not event._ok:
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once every child event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
