"""Shared resources for simulation processes.

Provides the classic trio:

* :class:`Resource` — a capacity-limited semaphore with FIFO queuing,
  usable via ``with resource.request() as req: yield req``.
* :class:`Store` / :class:`PriorityStore` — queues of items processes can
  put to and get from.
* :class:`Container` — a continuous quantity (bytes, tokens) with blocking
  put/get.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A semaphore-style resource with ``capacity`` concurrent users."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        """Claim the resource; yield the returned event to wait for grant."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a granted claim (or cancel a pending one)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self.queue.pop(0)
            self.users.append(request)
            request.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._do_get(self)


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list = []
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; yield the event to wait for space if bounded."""
        return StorePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Insert ``item`` without allocating a put event.

        For callers that do not wait on the put: on an unbounded store a
        ``StorePut`` always succeeds instantly, so the event would only
        burn a kernel cycle.  Waiting getters are served exactly as a
        ``put`` would serve them.  Raises ``RuntimeError`` if the store
        is full (use ``put`` to wait for space instead).
        """
        if self._size() >= self.capacity:
            raise RuntimeError("store is full; use put() to wait for space")
        self._insert(item)
        self._serve_getters()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the next (matching) item; yield the event to wait for one."""
        return StoreGet(self, filter)

    def _size(self) -> int:
        """Live item count (capacity accounting); subclasses may keep
        dead entries in ``items`` that must not count against capacity."""
        return len(self.items)

    def _do_put(self, event: StorePut) -> None:
        if self._size() < self.capacity:
            self._insert(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._serve_getters()
        self._serve_putters()

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _next_index(self, filter: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if filter(item):
                return index
        return None

    def _serve_getters(self) -> None:
        remaining = []
        for getter in self._getters:
            if getter.triggered:
                continue
            index = self._next_index(getter.filter)
            if index is None:
                remaining.append(getter)
            else:
                getter.succeed(self.items.pop(index))
        self._getters = remaining

    def _serve_putters(self) -> None:
        while self._putters and self._size() < self.capacity:
            putter = self._putters.pop(0)
            self._insert(putter.item)
            putter.succeed()
            self._serve_getters()


class PriorityItem:
    """Wrapper giving items an explicit priority (lower = earlier)."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class _StableEntry:
    """Heap entry giving mutually-incomparable-but-equal-priority items a
    first-in-first-out tie-break.

    Plain ``(item, seq)`` tuples only fall through to ``seq`` when the
    items compare *equal* with ``==``; two :class:`PriorityItem` objects
    with the same priority but different payloads are unordered instead,
    letting the heap emit them in arbitrary order.  This wrapper compares
    by the item's ordering first and insertion sequence on genuine ties.
    """

    __slots__ = ("item", "seq", "alive")

    def __init__(self, item: Any, seq: int):
        self.item = item
        self.seq = seq
        #: Lazy-cancellation flag: dead entries stay in the heap (so no
        #: O(n) re-heapify per removal) and are skipped or compacted away.
        self.alive = True

    def __lt__(self, other: "_StableEntry") -> bool:
        if self.item < other.item:
            return True
        if other.item < self.item:
            return False
        return self.seq < other.seq


class PriorityStore(Store):
    """A :class:`Store` that releases the smallest item first.

    Items must be mutually comparable; use :class:`PriorityItem` to attach
    explicit priorities.  Insertion order breaks ties (stable heap via a
    monotonically increasing sequence number).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._seq = 0
        #: Count of tombstoned (lazily-cancelled) heap entries.
        self._dead = 0

    def _size(self) -> int:
        return len(self.items) - self._dead

    def _insert(self, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self.items, _StableEntry(item, self._seq))

    def _next_index(self, filter: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter is None:
            return 0 if self._size() else None
        for index, entry in enumerate(self.items):
            if entry.alive and filter(entry.item):
                return index
        return None

    def _serve_getters(self) -> None:
        items = self.items
        remaining = []
        for getter in self._getters:
            if getter.triggered:
                continue
            # Dead entries surface at the top like any other; drop them
            # before picking so index 0 always names a live minimum.
            while items and not items[0].alive:
                heapq.heappop(items)
                self._dead -= 1
            index = self._next_index(getter.filter)
            if index is None:
                remaining.append(getter)
            elif index == 0:
                entry = heapq.heappop(items)
                getter.succeed(entry.item)
            else:
                # A filtered match below the top: tombstone it in place
                # (the old pop-and-reheapify was O(n) per filtered get).
                entry = items[index]
                entry.alive = False
                self._dead += 1
                getter.succeed(entry.item)
        self._getters = remaining
        self._maybe_compact()

    def remove(self, predicate: Callable[[Any], bool]) -> list:
        """Remove and return all queued items matching ``predicate``.

        Removal is lazy: matching entries are tombstoned in place, and the
        heap is rebuilt only when dead entries outnumber live ones —
        without this, long runs with heavy cancellation (job teardown,
        slave purges) grow the heap without bound.
        """
        removed = []
        dead = self._dead
        for entry in self.items:
            if entry.alive and predicate(entry.item):
                entry.alive = False
                dead += 1
                removed.append(entry.item)
        self._dead = dead
        if removed:
            self._maybe_compact()
        return removed

    def _maybe_compact(self) -> None:
        """Rebuild the heap once dead entries exceed half of it."""
        if self._dead * 2 > len(self.items):
            self.items = [entry for entry in self.items if entry.alive]
            heapq.heapify(self.items)
            self._dead = 0


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._do_put(self)


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._do_get(self)


class Container:
    """A continuous stock of some quantity with blocking put/get."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: List[ContainerPut] = []
        self._getters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _do_put(self, event: ContainerPut) -> None:
        self._putters.append(event)
        self._settle()

    def _do_get(self, event: ContainerGet) -> None:
        self._getters.append(event)
        self._settle()

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                putter = self._putters[0]
                if self._level + putter.amount <= self.capacity:
                    self._level += putter.amount
                    self._putters.pop(0)
                    putter.succeed()
                    progress = True
            if self._getters:
                getter = self._getters[0]
                if self._level >= getter.amount:
                    self._level -= getter.amount
                    self._getters.pop(0)
                    getter.succeed()
                    progress = True
