"""Discrete-event simulation kernel.

A small, self-contained, generator-based DES in the style of SimPy:

>>> from repro.sim import Environment
>>> env = Environment()
>>> def clock(env, results):
...     while env.now < 3:
...         results.append(env.now)
...         yield env.timeout(1)
>>> ticks = []
>>> _ = env.process(clock(env, ticks))
>>> env.run()
>>> ticks
[0.0, 1.0, 2.0]
"""

from .engine import Environment, StopSimulation
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
    join_all,
)
from .process import Process
from .rand import RandomSource, derive_seed
from .resources import (
    Container,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "RandomSource",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "derive_seed",
    "join_all",
]
