"""Seeded randomness helpers.

The simulation must be deterministic, so no module may touch global RNG
state.  Experiments construct a :class:`RandomSource` at their boundary and
pass it (or children spawned from it) down explicitly.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np


class RandomSource:
    """A seeded bundle of a ``random.Random`` and a numpy ``Generator``.

    ``spawn`` derives independent child sources from a name, so distinct
    subsystems (e.g. the SWIM generator vs. replica placement) draw from
    independent streams and adding draws to one does not perturb another.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.py = random.Random(self.seed)
        self.np = np.random.default_rng(self.seed)

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child source keyed by ``name`` (stable across runs)."""
        child_seed = (self.seed * 1_000_003 + _stable_hash(name)) % (2**63)
        return RandomSource(child_seed)

    # -- convenience draws --------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self.py.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self.py.expovariate(rate)

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self.np.lognormal(mean, sigma))

    def choice(self, seq):
        return self.py.choice(seq)

    def sample(self, seq, k: int):
        return self.py.sample(seq, k)

    def shuffle(self, seq) -> None:
        self.py.shuffle(seq)

    def randint(self, low: int, high: int) -> int:
        """Inclusive on both ends, like ``random.randint``."""
        return self.py.randint(low, high)


def _stable_hash(name: str) -> int:
    """A deterministic string hash (``hash()`` is salted per process)."""
    value = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (2**64)
    return value


def derive_seed(seed: int, name: str) -> int:
    """Standalone helper: derive a child seed from (seed, name)."""
    return (int(seed) * 1_000_003 + _stable_hash(name)) % (2**63)
