"""Process abstraction: a generator driven by the simulation engine."""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator

from .events import NORMAL, NORMAL_KEY, URGENT, Event, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process"):
        # Born triggered; initialize fields directly and push onto the
        # queue without the env.schedule indirection (one Initialize per
        # process makes this a hot allocation).
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self.process = process
        env._eid += 1
        # URGENT == 0, so the packed key is just the insertion counter.
        heappush(env._queue, (env.now, env._eid, self))


class Interruption(Event):
    """Internal urgent event delivering an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        if process._value is not Event.PENDING:
            raise SimulationError(f"{process!r} has terminated; cannot interrupt")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._triggered = True
        self.callbacks.append(self._interrupt)
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process._value is not Event.PENDING:
            return  # terminated in the meantime
        # Unsubscribe the process from whatever it was waiting for, then
        # resume it with the Interrupt as a failure.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """Wraps a generator and executes it step by step.

    A process is itself an event that triggers when the generator
    terminates, so processes can wait on each other by yielding the
    :class:`Process` object.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator has terminated."""
        return self._value is Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt this process, raising :class:`Interrupt` inside it."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_process = self
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Mark the failure as handed off so unhandled event
                    # failures can still be detected elsewhere.
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                # Process finished successfully.
                self._ok = True
                self._value = stop.value
                self._triggered = True
                env._eid += 1
                heappush(env._queue, (env.now, NORMAL_KEY + env._eid, self))
                break
            except BaseException as error:
                # Process died with an exception: fail the process event so
                # waiters see it; if nobody waits the engine re-raises.
                self._ok = False
                self._value = error
                self._triggered = True
                env._eid += 1
                heappush(env._queue, (env.now, NORMAL_KEY + env._eid, self))
                break

            # Hot path: the yielded object is almost always an Event, so
            # read .callbacks directly and let the AttributeError cover
            # both ``yield None`` and non-event mistakes.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                if next_event is None:
                    # "yield None" => yield control for one scheduling round.
                    event = Event(env).succeed()
                    event.callbacks.append(self._resume)
                    self._target = event
                    break
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(error)
                except BaseException as raised:
                    self._ok = False
                    self._value = raised
                    self._triggered = True
                    env.schedule(self, priority=NORMAL)
                break

            if callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed; continue immediately with its value.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} {state} at {hex(id(self))}>"
