"""The simulation engine: a time-ordered event queue and its run loop."""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Union

from .events import (
    NORMAL,
    NORMAL_KEY,
    PRIORITY_SHIFT,
    AllOf,
    AnyOf,
    Event,
    PooledTimeout,
    SimulationError,
    Timeout,
)
from .process import Process


class EmptySchedule(SimulationError):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to end :meth:`Environment.run` when the *until* event fires."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float with arbitrary units (this project uses seconds).
    Events are processed in ``(time, priority, insertion order)`` order so
    simultaneous events execute deterministically; queue entries pack
    priority and insertion counter into one int key (see
    ``events.PRIORITY_SHIFT``).
    """

    __slots__ = (
        "now",
        "_queue",
        "_eid",
        "_active_process",
        "monitor",
        "_timeout_pool",
    )

    def __init__(self, initial_time: float = 0.0):
        #: Current simulation time.  A plain attribute (not a property):
        #: it is read on nearly every operation in the stack, and property
        #: dispatch is measurable at that volume.  Treat as read-only.
        self.now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Free list of recycled :class:`PooledTimeout` objects.
        self._timeout_pool: list = []
        #: Optional kernel monitor ``(when, event, callbacks) -> None``,
        #: called once per dispatched event.  ``None`` keeps the run loop
        #: on the untouched fast path; the observability layer installs
        #: one only when the "sim" trace category is enabled.
        self.monitor: Optional[Any] = None

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being executed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> PooledTimeout:
        """A timeout drawn from the engine's free pool.

        The dispatch loop recycles the object right after its callbacks
        run (or immediately, skipping the callbacks, when it was
        cancelled), so the caller must not retain the reference past
        processing.  Scheduling order, keys and timing are identical to
        :meth:`timeout`; only the allocation is saved.
        """
        pool = self._timeout_pool
        if not pool:
            return PooledTimeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = pool.pop()
        event.callbacks = []
        event._value = value
        event._processed = False
        event._cancelled = False
        event.delay = delay
        self._eid += 1
        heappush(self._queue, (self.now + delay, NORMAL_KEY + self._eid, event))
        return event

    def timeout_batch(
        self, delays: Iterable[float], value: Any = None
    ) -> List[Timeout]:
        """Create one :class:`Timeout` per delay in a single heap rebuild.

        Pushing N timeouts one at a time costs O(N log(N+M)) comparisons
        against a queue of M entries; appending them all and re-heapifying
        costs O(N+M).  Worth it when pre-scheduling a large arrival wave
        (the scale replay schedules ~10^5 job arrivals up front).  Event
        ids — and therefore same-instant ordering — are assigned in input
        order, exactly as sequential ``timeout`` calls would.
        """
        queue = self._queue
        now = self.now
        eid = self._eid
        out: List[Timeout] = []
        append = queue.append
        for delay in delays:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
            event._value = value
            event._ok = True
            event._triggered = True
            event._processed = False
            event.delay = delay
            eid += 1
            append((now + delay, NORMAL_KEY + eid, event))
            out.append(event)
        self._eid = eid
        heapify(queue)
        return out

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        self._eid += 1
        heappush(
            self._queue,
            (self.now + delay, (priority << PRIORITY_SHIFT) + self._eid, event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`EmptySchedule` if no events remain, and re-raises
        exceptions from failed events that no process was waiting on (so
        programming errors never pass silently).
        """
        try:
            when, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self.now = when
        # Inlined Event._mark_processed: this is the single hottest
        # statement sequence in the kernel.
        callbacks = event.callbacks
        event._processed = True
        event.callbacks = None
        if self.monitor is not None:
            self.monitor(when, event, callbacks)
        if event.__class__ is PooledTimeout:
            if not event._cancelled:
                for callback in callbacks:
                    callback(event)
            self._timeout_pool.append(event)
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not callbacks:
            # A failed event (or crashed process) nobody was waiting on:
            # surface the error rather than letting it vanish.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until simulation time reaches that value;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception if it failed).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed.
                    if stop._ok:
                        return stop._value
                    raise stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self.now:
                    raise ValueError(
                        f"until ({at}) must not be before now ({self.now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop._triggered = True
                self._eid += 1
                # Schedule at the stop time with the most urgent priority so
                # the clock never advances past it.
                heappush(
                    self._queue,
                    (at, (-1 << PRIORITY_SHIFT) + self._eid, stop),
                )
                stop.callbacks.append(self._stop_callback)

        # The kernel allocates short-lived events at a rate that makes
        # cyclic-GC pauses a measurable fraction of a run; nothing in the
        # simulator relies on finalizers, so suspend collection for the
        # duration and restore the caller's setting afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The run loop inlines step(): one Python-level call per event is
        # measurable at the millions-of-events scale of a SWIM run.  The
        # body must stay semantically identical to step().  The monitored
        # variant duplicates the loop rather than branching inside it so
        # the clean path pays nothing for observability.
        queue = self._queue
        pop = heappop
        monitor = self.monitor
        pool_append = self._timeout_pool.append
        pooled_class = PooledTimeout
        try:
            if monitor is None:
                while True:
                    try:
                        when, _, event = pop(queue)
                    except IndexError:
                        raise EmptySchedule() from None
                    self.now = when
                    callbacks = event.callbacks
                    event._processed = True
                    event.callbacks = None
                    if event.__class__ is pooled_class:
                        # Pooled wakeups never fail, and a cancelled one
                        # skips its callbacks entirely — no Python
                        # re-entry for a stale speculative wakeup.
                        if not event._cancelled:
                            for callback in callbacks:
                                callback(event)
                        pool_append(event)
                        continue
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks:
                        raise event._value
            else:
                while True:
                    try:
                        when, _, event = pop(queue)
                    except IndexError:
                        raise EmptySchedule() from None
                    self.now = when
                    callbacks = event.callbacks
                    event._processed = True
                    event.callbacks = None
                    monitor(when, event, callbacks)
                    if event.__class__ is pooled_class:
                        if not event._cancelled:
                            for callback in callbacks:
                                callback(event)
                        pool_append(event)
                        continue
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks:
                        raise event._value
        except StopSimulation as end:
            return end.args[0] if end.args else None
        except EmptySchedule:
            if stop is not None and not stop._triggered:
                if isinstance(until, Event):
                    raise SimulationError(
                        "no more events; the until-event was never triggered"
                    ) from None
            return None
        finally:
            if gc_was_enabled:
                gc.enable()

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
