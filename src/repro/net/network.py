"""Non-blocking fabric with per-server NICs modeled as PS devices."""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Environment
from ..sim.events import Event, join_all
from ..storage.device import GB, TransferDevice, no_penalty

#: 10 Gbps expressed in bytes/second.
TEN_GBPS = 10e9 / 8


class NetworkInterface:
    """One server's NIC: a shared-bandwidth pipe for all its flows."""

    def __init__(self, env: Environment, node: str, bandwidth: float = TEN_GBPS):
        self.node = node
        self.device = TransferDevice(
            env, f"nic-{node}", bandwidth=bandwidth, penalty=no_penalty
        )

    @property
    def bytes_moved(self) -> float:
        return self.device.bytes_moved

    def __repr__(self) -> str:
        return f"<NetworkInterface {self.node!r}>"


class Network:
    """A full-bisection datacenter network between named servers.

    ``transfer(src, dst, nbytes)`` returns an event that fires when the
    bytes have cleared both endpoints' NICs.  Same-node transfers complete
    immediately (loopback never touches the NIC).
    """

    def __init__(self, env: Environment, bandwidth: float = TEN_GBPS):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self._nics: Dict[str, NetworkInterface] = {}

    def add_node(self, node: str, bandwidth: Optional[float] = None) -> NetworkInterface:
        """Register a server; idempotent for repeated names."""
        if node not in self._nics:
            self._nics[node] = NetworkInterface(
                self.env, node, bandwidth or self.bandwidth
            )
        return self._nics[node]

    def nic(self, node: str) -> NetworkInterface:
        if node not in self._nics:
            raise KeyError(f"unknown node {node!r}")
        return self._nics[node]

    def has_node(self, node: str) -> bool:
        return node in self._nics

    def transfer(self, src: str, dst: str, nbytes: float, tag=None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a done event."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if src == dst:
            done = Event(self.env)
            done.succeed(None)
            return done
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        send = src_nic.device.transfer(nbytes, tag=tag)
        recv = dst_nic.device.transfer(nbytes, tag=tag)
        # Callers synchronize on the pair and never read the value, so a
        # bare countdown join beats the general AllOf condition.
        return join_all(self.env, (send, recv))
