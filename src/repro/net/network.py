"""Non-blocking fabric with per-server NICs modeled as PS devices."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..sim.engine import Environment
from ..sim.events import Event, join_all
from ..storage.device import GB, TransferDevice, no_penalty

#: 10 Gbps expressed in bytes/second.
TEN_GBPS = 10e9 / 8


class NetworkError(Exception):
    """A transfer could not complete: an endpoint is down or the message
    was lost (injected fault).  Every transfer involving a dead node
    fails *deterministically* with this error — nothing hangs forever
    waiting on a NIC that will never drain."""


class NetworkInterface:
    """One server's NIC: a shared-bandwidth pipe for all its flows."""

    def __init__(self, env: Environment, node: str, bandwidth: float = TEN_GBPS):
        self.node = node
        self.device = TransferDevice(
            env, f"nic-{node}", bandwidth=bandwidth, penalty=no_penalty
        )

    @property
    def bytes_moved(self) -> float:
        return self.device.bytes_moved

    def __repr__(self) -> str:
        return f"<NetworkInterface {self.node!r}>"


class Network:
    """A full-bisection datacenter network between named servers.

    ``transfer(src, dst, nbytes)`` returns an event that fires when the
    bytes have cleared both endpoints' NICs.  Same-node transfers complete
    immediately (loopback never touches the NIC).

    Failure semantics (used by the fault injector):

    * :meth:`fail_node` marks a server down and aborts its in-flight
      flows; new transfers touching it return an already-failed event.
    * :attr:`fault_hook`, when set, is consulted per transfer and may
      drop the message (the caller sees a :class:`NetworkError` after
      ``loss_detect_timeout`` — the sender's timeout firing) or add
      delay before the bytes move.
    """

    def __init__(self, env: Environment, bandwidth: float = TEN_GBPS):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self._nics: Dict[str, NetworkInterface] = {}
        self._down: Set[str] = set()
        #: Fault hook: ``(src, dst, nbytes) -> (dropped, extra_delay)``.
        #: ``None`` (the default) is the zero-overhead clean path.
        self.fault_hook: Optional[
            Callable[[str, str, float], Tuple[bool, float]]
        ] = None
        #: How long a sender waits before declaring a lost message failed.
        self.loss_detect_timeout = 1.0
        self.transfers_failed = 0
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

    def add_node(self, node: str, bandwidth: Optional[float] = None) -> NetworkInterface:
        """Register a server; idempotent for repeated names."""
        if node not in self._nics:
            self._nics[node] = NetworkInterface(
                self.env, node, bandwidth or self.bandwidth
            )
        return self._nics[node]

    def nic(self, node: str) -> NetworkInterface:
        if node not in self._nics:
            raise KeyError(f"unknown node {node!r}")
        return self._nics[node]

    def has_node(self, node: str) -> bool:
        return node in self._nics

    # -- failure handling ---------------------------------------------------------

    def fail_node(self, node: str) -> None:
        """Mark ``node`` down and abort every flow through its NIC.

        In-flight transfers fail with :class:`NetworkError` (the TCP
        connections reset); the peer NIC's leg of each flow keeps
        draining its residual bytes, which is harmless — the join the
        caller waits on has already failed.
        """
        if node not in self._nics:
            return
        self._down.add(node)
        aborted = self._nics[node].device.fail_all(
            NetworkError(f"node {node!r} went down mid-transfer")
        )
        self.transfers_failed += aborted

    def restore_node(self, node: str) -> None:
        """Bring a server's NIC back into service."""
        self._down.discard(node)

    def node_is_down(self, node: str) -> bool:
        return node in self._down

    # -- data path ---------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float, tag=None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a done event."""
        if self.obs is not None:
            done = self._transfer(src, dst, nbytes, tag)
            self.obs.on_net_transfer(src, dst, nbytes, tag, done)
            return done
        return self._transfer(src, dst, nbytes, tag)

    def _transfer(self, src: str, dst: str, nbytes: float, tag=None) -> Event:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if self._down and (src in self._down or dst in self._down):
            return self._refuse(src, dst, tag)
        hook = self.fault_hook
        if hook is not None:
            dropped, extra_delay = hook(src, dst, nbytes)
            if dropped:
                return self._lose(src, dst, tag)
            if extra_delay > 0:
                done = Event(self.env)
                self.env.process(
                    self._delayed(src, dst, nbytes, tag, extra_delay, done),
                    name="net-delay",
                )
                return done
        return self._transfer_now(src, dst, nbytes, tag)

    def _transfer_now(self, src: str, dst: str, nbytes: float, tag) -> Event:
        if src == dst:
            done = Event(self.env)
            done.succeed(None)
            return done
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        send = src_nic.device.transfer(nbytes, tag=tag)
        recv = dst_nic.device.transfer(nbytes, tag=tag)
        # Callers synchronize on the pair and never read the value, so a
        # bare countdown join beats the general AllOf condition.
        return join_all(self.env, (send, recv))

    def _refuse(self, src: str, dst: str, tag) -> Event:
        """A transfer touching a down node fails immediately and
        deterministically — connection refused, not a hang."""
        down = src if src in self._down else dst
        self.transfers_failed += 1
        done = Event(self.env)
        done.fail(NetworkError(f"cannot transfer {tag!r}: node {down!r} is down"))
        return done

    def _lose(self, src: str, dst: str, tag) -> Event:
        """An injected message loss: the sender only learns after its
        detection timeout elapses."""
        self.transfers_failed += 1
        done = Event(self.env)

        def report():
            yield self.env.timeout(self.loss_detect_timeout)
            done.fail(
                NetworkError(f"transfer {tag!r} {src}->{dst} lost (injected)")
            )

        self.env.process(report(), name="net-loss")
        return done

    def _delayed(self, src, dst, nbytes, tag, delay: float, done: Event):
        """Injected extra latency before the bytes move."""
        yield self.env.timeout(delay)
        if self._down and (src in self._down or dst in self._down):
            down = src if src in self._down else dst
            self.transfers_failed += 1
            done.fail(NetworkError(f"cannot transfer {tag!r}: node {down!r} is down"))
            return
        try:
            yield self._transfer_now(src, dst, nbytes, tag)
        except NetworkError as error:
            done.fail(error)
            return
        done.succeed(None)
