"""Datacenter network model.

The paper's testbed has a 10Gbps full-bisection network and relies on the
observation that "network bandwidth is not a bottleneck in current
data-centers" (Section III-A2) to justify migrating only one replica.  We
model each server's NIC as a processor-sharing device (ingress+egress
combined) connected through a non-blocking fabric: a transfer between two
servers is limited by the slower of the two NICs.
"""

from .network import Network, NetworkError, NetworkInterface

__all__ = ["Network", "NetworkError", "NetworkInterface"]
