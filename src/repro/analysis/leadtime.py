"""Lead-time sufficiency analysis (paper Section II-C1, Figure 3).

For each job in the (synthetic) Google trace we sum the disk IO time of
its tasks and compare against the job's lead-time.  The paper finds that
for 81% of jobs the lead-time exceeds the read time, i.e. the whole input
could migrate into memory before the first task starts — even assuming
the IO is served by a single disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..workloads.google_trace import GoogleTraceJob


@dataclass(frozen=True)
class LeadTimeAnalysis:
    """Result of the Fig 3 computation."""

    ratios: Tuple[float, ...]  # read_time / lead_time per job
    sufficient_fraction: float  # jobs with ratio < 1
    mean_lead_time: float
    median_lead_time: float


def analyze_lead_time(jobs: Sequence[GoogleTraceJob]) -> LeadTimeAnalysis:
    """Compute read-time/lead-time ratios and the sufficiency fraction."""
    if not jobs:
        raise ValueError("no jobs to analyze")
    ratios: List[float] = []
    for job in jobs:
        if job.lead_time <= 0:
            ratios.append(float("inf"))
        else:
            ratios.append(job.total_read_time / job.lead_time)
    sufficient = sum(1 for ratio in ratios if ratio < 1.0) / len(ratios)
    leads = sorted(job.lead_time for job in jobs)
    n = len(leads)
    median = (
        leads[n // 2] if n % 2 else (leads[n // 2 - 1] + leads[n // 2]) / 2
    )
    return LeadTimeAnalysis(
        ratios=tuple(ratios),
        sufficient_fraction=sufficient,
        mean_lead_time=sum(leads) / n,
        median_lead_time=median,
    )


def ratio_cdf(analysis: LeadTimeAnalysis) -> Tuple[List[float], List[float]]:
    """The Fig 3 curve: CDF of read-time/lead-time ratios."""
    finite = sorted(r for r in analysis.ratios if r != float("inf"))
    n = len(analysis.ratios)
    return finite, [(index + 1) / n for index in range(len(finite))]
