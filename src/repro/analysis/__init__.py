"""Section II feasibility analyses over the (synthetic) Google trace."""

from .disk_utilization import (
    UtilizationTimeline,
    mean_utilization_timeline,
    overall_mean_utilization,
    server_utilization,
)
from .leadtime import LeadTimeAnalysis, analyze_lead_time, ratio_cdf
from .memory import MemorySufficiency, worst_case_memory

__all__ = [
    "LeadTimeAnalysis",
    "MemorySufficiency",
    "UtilizationTimeline",
    "analyze_lead_time",
    "mean_utilization_timeline",
    "overall_mean_utilization",
    "ratio_cdf",
    "server_utilization",
    "worst_case_memory",
]
