"""Disk-utilization analysis (paper Section II-C1, Figure 4).

The paper derives per-server disk utilization from the Google trace by
assuming each task's reported IO time is uniformly distributed over its
reporting interval, computing utilization at 1-second granularity, and
averaging over 5-minute windows.  This module implements exactly that
computation over :class:`TaskUsageInterval` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..workloads.google_trace import TaskUsageInterval


@dataclass(frozen=True)
class UtilizationTimeline:
    """Windowed utilization series for one server (or a mean of servers)."""

    window: float
    times: Tuple[float, ...]
    utilization: Tuple[float, ...]

    @property
    def mean(self) -> float:
        if not self.utilization:
            raise ValueError("empty timeline")
        return float(np.mean(self.utilization))

    @property
    def peak(self) -> float:
        if not self.utilization:
            raise ValueError("empty timeline")
        return float(np.max(self.utilization))


def server_utilization(
    intervals: Sequence[TaskUsageInterval],
    duration: float,
    window: float = 300.0,
    resolution: float = 1.0,
) -> Dict[int, UtilizationTimeline]:
    """Per-server utilization timelines via the paper's method."""
    if duration <= 0 or window <= 0 or resolution <= 0:
        raise ValueError("duration, window, and resolution must be positive")
    num_ticks = int(round(duration / resolution))
    per_server: Dict[int, np.ndarray] = {}

    for row in intervals:
        ticks = per_server.setdefault(
            row.server, np.zeros(num_ticks, dtype=float)
        )
        lo = int(row.start / resolution)
        hi = min(num_ticks, int(round(row.end / resolution)))
        if hi <= lo:
            continue
        # Uniform-distribution assumption: the task contributes an equal
        # share of its IO time to every second of its interval.
        ticks[lo:hi] += row.io_time / (hi - lo) / resolution

    ticks_per_window = max(1, int(round(window / resolution)))
    timelines: Dict[int, UtilizationTimeline] = {}
    for server, ticks in per_server.items():
        ticks = np.clip(ticks, 0.0, 1.0)
        usable = (len(ticks) // ticks_per_window) * ticks_per_window
        windowed = ticks[:usable].reshape(-1, ticks_per_window).mean(axis=1)
        times = tuple(
            (index + 1) * window for index in range(len(windowed))
        )
        timelines[server] = UtilizationTimeline(
            window=window, times=times, utilization=tuple(float(v) for v in windowed)
        )
    return timelines


def mean_utilization_timeline(
    timelines: Dict[int, UtilizationTimeline]
) -> UtilizationTimeline:
    """The Fig 4 'mean of N servers' curve."""
    if not timelines:
        raise ValueError("no timelines")
    series = [np.asarray(t.utilization) for t in timelines.values()]
    length = min(len(s) for s in series)
    stacked = np.stack([s[:length] for s in series])
    mean = stacked.mean(axis=0)
    first = next(iter(timelines.values()))
    return UtilizationTimeline(
        window=first.window,
        times=first.times[:length],
        utilization=tuple(float(v) for v in mean),
    )


def overall_mean_utilization(timelines: Dict[int, UtilizationTimeline]) -> float:
    """Grand mean over all servers and windows (the paper's 3.1%)."""
    if not timelines:
        raise ValueError("no timelines")
    values: List[float] = []
    for timeline in timelines.values():
        values.extend(timeline.utilization)
    return float(np.mean(values))
