"""Worst-case memory sufficiency analysis (paper Section II-C2).

The paper argues there is always enough RAM for migrated data: at most
~50 concurrent tasks per server, each a mapper reading one large 256MB
block, bounds migrated bytes at 12.5GB — small next to servers with
hundreds of GB of RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.device import GB, MB


@dataclass(frozen=True)
class MemorySufficiency:
    """Result of the worst-case bound computation."""

    concurrent_tasks: int
    block_size: float
    server_ram: float

    @property
    def worst_case_bytes(self) -> float:
        """Upper bound on simultaneously needed migrated bytes."""
        return self.concurrent_tasks * self.block_size

    @property
    def ram_fraction(self) -> float:
        """Worst case as a fraction of server RAM."""
        return self.worst_case_bytes / self.server_ram

    @property
    def sufficient(self) -> bool:
        return self.worst_case_bytes <= self.server_ram


def worst_case_memory(
    concurrent_tasks: int = 50,
    block_size: float = 256 * MB,
    server_ram: float = 128 * GB,
) -> MemorySufficiency:
    """The paper's worst-case arithmetic (50 tasks x 256MB = 12.5GB)."""
    if concurrent_tasks < 1:
        raise ValueError("concurrent_tasks must be >= 1")
    if block_size <= 0 or server_ram <= 0:
        raise ValueError("block_size and server_ram must be positive")
    return MemorySufficiency(
        concurrent_tasks=concurrent_tasks,
        block_size=block_size,
        server_ram=server_ram,
    )
