"""Deterministic fault injection, chaos sweeps, and invariant checking."""

from .chaos import ChaosReport, ChaosRunner, ChaosRunResult
from .injector import FaultInjector
from .invariants import (
    InvariantChecker,
    data_loss_violations,
    replication_violations,
)
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FAULT_KINDS",
    "ChaosReport",
    "ChaosRunner",
    "ChaosRunResult",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "InvariantChecker",
    "data_loss_violations",
    "replication_violations",
]
