"""Chaos sweeps: many seeded fault schedules against the SWIM workload.

A :class:`ChaosRunner` runs the paper's SWIM workload N times, each time
with a different seed driving both the workload and a random
:class:`~repro.faults.schedule.FaultSchedule`.  Every run drains the
simulation fully, forces a final liveness sweep, and then asserts the
paper's invariants with the :class:`~repro.faults.invariants.InvariantChecker`.
The sweep report aggregates per-seed outcomes; zero violations across
all seeds is the pass criterion wired into CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..experiments.swim_runs import prepare_swim_cluster
from .injector import FaultInjector
from .invariants import InvariantChecker
from .schedule import FaultSchedule

#: Extra simulated time past the last job arrival that the fault window
#: may cover; crashes too close to drain would fault an idle cluster.
_HORIZON_SLACK = 120.0


@dataclass
class ChaosRunResult:
    """Outcome of one seeded chaos run."""

    seed: int
    faults_applied: int
    crashes: int
    kills: int
    joins: int
    decommissions: int
    repair_copies: int
    jobs_total: int
    jobs_completed: int
    jobs_failed: int
    command_retries: int
    commands_rerouted: int
    commands_abandoned: int
    failovers: int
    sim_time: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregate of a full sweep."""

    results: List[ChaosRunResult]

    @property
    def total_violations(self) -> int:
        return sum(len(result.violations) for result in self.results)

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def format(self) -> str:
        lines = [
            "seed  faults  crashes  kill/join/decomm  repairs  "
            "jobs ok/fail  retries  reroutes  abandoned  failovers  violations"
        ]
        for r in self.results:
            lines.append(
                f"{r.seed:>4}  {r.faults_applied:>6}  {r.crashes:>7}  "
                f"{r.kills:>4}/{r.joins}/{r.decommissions:<7}  "
                f"{r.repair_copies:>7}  "
                f"{r.jobs_completed:>7}/{r.jobs_failed:<4}  "
                f"{r.command_retries:>7}  {r.commands_rerouted:>8}  "
                f"{r.commands_abandoned:>9}  {r.failovers:>9}  "
                f"{len(r.violations):>10}"
            )
        for r in self.results:
            for violation in r.violations:
                lines.append(f"seed {r.seed}: VIOLATION: {violation}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.results)} seed(s), "
            f"{self.total_violations} invariant violation(s)"
        )
        return "\n".join(lines)


class ChaosRunner:
    """Sweeps seeded fault schedules over the SWIM workload."""

    def __init__(
        self,
        num_jobs: int = 40,
        ha: bool = True,
        max_node_crashes: int = 2,
        elasticity: bool = False,
    ):
        self.num_jobs = num_jobs
        self.ha = ha
        self.max_node_crashes = max_node_crashes
        #: Draw kill/join/decommission events into every schedule,
        #: exercising the self-healing replication subsystem.
        self.elasticity = elasticity

    def run_seed(self, seed: int) -> ChaosRunResult:
        """One full chaos run: workload + faults + drain + invariants."""
        cluster, _, specs, arrivals = prepare_swim_cluster(
            "ignem", seed=seed, num_jobs=self.num_jobs, ha=self.ha
        )
        cluster.enable_rereplication()

        horizon = (max(arrivals) if arrivals else 0.0) + _HORIZON_SLACK
        schedule = FaultSchedule.random(
            seed,
            cluster.node_names(),
            horizon,
            max_node_crashes=self.max_node_crashes,
            elasticity=self.elasticity,
        )
        injector = FaultInjector(cluster, schedule)
        injector.start()

        cluster.engine.run_workload(specs, arrivals, implicit_eviction=True)
        # No `until`: drain the event queue completely so every retry,
        # re-replication copy, and restart settles before we assert.
        cluster.run()

        # Final forced liveness sweep (III-A4): collect any references
        # the periodic sweeps have not reclaimed yet.
        for slave in cluster.ignem_slaves.values():
            if slave.alive:
                slave.cleanup_dead_jobs(force=True)

        violations = InvariantChecker(cluster).check(injector)

        jobs = cluster.engine.jobs
        master = cluster.ignem_master
        failovers = getattr(master, "_failovers", 0) if master is not None else 0
        registry = cluster.metrics
        monitor = cluster.replication_monitor
        return ChaosRunResult(
            seed=seed,
            faults_applied=len(injector.applied),
            crashes=len(schedule.crashed_nodes()),
            kills=sum(1 for _, e in injector.applied if e.kind == "kill"),
            joins=sum(1 for _, e in injector.applied if e.kind == "join"),
            decommissions=len(injector.decommissions_completed),
            repair_copies=monitor.copies_completed,
            jobs_total=len(jobs),
            jobs_completed=sum(1 for job in jobs if job.finished_at is not None),
            jobs_failed=sum(1 for job in jobs if job.failed),
            command_retries=registry.counter("ignem.master.command_retries").value,
            commands_rerouted=registry.counter(
                "ignem.master.commands_rerouted"
            ).value,
            commands_abandoned=registry.counter(
                "ignem.master.commands_abandoned"
            ).value,
            failovers=failovers,
            sim_time=cluster.env.now,
            violations=violations,
        )

    def sweep(self, seeds: int = 10, base_seed: int = 0) -> ChaosReport:
        """Run ``seeds`` consecutive seeded chaos runs."""
        results = [self.run_seed(base_seed + i) for i in range(seeds)]
        return ChaosReport(results)
