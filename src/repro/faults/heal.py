"""`repro heal`: a scripted self-healing replication demo.

One SWIM workload runs while a fixed elasticity schedule fires three
membership changes: a permanent ``kill`` mid-flight, a fresh ``join``,
and a graceful ``decommission``.  The replication monitor repairs every
under-replicated block over pipelined copy chains, the drained node is
released only once its blocks are safe elsewhere, and the run ends with
the invariant checker's verdict (which now includes the unconditional
under-replication invariant).

``disable_repair=True`` is the contrast mode: with the monitor off, the
same schedule leaves blocks permanently under-replicated and the
invariant checker convicts the run — the demo's own sabotage self-test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..experiments.swim_runs import prepare_swim_cluster
from .injector import FaultInjector
from .invariants import InvariantChecker
from .schedule import FaultEvent, FaultSchedule

#: Schedule shape, as fractions of the workload horizon.
_KILL_AT = 0.25
_JOIN_AT = 0.40
_DECOMMISSION_AT = 0.55
_HORIZON_SLACK = 120.0


@dataclass
class HealResult:
    """Everything one heal demo run leaves behind."""

    seed: int
    repair_enabled: bool
    killed: str
    joined: str
    decommissioned: str
    jobs_total: int
    jobs_completed: int
    jobs_failed: int
    repair_copies: int
    repair_retries: int
    excess_dropped: int
    rebalance_moves: int
    decommissions_completed: int
    under_replicated: int
    missing_blocks: int
    sim_time: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "repair_enabled": self.repair_enabled,
            "killed": self.killed,
            "joined": self.joined,
            "decommissioned": self.decommissioned,
            "jobs_total": self.jobs_total,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "repair_copies": self.repair_copies,
            "repair_retries": self.repair_retries,
            "excess_dropped": self.excess_dropped,
            "rebalance_moves": self.rebalance_moves,
            "decommissions_completed": self.decommissions_completed,
            "under_replicated": self.under_replicated,
            "missing_blocks": self.missing_blocks,
            "sim_time": self.sim_time,
            "violations": list(self.violations),
        }


def run_heal_demo(
    seed: int = 0, num_jobs: int = 40, disable_repair: bool = False
) -> HealResult:
    """Run the scripted kill/join/decommission demo and judge it."""
    cluster, _, specs, arrivals = prepare_swim_cluster(
        "ignem", seed=seed, num_jobs=num_jobs, ha=True
    )
    monitor = cluster.enable_rereplication()
    if disable_repair:
        monitor.enabled = False

    names = cluster.node_names()
    killed, decommissioned = names[0], names[-1]
    joined = f"node{len(names)}"
    horizon = (max(arrivals) if arrivals else 0.0) + _HORIZON_SLACK
    schedule = FaultSchedule(
        (
            FaultEvent(_KILL_AT * horizon, "kill", killed),
            FaultEvent(_JOIN_AT * horizon, "join", joined),
            FaultEvent(
                _DECOMMISSION_AT * horizon, "decommission", decommissioned
            ),
        ),
        seed=seed,
    )
    injector = FaultInjector(cluster, schedule)
    injector.start()

    cluster.engine.run_workload(specs, arrivals, implicit_eviction=True)
    # Full drain: every repair chain, retry, and the decommission drain
    # settle before judgment.
    cluster.run()

    for slave in cluster.ignem_slaves.values():
        if slave.alive:
            slave.cleanup_dead_jobs(force=True)

    violations = InvariantChecker(cluster).check(injector)

    jobs = cluster.engine.jobs
    return HealResult(
        seed=seed,
        repair_enabled=not disable_repair,
        killed=killed,
        joined=joined,
        decommissioned=decommissioned,
        jobs_total=len(jobs),
        jobs_completed=sum(
            1 for job in jobs if job.finished_at is not None
        ),
        jobs_failed=sum(1 for job in jobs if job.failed),
        repair_copies=monitor.copies_completed,
        repair_retries=monitor.copy_retries,
        excess_dropped=monitor.excess_dropped,
        rebalance_moves=monitor.rebalance_moves,
        decommissions_completed=len(cluster.decommission_log),
        under_replicated=len(monitor.under_replicated_blocks()),
        missing_blocks=len(monitor.missing_blocks()),
        sim_time=cluster.env.now,
        violations=violations,
    )


def format_heal_result(result: HealResult) -> str:
    """Human-readable heal demo report."""
    mode = "on" if result.repair_enabled else "OFF (contrast mode)"
    lines = [
        "self-healing replication demo",
        f"  repair monitor: {mode}",
        f"  killed {result.killed!r}, joined {result.joined!r}, "
        f"decommissioned {result.decommissioned!r}",
        f"  jobs: {result.jobs_completed}/{result.jobs_total} completed, "
        f"{result.jobs_failed} failed",
        f"  repair copies: {result.repair_copies} "
        f"({result.repair_retries} retries), "
        f"excess dropped: {result.excess_dropped}, "
        f"rebalance moves: {result.rebalance_moves}",
        f"  decommissions completed: {result.decommissions_completed}",
        f"  end state: {result.under_replicated} under-replicated, "
        f"{result.missing_blocks} missing block(s) "
        f"at t={result.sim_time:.1f}",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION: {violation}")
    lines.append(
        "verdict: "
        + ("PASS" if result.ok else f"FAIL ({len(result.violations)} violation(s))")
    )
    return "\n".join(lines)
