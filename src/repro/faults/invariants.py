"""Post-run invariant checking: the paper's guarantees, asserted.

After every run — faulty or clean — the :class:`InvariantChecker`
verifies that the system's correctness properties survived:

1. **Do-not-harm (III-A3).**  No slave's migrated-bytes ever exceeded its
   buffer capacity, and with ``do_not_harm`` enabled no migrated block
   was preempted to admit another.
2. **No dangling references (III-A4).**  After job completion plus a
   forced liveness sweep, every remaining reference-list entry belongs to
   a job the scheduler still knows; a fully drained run holds zero.
3. **No data loss while replication >= 2.**  A block of a file with
   replication factor >= 2 must keep at least one live replica whenever
   fewer nodes are simultaneously down than its replication factor
   (checked at crash instants by the injector and again at end of run).
4. **Byte/accounting conservation.**  Per node, completed-migration bytes
   minus eviction bytes equals the slave's ``migrated_bytes``, which in
   turn equals the byte-sum of its resident migrated blocks and the last
   recorded memory sample.
5. **Memory-locality index equivalence.**  The push-maintained NameNode
   index equals a brute-force recomputation from the DataNode caches —
   node failures must leave no stale entries.
6. **Replication restored.**  At end of run, no surviving block is left
   under-replicated: every block with at least one live replica holds
   ``min(replication, live_nodes)`` live replicas, and no holder appears
   twice in a block's location list.  This is the invariant a permanent
   node loss (crash with no restart) used to slip past — self-healing
   re-replication is what upholds it.

Violations are returned as human-readable strings; an empty list means
the run upheld every guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Set

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster
    from ..dfs.namenode import NameNode
    from .injector import FaultInjector

#: Float-noise tolerance for byte accounting (fractional final blocks).
_BYTE_TOLERANCE = 1.0


def data_loss_violations(
    namenode: "NameNode", down_nodes: Set[str], when: float
) -> List[str]:
    """Blocks that lost every live replica although their replication
    factor should have tolerated the current number of down nodes."""
    violations: List[str] = []
    concurrent_down = len(down_nodes)
    for path in namenode.list_files():
        metadata = namenode.get_file(path)
        if metadata.replication < 2 or concurrent_down >= metadata.replication:
            # Replication 1 has no failure tolerance to guarantee, and
            # losing as many nodes as there are replicas may legitimately
            # take out all of them.
            continue
        for block in metadata.blocks:
            if not namenode.get_block_locations(block.block_id):
                violations.append(
                    f"data loss: {block.block_id} ({path}) has zero live "
                    f"replicas at t={when:.3f} with only {concurrent_down} "
                    f"node(s) down and replication={metadata.replication}"
                )
    return violations


def replication_violations(namenode: "NameNode", when: float) -> List[str]:
    """Blocks left under-replicated (or double-listed) at ``when``.

    The target is capped by the live-node count — a 3-node cluster with
    one node down cannot hold 3 replicas of anything, and that is not
    the repair machinery's fault.  Blocks with zero live replicas are
    data loss, judged separately by :func:`data_loss_violations`.
    """
    violations: List[str] = []
    live_nodes = len(namenode.live_datanodes())
    for path in namenode.list_files():
        metadata = namenode.get_file(path)
        target = min(metadata.replication, live_nodes)
        for block in metadata.blocks:
            holders = namenode.block_replicas(block.block_id)
            if len(holders) != len(set(holders)):
                violations.append(
                    f"replication: {block.block_id} ({path}) lists a "
                    f"holder twice ({holders}) at t={when:.3f}"
                )
            live = namenode.get_block_locations(block.block_id)
            if 0 < len(live) < target:
                violations.append(
                    f"under-replication: {block.block_id} ({path}) has "
                    f"{len(live)} live replica(s) but needs {target} "
                    f"(replication={metadata.replication}, "
                    f"{live_nodes} live nodes) at t={when:.3f}"
                )
    return violations


class InvariantChecker:
    """Checks the paper's guarantees against a finished cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster

    def check(self, injector: "FaultInjector" = None) -> List[str]:
        """Run every invariant; returns all violations (empty = clean).

        Pass the run's :class:`FaultInjector` to include the data-loss
        violations it recorded at crash instants and to exempt nodes
        still down at end of run from the end-state checks.
        """
        down: Set[str] = injector.down_nodes if injector is not None else set()
        violations: List[str] = []
        if injector is not None:
            violations.extend(injector.violations)
        violations.extend(self.check_do_not_harm())
        violations.extend(self.check_reference_lists())
        violations.extend(self.check_byte_accounting())
        violations.extend(self.check_memory_index())
        violations.extend(
            data_loss_violations(
                self.cluster.namenode, down, when=self.cluster.env.now
            )
        )
        violations.extend(
            replication_violations(
                self.cluster.namenode, when=self.cluster.env.now
            )
        )
        return violations

    # -- individual invariants ----------------------------------------------------

    def check_do_not_harm(self) -> List[str]:
        violations: List[str] = []
        for name, slave in sorted(self.cluster.ignem_slaves.items()):
            for tier in sorted(slave.tier_usage_timeline):
                capacity = slave.config.buffer_capacity_for(tier)
                peak = max(
                    usage for _, usage in slave.tier_usage_timeline[tier]
                )
                if peak > capacity + _BYTE_TOLERANCE:
                    violations.append(
                        f"do-not-harm: {name} tier {tier!r} peaked at "
                        f"{peak:.0f} bytes, over its {capacity:.0f}-byte "
                        f"buffer capacity"
                    )
        if any(
            slave.config.do_not_harm
            for slave in self.cluster.ignem_slaves.values()
        ):
            preempted = [
                record
                for record in self.cluster.collector.evictions
                if record.reason == "preempted"
            ]
            if preempted:
                violations.append(
                    f"do-not-harm: {len(preempted)} migrated block(s) were "
                    "preempted although do_not_harm is enabled"
                )
        return violations

    def check_reference_lists(self) -> List[str]:
        """No reference held by a job the scheduler has forgotten.

        Run after the final forced liveness sweep: anything the sweep
        could not justify by a live job is a leak.
        """
        violations: List[str] = []
        rm = self.cluster.rm
        for name, slave in sorted(self.cluster.ignem_slaves.items()):
            for block_id, jobs in sorted(slave.referenced_blocks().items()):
                dead = sorted(job for job in jobs if not rm.job_active(job))
                if dead:
                    violations.append(
                        f"dangling references: {name} still holds refs on "
                        f"{block_id} for finished job(s) {', '.join(dead)}"
                    )
        return violations

    def check_byte_accounting(self) -> List[str]:
        violations: List[str] = []
        migrated_by_node: Dict[str, float] = {}
        for record in self.cluster.collector.migrations:
            if record.outcome == "completed":
                migrated_by_node[record.node] = (
                    migrated_by_node.get(record.node, 0.0) + record.nbytes
                )
        evicted_by_node: Dict[str, float] = {}
        for record in self.cluster.collector.evictions:
            evicted_by_node[record.node] = (
                evicted_by_node.get(record.node, 0.0) + record.nbytes
            )
        for name, slave in sorted(self.cluster.ignem_slaves.items()):
            expected = migrated_by_node.get(name, 0.0) - evicted_by_node.get(
                name, 0.0
            )
            if abs(expected - slave.migrated_bytes) > _BYTE_TOLERANCE:
                violations.append(
                    f"byte conservation: {name} accounts {slave.migrated_bytes:.0f} "
                    f"bytes but metrics say {expected:.0f} "
                    "(completed migrations minus evictions)"
                )
            resident = slave.resident_bytes()
            if abs(resident - slave.migrated_bytes) > _BYTE_TOLERANCE:
                violations.append(
                    f"byte conservation: {name} counts {slave.migrated_bytes:.0f} "
                    f"migrated bytes but its blocks sum to {resident:.0f}"
                )
        return violations

    def check_memory_index(self) -> List[str]:
        """Push-maintained tier index == brute-force recomputation.

        Checked per upper tier: a block cached in a middle (e.g. SSD)
        tier must appear in that tier's index and *not* in the memory
        index.
        """
        namenode = self.cluster.namenode
        expected: Dict[str, Dict[str, Set[str]]] = {}
        tier_names: Set[str] = set()
        for name, datanode in self.cluster.datanodes.items():
            for tier in datanode.tiers.upper:
                tier_names.add(tier.spec.name)
                per_tier = expected.setdefault(tier.spec.name, {})
                for key in tier.cache.resident_keys():
                    if namenode.is_block(key):
                        per_tier.setdefault(key, set()).add(name)
        violations: List[str] = []
        for tier_name in sorted(tier_names):
            actual = {
                block_id: set(nodes)
                for block_id, nodes in namenode.tier_index.tier(
                    tier_name
                ).blocks().items()
            }
            want_map = expected.get(tier_name, {})
            for block_id in sorted(set(want_map) | set(actual)):
                want = want_map.get(block_id, set())
                have = actual.get(block_id, set())
                if want != have:
                    violations.append(
                        f"memory index: {block_id} indexed on "
                        f"{sorted(have)} in tier {tier_name!r} but "
                        f"actually resident on {sorted(want)}"
                    )
        return violations
