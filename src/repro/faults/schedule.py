"""Deterministic, seed-driven fault schedules.

A :class:`FaultSchedule` is a time-ordered list of :class:`FaultEvent`
records to be applied to a live cluster by the
:class:`~repro.faults.injector.FaultInjector`.  Schedules are plain data:
generating one draws from a :class:`~repro.sim.rand.RandomSource` child
stream and never touches the simulation, so the same seed always yields
the same schedule regardless of cluster state.

Fault taxonomy (see DESIGN.md, "Failure model & fault injection"):

* ``crash`` / ``restart`` — whole-server failure and recovery
  (DataNode + Ignem slave + NodeManager + NIC, paper III-A5);
* ``master_fail`` / ``master_recover`` — Ignem master failover
  (routed through :class:`~repro.core.ha.HighAvailabilityMaster`
  when one is attached, else a cold master restart);
* ``slow_disk_start`` / ``slow_disk_end`` — a straggling disk whose
  sequential bandwidth degrades to ``param`` of nominal for a window;
* ``net_loss_start`` / ``net_loss_end`` — a window during which each
  network message is lost with probability ``param`` (and surviving
  messages may pick up extra delay);
* ``kill`` — permanent whole-server loss (a crash with no restart:
  only self-healing re-replication can restore the replication factor);
* ``join`` — a brand-new DataNode enters the cluster
  (:meth:`~repro.cluster.Cluster.add_datanode`);
* ``decommission`` — graceful drain-and-release of a node
  (:meth:`~repro.cluster.Cluster.decommission`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.rand import RandomSource

FAULT_KINDS = (
    "crash",
    "restart",
    "master_fail",
    "master_recover",
    "slow_disk_start",
    "slow_disk_end",
    "net_loss_start",
    "net_loss_end",
    "kill",
    "join",
    "decommission",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *when*, *what*, *where*, and a knob value."""

    time: float
    kind: str
    target: Optional[str] = None
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault plan."""

    events: Tuple[FaultEvent, ...]
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.kind, e.target or ""))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def crashed_nodes(self) -> List[str]:
        """Distinct nodes this schedule crashes at some point."""
        seen = []
        for event in self.events:
            if event.kind == "crash" and event.target not in seen:
                seen.append(event.target)
        return seen

    @classmethod
    def random(
        cls,
        seed: int,
        node_names: Sequence[str],
        horizon: float,
        max_node_crashes: int = 2,
        crash_prob: float = 0.8,
        straggler_prob: float = 0.6,
        master_failover_prob: float = 0.5,
        net_loss_prob: float = 0.5,
        min_downtime: float = 15.0,
        max_downtime: float = 60.0,
        elasticity: bool = False,
    ) -> "FaultSchedule":
        """Draw a seed-deterministic schedule over ``[0, horizon]``.

        At most ``max_node_crashes`` *distinct* nodes crash, and every
        crash is paired with a restart after a bounded downtime — so with
        the paper's replication factor of 3 no block can lose all its
        replicas, and the cluster always returns to full strength (jobs
        can finish, and the data-loss invariant stays checkable).

        ``elasticity=True`` additionally draws membership-change events —
        ``join`` (usually), plus ``kill`` and ``decommission`` when the
        crash draws left enough untouched nodes (each pick needs two
        untouched candidates, so at least one original node survives the
        whole schedule unharmed).  The elasticity draws happen strictly
        *after* every classic draw, so for any seed the classic portion
        of the schedule is byte-identical with the flag off (old corpora
        stay canonical).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if max_node_crashes >= len(node_names):
            raise ValueError(
                "max_node_crashes must leave a live majority "
                f"({max_node_crashes} crashes over {len(node_names)} nodes)"
            )
        rng = RandomSource(seed).spawn("fault-schedule")
        names = sorted(node_names)
        events: List[FaultEvent] = []

        crashes = sum(
            1 for _ in range(max_node_crashes) if rng.uniform(0.0, 1.0) < crash_prob
        )
        crash_victims = rng.sample(names, crashes)
        for victim in crash_victims:
            at = rng.uniform(0.05, 0.7) * horizon
            downtime = rng.uniform(min_downtime, max_downtime)
            events.append(FaultEvent(at, "crash", victim))
            events.append(FaultEvent(at + downtime, "restart", victim))

        if rng.uniform(0.0, 1.0) < straggler_prob:
            node = rng.choice(names)
            at = rng.uniform(0.1, 0.8) * horizon
            duration = rng.uniform(20.0, 90.0)
            factor = rng.uniform(0.05, 0.3)
            events.append(FaultEvent(at, "slow_disk_start", node, factor))
            events.append(FaultEvent(at + duration, "slow_disk_end", node))

        if rng.uniform(0.0, 1.0) < master_failover_prob:
            at = rng.uniform(0.1, 0.8) * horizon
            recovery = rng.uniform(10.0, 40.0)
            events.append(FaultEvent(at, "master_fail"))
            events.append(FaultEvent(at + recovery, "master_recover"))

        if rng.uniform(0.0, 1.0) < net_loss_prob:
            at = rng.uniform(0.1, 0.8) * horizon
            duration = rng.uniform(10.0, 60.0)
            loss = rng.uniform(0.05, 0.3)
            events.append(FaultEvent(at, "net_loss_start", None, loss))
            events.append(FaultEvent(at + duration, "net_loss_end"))

        if elasticity:
            # Every elasticity draw comes after the classic ones, so the
            # classic portion of any seed's schedule never changes.
            if rng.uniform(0.0, 1.0) < 0.75:
                joined = f"node{len(names)}"
                events.append(
                    FaultEvent(rng.uniform(0.1, 0.5) * horizon, "join", joined)
                )
            # kill / decommission pick from nodes the crash draws left
            # untouched; each pick needs two untouched candidates so the
            # cluster always has somewhere to re-replicate to.
            pool = [n for n in names if n not in crash_victims]
            if len(pool) >= 2 and rng.uniform(0.0, 1.0) < 0.6:
                victim = rng.choice(pool)
                pool.remove(victim)
                events.append(
                    FaultEvent(rng.uniform(0.15, 0.6) * horizon, "kill", victim)
                )
            if len(pool) >= 2 and rng.uniform(0.0, 1.0) < 0.5:
                drained = rng.choice(pool)
                events.append(
                    FaultEvent(
                        rng.uniform(0.3, 0.8) * horizon, "decommission", drained
                    )
                )

        return cls(tuple(events), seed=seed)
