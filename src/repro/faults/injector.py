"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a cluster.

The injector runs as one simulation process that walks the schedule in
time order and drives the cluster's failure hooks: whole-server crashes
and restarts via :meth:`Cluster.fail_node` / :meth:`Cluster.restart_node`,
master failovers via the :class:`~repro.core.ha.HighAvailabilityMaster`
(or a cold master restart when no HA pair is attached), slow-disk windows
via :meth:`TransferDevice.set_bandwidth`, and message-loss windows via
the network's and master's fault hooks.

Every probabilistic decision inside a loss window draws from the
injector's own :class:`~repro.sim.rand.RandomSource` child stream, so a
chaos run is a pure function of ``(workload seed, fault seed)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..sim.rand import RandomSource
from .invariants import data_loss_violations
from .schedule import FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster


class FaultInjector:
    """Drives one schedule against one live cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        schedule: FaultSchedule,
        rng: Optional[RandomSource] = None,
    ):
        self.cluster = cluster
        self.schedule = schedule
        seed = schedule.seed if schedule.seed is not None else 0
        self.rng = rng or RandomSource(seed).spawn("fault-injector")
        #: Events actually applied, with their application times.
        self.applied: List[Tuple[float, FaultEvent]] = []
        #: Data-loss violations observed at crash instants (a block with
        #: zero live replicas while fewer nodes are down than its
        #: replication factor can tolerate).
        self.violations: List[str] = []
        self.max_concurrent_down = 0
        #: ``(completion_time, node)`` per decommission drain that
        #: finished during the run (scheduled by ``decommission`` events).
        self.decommissions_completed: List[Tuple[float, str]] = []
        self._down: Set[str] = set()
        self._saved_bandwidth: Dict[str, float] = {}
        self._loss_prob = 0.0
        self._extra_delay_prob = 0.3
        self._started = False

    @property
    def down_nodes(self) -> Set[str]:
        return set(self._down)

    def start(self) -> None:
        """Spawn the injector process (idempotent)."""
        if self._started or self.schedule.is_empty:
            self._started = True
            return
        self._started = True
        self.cluster.env.process(self._run(), name="fault-injector")

    # -- process body ------------------------------------------------------------

    def _run(self):
        env = self.cluster.env
        for event in self.schedule.events:
            if event.time > env.now:
                yield env.timeout(event.time - env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        # Handlers return False for no-ops (e.g. crashing an already-down
        # node); only actually-applied events are recorded.
        if handler(event) is not False:
            self.applied.append((self.cluster.env.now, event))

    # -- handlers ------------------------------------------------------------------

    def _apply_crash(self, event: FaultEvent):
        name = event.target
        if name in self._down or name in self.cluster.released_nodes:
            return False
        self._down.add(name)
        self.max_concurrent_down = max(self.max_concurrent_down, len(self._down))
        self.cluster.fail_node(name)
        self.violations.extend(
            data_loss_violations(
                self.cluster.namenode, self._down, when=self.cluster.env.now
            )
        )

    def _apply_restart(self, event: FaultEvent):
        name = event.target
        if name not in self._down or name in self.cluster.released_nodes:
            return False
        self._down.discard(name)
        self.cluster.restart_node(name)

    def _apply_kill(self, event: FaultEvent):
        """Permanent whole-server loss: a crash that never restarts.
        Only the replication monitor can restore the replication factor."""
        name = event.target
        if (
            name in self._down
            or name not in self.cluster.datanodes
            or name in self.cluster.released_nodes
        ):
            return False
        self._down.add(name)
        self.max_concurrent_down = max(self.max_concurrent_down, len(self._down))
        self.cluster.fail_node(name)
        self.violations.extend(
            data_loss_violations(
                self.cluster.namenode, self._down, when=self.cluster.env.now
            )
        )

    def _apply_join(self, event: FaultEvent):
        name = event.target
        if name in self.cluster.datanodes:
            return False
        self.cluster.add_datanode(name)

    def _apply_decommission(self, event: FaultEvent):
        name = event.target
        if (
            name not in self.cluster.datanodes
            or name in self._down
            or name in self.cluster.released_nodes
        ):
            return False
        done = self.cluster.decommission(name)
        env = self.cluster.env
        done.callbacks.append(
            lambda _event: self.decommissions_completed.append((env.now, name))
        )

    def _apply_master_fail(self, event: FaultEvent):
        master = self.cluster.ignem_master
        if master is None:
            return False
        if hasattr(master, "fail_primary"):
            master.fail_primary()
        else:
            master.fail()

    def _apply_master_recover(self, event: FaultEvent):
        master = self.cluster.ignem_master
        if master is None:
            return False
        if hasattr(master, "recover_primary"):
            master.recover_primary()
        else:
            master.restart()

    def _apply_slow_disk_start(self, event: FaultEvent) -> None:
        disk = self.cluster.datanodes[event.target].disk
        if event.target not in self._saved_bandwidth:
            self._saved_bandwidth[event.target] = disk.bandwidth
        disk.set_bandwidth(self._saved_bandwidth[event.target] * event.param)

    def _apply_slow_disk_end(self, event: FaultEvent):
        nominal = self._saved_bandwidth.pop(event.target, None)
        if nominal is None:
            return False
        self.cluster.datanodes[event.target].disk.set_bandwidth(nominal)

    def _apply_net_loss_start(self, event: FaultEvent) -> None:
        self._loss_prob = event.param
        self.cluster.network.fault_hook = self._network_fault
        master = self.cluster.ignem_master
        if master is not None:
            master.rpc_fault = self._rpc_fault

    def _apply_net_loss_end(self, event: FaultEvent) -> None:
        self._loss_prob = 0.0
        self.cluster.network.fault_hook = None
        master = self.cluster.ignem_master
        if master is not None:
            master.rpc_fault = None
        monitor = self.cluster.replication_monitor
        if monitor is not None:
            # Repairs that exhausted their retries inside the loss window
            # parked themselves; wake them now that messages flow again.
            monitor.retry_stalled()

    # -- fault hooks -------------------------------------------------------------------

    def _network_fault(self, src: str, dst: str, nbytes: float):
        if self.rng.uniform(0.0, 1.0) < self._loss_prob:
            return True, 0.0
        if self.rng.uniform(0.0, 1.0) < self._extra_delay_prob:
            return False, self.rng.uniform(0.005, 0.05)
        return False, 0.0

    def _rpc_fault(self, node: str) -> Optional[str]:
        if self.rng.uniform(0.0, 1.0) < self._loss_prob:
            return "lost"
        return None
