"""Run one DST scenario against the real system and judge it.

The harness is the glue between the three existing subsystems: it builds
a :class:`~repro.cluster.Cluster` from a :class:`Scenario`, arms the
PR 2 :class:`~repro.faults.injector.FaultInjector` with the scenario's
fault plan, hooks the differential checker onto the master's command
boundary, runs the workload to full drain with "ignem"-category tracing
live, and evaluates every oracle over the leftovers.

``apply_sabotage`` deliberately breaks a live cluster (flip the
do-not-harm flag, swap the queue policy, raise the real buffer cap) for
harness self-tests: a testing subsystem that cannot convict a planted
bug proves nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import Cluster, ClusterConfig
from ..core.config import IgnemConfig
from ..core.heat import HeatConfig
from ..core.policy import make_policy
from ..dfs.datanode import DataNodeError
from ..dfs.namenode import NameNodeError
from ..faults.injector import FaultInjector
from ..mapreduce.spec import EngineConfig, JobSpec
from ..net.network import NetworkError
from ..obs import ObservabilityConfig
from ..sim.events import join_all
from ..sim.rand import RandomSource, derive_seed
from ..storage.device import MB
from ..workloads.serve import ZipfSampler
from .model import DifferentialChecker
from .oracles import OracleContext, OracleReport, run_oracles
from .scenario import Scenario

#: Sabotage modes for harness self-tests (see ``apply_sabotage``).
SABOTAGE_MODES = (
    "evict-to-admit",
    "fifo-queue",
    "overcommit-buffer",
    "disable-repair",
)

#: SWIM-style IO movers: modest per-byte compute (matches swim_runs).
_MAP_CPU_FACTOR = 0.25
_REDUCE_CPU_FACTOR = 0.5


@dataclass
class ScenarioResult:
    """Everything one judged scenario run leaves behind."""

    scenario: Scenario
    #: (oracle name, message) for every violated expectation.
    violations: List[Tuple[str, str]]
    reports: List[OracleReport]
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_violations(self, limit: int = 10) -> str:
        lines = [
            f"  [{oracle}] {message}"
            for oracle, message in self.violations[:limit]
        ]
        hidden = len(self.violations) - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)


def build_cluster(scenario: Scenario) -> Tuple[Cluster, DifferentialChecker]:
    """Assemble the live system a scenario describes (not yet running)."""
    cluster = Cluster(
        ClusterConfig(
            num_nodes=scenario.num_nodes,
            slots_per_node=scenario.slots_per_node,
            block_size=scenario.block_size,
            replication=scenario.replication,
            seed=scenario.seed,
            tier_preset=scenario.tier_preset,
            engine=EngineConfig(output_replication=1),
            observability=ObservabilityConfig(
                enabled=True, categories=("ignem", "repair")
            ),
        )
    )
    cluster.enable_ignem(
        IgnemConfig(
            buffer_capacity=scenario.buffer_capacity,
            policy=scenario.policy,
            do_not_harm=scenario.do_not_harm,
            migration_concurrency=1,
            migration_tier=scenario.migration_tier,
        ),
        ha=scenario.ha,
    )
    cluster.enable_rereplication()

    checker = DifferentialChecker(scenario.policy, replicas_to_migrate=1)
    cluster.ignem_master.command_tap = checker.on_delivery
    cluster.ignem_master.failure_tap = checker.on_slave_failure

    for path, nbytes in sorted(scenario.input_files().items()):
        cluster.client.create_file(path, nbytes)
    if scenario.serve is not None:
        for index in range(scenario.serve.num_objects):
            cluster.client.create_file(
                _serve_object_path(index), scenario.serve.object_bytes
            )
        if scenario.serve.heat:
            cluster.enable_heat_migration(
                HeatConfig(
                    half_life=20.0,
                    tick_interval=2.0,
                    tenant_tick_bytes=scenario.serve.tenant_tick_bytes,
                )
            )
    return cluster, checker


def apply_sabotage(cluster: Cluster, mode: str) -> None:
    """Break the live cluster on purpose (harness self-test).

    * ``evict-to-admit`` — flip the shared (frozen) config's
      ``do_not_harm`` off, so full buffers evict migrated blocks of
      larger jobs to admit new ones: the III-A3 violation the oracles
      must convict from the scenario's declared guarantee.
    * ``fifo-queue`` — swap every slave's queue policy to FIFO while the
      scenario declares smallest-job-first: an ordering bug for the
      differential model.
    * ``overcommit-buffer`` — quadruple the *real* buffer cap behind the
      scenario's back: usage may exceed the declared cap.
    * ``disable-repair`` — turn the replication monitor off: a permanent
      node loss leaves blocks under-replicated forever, which the
      replication and fault-invariant oracles must convict.
    """
    if mode not in SABOTAGE_MODES:
        raise ValueError(
            f"unknown sabotage {mode!r}; choose from {SABOTAGE_MODES}"
        )
    config = next(iter(cluster.ignem_slaves.values())).config
    if mode == "evict-to-admit":
        object.__setattr__(config, "do_not_harm", False)
    elif mode == "fifo-queue":
        for slave in cluster.ignem_slaves.values():
            slave.policy = make_policy("fifo")
    elif mode == "disable-repair":
        cluster.replication_monitor.enabled = False
    else:  # overcommit-buffer
        object.__setattr__(
            config, "buffer_capacity", config.buffer_capacity * 4
        )


def scenario_specs(scenario: Scenario) -> Tuple[List[JobSpec], List[float]]:
    """Engine job specs + arrival times for a scenario's workload."""
    specs = []
    arrivals = []
    for job in scenario.jobs:
        num_reduces = max(
            1, min(16, int(job.shuffle_bytes // (128 * MB)) + 1)
        )
        specs.append(
            JobSpec(
                name=job.name,
                input_paths=(job.input_path,),
                shuffle_bytes=job.shuffle_bytes,
                output_bytes=job.output_bytes,
                num_reduces=num_reduces,
                map_cpu_factor=_MAP_CPU_FACTOR,
                reduce_cpu_factor=_REDUCE_CPU_FACTOR,
            )
        )
        arrivals.append(job.arrival)
    return specs, arrivals


def _serve_object_path(index: int) -> str:
    return f"/dst/serve/obj-{index:02d}"


def serve_requests(
    scenario: Scenario,
) -> List[Tuple[float, str, str, str]]:
    """Deterministic (arrival, path, tenant, reader) interactive stream.

    A pure function of the scenario (child seed ``dst-serve``), so
    replays and shrink candidates see the identical request trace.
    """
    serve = scenario.serve
    if serve is None:
        return []
    rng = RandomSource(derive_seed(scenario.seed, "dst-serve")).spawn(
        "serve"
    )
    zipf = ZipfSampler(serve.num_objects, serve.zipf_s)
    horizon = max(job.arrival for job in scenario.jobs) + 30.0
    mean_gap = horizon / serve.num_requests
    requests = []
    arrival = 0.0
    for _ in range(serve.num_requests):
        arrival += rng.expovariate(1.0 / mean_gap)
        path = _serve_object_path(zipf.sample(rng.uniform(0.0, 1.0)))
        tenant = f"tenant{rng.randint(0, serve.num_tenants - 1)}"
        reader = f"node{rng.randint(0, scenario.num_nodes - 1)}"
        requests.append((arrival, path, tenant, reader))
    return requests


def _serve_read(cluster, arrival, path, tenant, reader, stats):
    """One interactive request: read every block of ``path``.

    Faults may legitimately kill the read (no live replica, serving
    node down): availability is not under test here, migration safety
    is — failed reads are counted, not raised.
    """
    yield arrival
    try:
        metadata = cluster.namenode.get_file(path)
        reads = [
            cluster.client.read_block(
                block, reader, job_id="dst-serve", tenant=tenant
            )
            for block in metadata.blocks
        ]
        yield join_all(cluster.env, [read.done for read in reads])
    except (NameNodeError, DataNodeError, NetworkError):
        stats["serve_failed"] += 1
        return
    stats["serve_completed"] += 1


def _start_serve_traffic(
    cluster: Cluster, scenario: Scenario, stats: Dict[str, float]
) -> None:
    requests = serve_requests(scenario)
    stats["serve_requests"] = len(requests)
    stats["serve_completed"] = 0
    stats["serve_failed"] = 0
    arrivals = cluster.env.timeout_batch(
        [arrival for arrival, _path, _tenant, _reader in requests]
    )
    for index, (event, request) in enumerate(zip(arrivals, requests)):
        _arrival, path, tenant, reader = request
        cluster.env.process(
            _serve_read(cluster, event, path, tenant, reader, stats),
            name=f"dst-serve-{index:03d}",
        )


def _fault_timelines(
    injector: FaultInjector, cluster: Cluster, ha: bool
) -> Tuple[List[Tuple[float, str]], Dict[str, List[Tuple[float, float]]]]:
    """Derive queue-purge instants and server outage windows from the
    faults actually applied (crashes and kills purge one slave; a master
    failover with HA, or a cold master restart without, purges every
    slave; a completed decommission purges its node at release time and
    leaves it down for good)."""
    purges: List[Tuple[float, str]] = []
    down_windows: Dict[str, List[Tuple[float, float]]] = {}
    open_outage: Dict[str, float] = {}
    all_nodes = sorted(cluster.ignem_slaves)
    for when, event in injector.applied:
        if event.kind in ("crash", "kill"):
            purges.append((when, event.target))
            open_outage[event.target] = when
        elif event.kind == "restart":
            down_at = open_outage.pop(event.target, None)
            if down_at is not None:
                down_windows.setdefault(event.target, []).append(
                    (down_at, when)
                )
        elif event.kind == "master_fail" and ha:
            purges.extend((when, node) for node in all_nodes)
        elif event.kind == "master_recover" and not ha:
            purges.extend((when, node) for node in all_nodes)
    for when, node in cluster.decommission_log:
        purges.append((when, node))
        open_outage.setdefault(node, when)
    purges.sort()
    for node, down_at in open_outage.items():
        down_windows.setdefault(node, []).append((down_at, float("inf")))
    return purges, down_windows


def run_scenario(
    scenario: Scenario, sabotage: Optional[str] = None
) -> ScenarioResult:
    """Build, fault, run to full drain, and judge one scenario."""
    cluster, checker = build_cluster(scenario)
    if sabotage is not None:
        apply_sabotage(cluster, sabotage)

    injector = FaultInjector(cluster, scenario.fault_schedule())
    injector.start()

    stats: Dict[str, float] = {}
    if scenario.serve is not None:
        _start_serve_traffic(cluster, scenario, stats)

    specs, arrivals = scenario_specs(scenario)
    cluster.engine.run_workload(
        specs, arrivals, implicit_eviction=scenario.implicit_eviction
    )
    # Full drain (no `until`): every retry, re-replication copy, restart,
    # and straggling migration settles before judgment.
    cluster.run()

    # The heat policy holds promoted blocks for as long as they are hot;
    # retire it (evict everything it owns) and drain those evictions
    # before judging end-state invariants.
    if cluster.heat_migrator is not None:
        cluster.heat_migrator.shutdown()
        cluster.run()

    # Forced liveness sweep (III-A4), as the chaos runner does: settle
    # references the periodic sweeps have not reclaimed yet.
    for slave in cluster.ignem_slaves.values():
        if slave.alive:
            slave.cleanup_dead_jobs(force=True)

    trace_events = [
        json.loads(line) for line in cluster.obs.tracer.lines()
    ]
    lanes = {
        event["tid"]: event["args"]["name"]
        for event in trace_events
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    purges, down_windows = _fault_timelines(injector, cluster, scenario.ha)

    context = OracleContext(
        scenario=scenario,
        cluster=cluster,
        checker=checker,
        injector=injector,
        trace_events=trace_events,
        lanes=lanes,
        purges=purges,
        down_windows=down_windows,
    )
    reports = run_oracles(context)
    violations = [
        (report.name, message)
        for report in reports
        for message in report.violations
    ]

    jobs = cluster.engine.jobs
    registry = cluster.metrics
    if cluster.heat_migrator is not None:
        stats["heat_promotions"] = registry.counter(
            "heat.policy.promotions"
        ).value
        stats["heat_demotions"] = registry.counter(
            "heat.policy.demotions"
        ).value
        stats["heat_ticks"] = registry.counter("heat.policy.ticks").value
    stats.update({
        "jobs_total": len(jobs),
        "jobs_completed": sum(
            1 for job in jobs if job.finished_at is not None
        ),
        "jobs_failed": sum(1 for job in jobs if job.failed),
        "faults_applied": len(injector.applied),
        "command_retries": registry.counter(
            "ignem.master.command_retries"
        ).value,
        "commands_rerouted": registry.counter(
            "ignem.master.commands_rerouted"
        ).value,
        "commands_abandoned": registry.counter(
            "ignem.master.commands_abandoned"
        ).value,
        "migrations_completed": registry.counter(
            "ignem.slave.migrations_completed"
        ).value,
        "repair_copies": cluster.replication_monitor.copies_completed,
        "repair_excess_dropped": cluster.replication_monitor.excess_dropped,
        "decommissions_completed": len(cluster.decommission_log),
        "nodes_joined": sum(
            1 for _, event in injector.applied if event.kind == "join"
        ),
        "trace_events": len(trace_events),
        "sim_time": cluster.env.now,
    })
    return ScenarioResult(
        scenario=scenario,
        violations=violations,
        reports=reports,
        stats=stats,
    )
