"""Fuzz-sweep driver, shrinking loop, and corpus replay for DST.

``DstRunner.fuzz`` generates and judges scenarios until one fails (or
the budget runs out), then hands the failure to the shrinker and
serializes the minimal reproducer.  ``DstRunner.replay`` re-judges
saved corpus scenarios — the regression side of the subsystem.  Both
report harness health through a :class:`MetricsRegistry`
(``dst.scenarios.*`` and ``dst.oracle.<name>.pass/fail``) so
``--metrics-out`` snapshots cover the test harness itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..obs.registry import MetricsRegistry
from .harness import ScenarioResult, run_scenario
from .scenario import Scenario, ScenarioGenerator
from .shrinker import describe_shrink, shrink_scenario


@dataclass
class DstReport:
    """Outcome of a fuzz sweep or a corpus replay."""

    mode: str  # "fuzz" | "replay"
    seed: int
    scenarios_run: int = 0
    failures: List[ScenarioResult] = field(default_factory=list)
    #: Set when a fuzz failure was minimized.
    shrunk: Optional[Scenario] = None
    shrink_attempts: int = 0
    shrink_note: str = ""
    #: Where the minimal reproducer was written, if anywhere.
    artifact: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"dst {self.mode}: {self.scenarios_run} scenario(s), "
            f"{len(self.failures)} failing (seed={self.seed})"
        ]
        for result in self.failures:
            lines.append(f"- {result.scenario.describe()}")
            lines.append(result.format_violations())
        if self.shrunk is not None:
            lines.append(
                f"shrunk in {self.shrink_attempts} attempt(s): "
                f"{self.shrink_note}"
            )
            lines.append(f"minimal: {self.shrunk.describe()}")
        if self.artifact is not None:
            lines.append(f"reproducer written to {self.artifact}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


class DstRunner:
    """Deterministic simulation-testing driver.

    One runner instance owns one sweep: a seed, an optional sabotage
    mode (harness self-test), and a registry collecting
    ``dst.scenarios.run/failed`` and per-oracle pass/fail counters.
    """

    def __init__(
        self,
        seed: int = 0,
        sabotage: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        elasticity: bool = False,
        interactive: bool = False,
    ):
        self.seed = seed
        self.sabotage = sabotage
        self.registry = registry or MetricsRegistry()
        #: Generate kill/join/decommission faults in fuzzed scenarios.
        self.elasticity = elasticity
        #: Mix interactive serve traffic (+ heat policy) into fuzzed
        #: scenarios.
        self.interactive = interactive

    def _judge(self, scenario: Scenario) -> ScenarioResult:
        result = run_scenario(scenario, sabotage=self.sabotage)
        self.registry.counter("dst.scenarios.run").inc()
        if not result.ok:
            self.registry.counter("dst.scenarios.failed").inc()
        for report in result.reports:
            verdict = "pass" if report.ok else "fail"
            self.registry.counter(
                f"dst.oracle.{report.name}.{verdict}"
            ).inc()
        return result

    def fuzz(self, runs: int, shrink: bool = True) -> DstReport:
        """Judge up to ``runs`` generated scenarios; stop at the first
        failure, minimize it, and (optionally) serialize the result."""
        report = DstReport(mode="fuzz", seed=self.seed)
        generator = ScenarioGenerator(
            self.seed,
            elasticity=self.elasticity,
            interactive=self.interactive,
        )
        for index in range(runs):
            scenario = generator.generate(index)
            result = self._judge(scenario)
            report.scenarios_run += 1
            if result.ok:
                continue
            report.failures.append(result)
            if shrink:
                self._shrink_failure(report, result)
            break
        return report

    def _shrink_failure(
        self, report: DstReport, failure: ScenarioResult
    ) -> None:
        failing_oracles = {name for name, _ in failure.violations}

        def still_fails(candidate: Scenario) -> bool:
            result = self._judge(candidate)
            return any(
                name in failing_oracles for name, _ in result.violations
            )

        shrunk, attempts = shrink_scenario(failure.scenario, still_fails)
        report.shrunk = shrunk
        report.shrink_attempts = attempts
        report.shrink_note = describe_shrink(failure.scenario, shrunk)

    def write_artifact(self, report: DstReport, out_dir: Path) -> None:
        """Serialize the minimal (or original) failing scenario."""
        if not report.failures:
            return
        scenario = (
            report.shrunk
            if report.shrunk is not None
            else report.failures[0].scenario
        )
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"dst-failure-seed{self.seed}.json"
        scenario.save(path)
        report.artifact = path

    def replay(self, paths: Sequence[Path]) -> DstReport:
        """Re-judge saved corpus scenarios (regression replay)."""
        report = DstReport(mode="replay", seed=self.seed)
        for path in sorted(Path(p) for p in paths):
            scenario = Scenario.load(path)
            result = self._judge(scenario)
            report.scenarios_run += 1
            if not result.ok:
                report.failures.append(result)
        return report


def corpus_paths(corpus_dir: Path) -> List[Path]:
    """All saved scenarios under a corpus directory, sorted by name."""
    return sorted(Path(corpus_dir).glob("*.json"))
