"""End-of-run invariant oracles over a finished DST scenario.

Every oracle is a pure function ``(OracleContext) -> List[str]`` over
the run's artifacts: the live cluster, the PR 3 trace stream, the
differential checker's delivery log, and the fault injector's applied
schedule.  Crucially, oracles judge against the **scenario's declared
expectations** (``scenario.do_not_harm``, ``scenario.buffer_capacity``),
never against the live ``IgnemConfig`` — a sabotaged build that flips a
config flag at runtime must still be convicted by the spec it shipped
with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..faults.invariants import InvariantChecker, replication_violations
from .model import DifferentialChecker
from .scenario import Scenario

#: Float slack for byte sums built from fractional final blocks.
_BYTE_TOLERANCE = 1.0
#: Slack around fault instants when classifying trace events.
_TIME_EPS = 1e-5


@dataclass
class OracleContext:
    """Everything the oracles may look at after a run."""

    scenario: Scenario
    cluster: object
    checker: DifferentialChecker
    injector: object
    #: Parsed JSONL trace events, file order.
    trace_events: Sequence[dict]
    #: tid -> lane name for the trace events.
    lanes: Dict[int, str]
    #: (time, node) pairs at which the live slave's queue was purged.
    purges: Sequence[Tuple[float, str]]
    #: node -> [(down_at, up_at)] whole-server outage windows.
    down_windows: Dict[str, List[Tuple[float, float]]]


@dataclass(frozen=True)
class OracleReport:
    name: str
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def _migration_events(ctx: OracleContext):
    for event in ctx.trace_events:
        if event.get("name") == "ignem.migration":
            yield ctx.lanes.get(event.get("tid")), event


def _eviction_events(ctx: OracleContext):
    for event in ctx.trace_events:
        if event.get("name") == "ignem.eviction":
            yield ctx.lanes.get(event.get("tid")), event


def oracle_differential(ctx: OracleContext) -> List[str]:
    """Replay the reference model against the trace stream (III-A1)."""
    return list(
        ctx.checker.replay(ctx.trace_events, ctx.lanes, ctx.purges)
    )


def oracle_do_not_harm(ctx: OracleContext) -> List[str]:
    """III-A3: migrated data is never evicted to admit new blocks."""
    if not ctx.scenario.do_not_harm:
        return []
    violations = []
    for record in ctx.cluster.collector.evictions:
        if record.reason == "preempted":
            violations.append(
                f"{record.node}: block {record.block_id} "
                f"({record.nbytes:.0f}B) evicted to admit newer work at "
                f"t={record.time:.3f} despite the scenario's do-not-harm "
                f"guarantee"
            )
    for node, event in _eviction_events(ctx):
        if event["args"].get("reason") == "preempted":
            violations.append(
                f"{node}: trace shows a 'preempted' eviction of "
                f"{event['args']['block']} at t={event['ts'] / 1e6:.3f}"
            )
    return violations


def oracle_buffer_cap(ctx: OracleContext) -> List[str]:
    """III-B2: per-slave, per-tier migrated bytes never exceed the
    declared cap.

    Uses each slave's exact per-tier usage timelines against the
    *scenario's* capacity, so a build that silently raises the real cap
    is caught.  The scenario declares exactly one destination tier
    (``migration_tier``); migrated bytes accumulating in any other tier
    are a violation outright.
    """
    cap = ctx.scenario.buffer_capacity
    declared = ctx.scenario.migration_tier
    violations = []
    for name in sorted(ctx.cluster.ignem_slaves):
        slave = ctx.cluster.ignem_slaves[name]
        for tier in sorted(slave.tier_usage_timeline):
            timeline = slave.tier_usage_timeline[tier]
            peak_time, peak = max(timeline, key=lambda tb: tb[1])
            if tier != declared:
                if peak > _BYTE_TOLERANCE:
                    violations.append(
                        f"{name}: {peak:.0f} migrated bytes "
                        f"(t={peak_time:.3f}) in tier {tier!r}, which the "
                        f"scenario never declared as a destination"
                    )
            elif peak > cap + _BYTE_TOLERANCE:
                violations.append(
                    f"{name}: tier {tier!r} migrated bytes peaked at "
                    f"{peak:.0f} (t={peak_time:.3f}) above the scenario's "
                    f"buffer cap {cap:.0f}"
                )
    return violations


def oracle_end_state(ctx: OracleContext) -> List[str]:
    """After full drain + forced sweep, no references, bytes, or queued
    work may survive (III-A4 liveness; crash purges, III-A5)."""
    violations = []
    for name in sorted(ctx.cluster.ignem_slaves):
        slave = ctx.cluster.ignem_slaves[name]
        if not slave.alive:
            continue
        refs = slave.referenced_blocks()
        if refs:
            held = {job for jobs in refs.values() for job in jobs}
            violations.append(
                f"{name}: {len(refs)} block(s) still referenced by "
                f"{sorted(held)} after drain + forced sweep"
            )
        if slave.migrated_bytes > _BYTE_TOLERANCE:
            violations.append(
                f"{name}: {slave.migrated_bytes:.0f} migrated bytes "
                f"resident after every job finished"
            )
        if slave.pending_migrations:
            violations.append(
                f"{name}: {slave.pending_migrations} migration(s) still "
                f"queued after full drain (work conservation)"
            )
        for block_id in slave._migrated:
            if not slave.reference_list(block_id):
                violations.append(
                    f"{name}: block {block_id} resident with an empty "
                    f"reference list (evicted-then-still-held leak)"
                )
    return violations


def oracle_post_crash(ctx: OracleContext) -> List[str]:
    """III-A5: a crashed slave is silent and empty until its restart."""
    violations = []

    def in_outage(node: str, when: float) -> bool:
        for down_at, up_at in ctx.down_windows.get(node, ()):
            if down_at + _TIME_EPS < when < up_at - _TIME_EPS:
                return True
        return False

    for node, event in _migration_events(ctx):
        ts = event["ts"] / 1e6
        if node is not None and in_outage(node, ts):
            violations.append(
                f"{node}: ignem.migration "
                f"({event['args'].get('outcome')}) at t={ts:.3f} while "
                f"the server was down"
            )
    for node, event in _eviction_events(ctx):
        ts = event["ts"] / 1e6
        if node is not None and in_outage(node, ts):
            violations.append(
                f"{node}: eviction of {event['args']['block']} at "
                f"t={ts:.3f} while the server was down"
            )
    for item in ctx.checker.delivered:
        if in_outage(item.node, item.time):
            violations.append(
                f"{item.node}: migrate command for {item.job_id}/"
                f"{item.block_id} accepted at t={item.time:.3f} while "
                f"the server was down"
            )
    for when, node, job_id, _blocks in ctx.checker.evict_deliveries:
        if in_outage(node, when):
            violations.append(
                f"{node}: evict command for {job_id} accepted at "
                f"t={when:.3f} while the server was down"
            )
    return violations


def oracle_conservation(ctx: OracleContext) -> List[str]:
    """Bytes and events must balance across the three reporting paths:
    metrics records, the trace stream, and the registry counters."""
    violations = []
    cluster = ctx.cluster
    collector = cluster.collector
    registry = cluster.metrics

    # (a) per-node byte balance: completed - evicted == resident.
    completed_bytes: Dict[str, float] = {}
    evicted_bytes: Dict[str, float] = {}
    record_outcomes: Dict[str, int] = {}
    for record in collector.migrations:
        record_outcomes[record.outcome] = (
            record_outcomes.get(record.outcome, 0) + 1
        )
        if record.outcome == "completed":
            completed_bytes[record.node] = (
                completed_bytes.get(record.node, 0.0) + record.nbytes
            )
    for record in collector.evictions:
        evicted_bytes[record.node] = (
            evicted_bytes.get(record.node, 0.0) + record.nbytes
        )
    for name in sorted(cluster.ignem_slaves):
        slave = cluster.ignem_slaves[name]
        balance = completed_bytes.get(name, 0.0) - evicted_bytes.get(name, 0.0)
        if not math.isclose(
            balance, slave.migrated_bytes, abs_tol=_BYTE_TOLERANCE
        ):
            violations.append(
                f"{name}: migrated-evicted byte balance {balance:.0f} != "
                f"resident {slave.migrated_bytes:.0f}"
            )

    # (b) trace stream agrees with the metrics records.
    trace_outcomes: Dict[str, int] = {}
    for _node, event in _migration_events(ctx):
        outcome = event["args"]["outcome"]
        trace_outcomes[outcome] = trace_outcomes.get(outcome, 0) + 1
    if trace_outcomes != record_outcomes:
        violations.append(
            f"trace migration outcomes {trace_outcomes} != collector "
            f"records {record_outcomes}"
        )
    trace_evictions = sum(1 for _ in _eviction_events(ctx))
    if trace_evictions != len(collector.evictions):
        violations.append(
            f"{trace_evictions} eviction instants in the trace but "
            f"{len(collector.evictions)} eviction records"
        )

    # (c) registry counters agree with both.
    counter_map = {
        "completed": "ignem.slave.migrations_completed",
        "skipped": "ignem.slave.migrations_skipped",
        "cancelled": "ignem.slave.migrations_cancelled",
    }
    for outcome, metric in counter_map.items():
        count = registry.counter(metric).value
        if count != record_outcomes.get(outcome, 0):
            violations.append(
                f"counter {metric}={count} != "
                f"{record_outcomes.get(outcome, 0)} {outcome} records"
            )
    eviction_reasons: Dict[str, int] = {}
    for record in collector.evictions:
        eviction_reasons[record.reason] = (
            eviction_reasons.get(record.reason, 0) + 1
        )
    for reason, count in sorted(eviction_reasons.items()):
        metric = f"ignem.slave.evictions.{reason}"
        if registry.counter(metric).value != count:
            violations.append(
                f"counter {metric}={registry.counter(metric).value} != "
                f"{count} eviction records"
            )

    # (d) every completed job actually read its whole input.
    reads_by_job: Dict[str, set] = {}
    for record in collector.block_reads:
        reads_by_job.setdefault(record.job_id, set()).add(record.block_id)
    for job in cluster.engine.jobs:
        if job.finished_at is None or job.failed:
            continue
        seen = reads_by_job.get(job.job_id, set())
        for path in job.spec.input_paths:
            for block in cluster.namenode.file_blocks(path):
                if block.block_id not in seen:
                    violations.append(
                        f"{job.job_id}: completed without reading block "
                        f"{block.block_id} of {path}"
                    )
    return violations


def oracle_fault_invariants(ctx: OracleContext) -> List[str]:
    """The PR 2 :class:`InvariantChecker`, wholesale (byte accounting,
    reference-list liveness, memory-index equivalence, data loss)."""
    return InvariantChecker(ctx.cluster).check(ctx.injector)


def oracle_replication(ctx: OracleContext) -> List[str]:
    """Replication factor restored: after full drain, every surviving
    block holds ``min(replication, live_nodes)`` live replicas on
    distinct nodes — kills and decommissions must have been healed by
    re-replication, and restarts must have had their excess thinned
    without double-listing a holder."""
    return replication_violations(
        ctx.cluster.namenode, when=ctx.cluster.env.now
    )


def oracle_no_data_loss(ctx: OracleContext) -> List[str]:
    """Zero lost blocks: every block of a ``replication >= 2`` file
    retains at least one live replica at end of run, unless the run
    legitimately took down at least as many concurrent servers as the
    file's replication factor (then all copies may be gone at once and
    no repair could have sourced one)."""
    namenode = ctx.cluster.namenode
    max_down = getattr(ctx.injector, "max_concurrent_down", 0)
    violations = []
    for path in namenode.list_files():
        metadata = namenode.get_file(path)
        if metadata.replication < 2 or max_down >= metadata.replication:
            continue
        for block in metadata.blocks:
            if not namenode.get_block_locations(block.block_id):
                violations.append(
                    f"{block.block_id} ({path}): zero live replicas at "
                    f"end of run (replication={metadata.replication}, "
                    f"max {max_down} server(s) concurrently down)"
                )
    return violations


def oracle_tenant_fairness(ctx: OracleContext) -> List[str]:
    """The heat policy's per-tenant promotion cap holds on every tick.

    Judged against the *scenario's* declared ``tenant_tick_bytes`` (not
    the live config) from the migrator's fairness audit log: no tick may
    grant a single tenant more promotion bytes than the cap.
    """
    serve = ctx.scenario.serve
    migrator = getattr(ctx.cluster, "heat_migrator", None)
    if serve is None or not serve.heat or migrator is None:
        return []
    cap = serve.tenant_tick_bytes
    violations = []
    for entry in migrator.fairness_log:
        for tenant in sorted(entry["granted"]):
            granted = entry["granted"][tenant]
            if granted > cap + _BYTE_TOLERANCE:
                violations.append(
                    f"tick {entry['tick']} (t={entry['time']:.3f}): "
                    f"tenant {tenant!r} granted {granted:.0f} promotion "
                    f"bytes above the declared per-tick cap {cap:.0f}"
                )
    return violations


#: Registry: (name, fn) in evaluation order.
ALL_ORACLES = (
    ("differential", oracle_differential),
    ("do_not_harm", oracle_do_not_harm),
    ("buffer_cap", oracle_buffer_cap),
    ("end_state", oracle_end_state),
    ("post_crash", oracle_post_crash),
    ("conservation", oracle_conservation),
    ("fault_invariants", oracle_fault_invariants),
    ("replication", oracle_replication),
    ("no_data_loss", oracle_no_data_loss),
    ("tenant_fairness", oracle_tenant_fairness),
)


def run_oracles(ctx: OracleContext) -> List[OracleReport]:
    """Evaluate every oracle; returns one report per oracle."""
    return [
        OracleReport(name=name, violations=tuple(fn(ctx)))
        for name, fn in ALL_ORACLES
    ]
