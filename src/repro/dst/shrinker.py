"""Greedy deterministic minimization of failing DST scenarios.

Given a scenario and a predicate ("does this scenario still fail?"),
the shrinker repeatedly tries structurally smaller variants and keeps
any that still fail, until a fixed point: drop jobs (newest first),
drop fault events one at a time, shrink the cluster, and switch off
the HA pair.  Every transformation is a pure function of the frozen
:class:`Scenario`, and candidates are tried in a fixed order, so the
same failing input always shrinks to the byte-identical minimal
scenario — which is what makes the serialized corpus reviewable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Optional, Tuple

from .scenario import Scenario

#: Safety valve: predicate evaluations per shrink (each runs a full
#: simulation, so the budget matters more than minimality in the tail).
MAX_ATTEMPTS = 200


def _without_job(scenario: Scenario, index: int) -> Optional[Scenario]:
    if len(scenario.jobs) <= 1:
        return None
    jobs = scenario.jobs[:index] + scenario.jobs[index + 1 :]
    return dataclasses.replace(scenario, jobs=jobs)


def _without_fault(scenario: Scenario, index: int) -> Optional[Scenario]:
    if not scenario.faults:
        return None
    faults = scenario.faults[:index] + scenario.faults[index + 1 :]
    return dataclasses.replace(scenario, faults=faults)


def _with_fewer_nodes(scenario: Scenario) -> Optional[Scenario]:
    if scenario.num_nodes <= 2:
        return None
    num_nodes = scenario.num_nodes - 1
    # Node names are always node0..nodeN; faults aimed at the removed
    # tail node would be no-ops, so drop them with it.
    surviving = {f"node{i}" for i in range(num_nodes)}
    faults = tuple(
        event
        for event in scenario.faults
        if event.target is None or event.target in surviving
    )
    return dataclasses.replace(
        scenario,
        num_nodes=num_nodes,
        replication=min(scenario.replication, num_nodes),
        faults=faults,
    )


def _without_ha(scenario: Scenario) -> Optional[Scenario]:
    if not scenario.ha:
        return None
    return dataclasses.replace(scenario, ha=False)


def _without_serve(scenario: Scenario) -> Optional[Scenario]:
    if scenario.serve is None:
        return None
    return dataclasses.replace(scenario, serve=None)


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Structurally smaller variants, most-aggressive-first per axis."""
    # Interactive traffic first: it is a whole subsystem, so a failure
    # that survives without it shrinks fastest by dropping it whole.
    candidate = _without_serve(scenario)
    if candidate is not None:
        yield candidate
    # Jobs, newest first: late arrivals are most often incidental.
    for index in range(len(scenario.jobs) - 1, -1, -1):
        candidate = _without_job(scenario, index)
        if candidate is not None:
            yield candidate
    for index in range(len(scenario.faults) - 1, -1, -1):
        candidate = _without_fault(scenario, index)
        if candidate is not None:
            yield candidate
    candidate = _with_fewer_nodes(scenario)
    if candidate is not None:
        yield candidate
    candidate = _without_ha(scenario)
    if candidate is not None:
        yield candidate


def _size(scenario: Scenario) -> Tuple[int, int, int, int, int]:
    """Shrink-order metric; every candidate strictly reduces it."""
    return (
        int(scenario.serve is not None),
        len(scenario.jobs),
        len(scenario.faults),
        scenario.num_nodes,
        int(scenario.ha),
    )


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_attempts: int = MAX_ATTEMPTS,
) -> Tuple[Scenario, int]:
    """Minimize a failing scenario; returns (minimal scenario, attempts).

    ``still_fails`` must return True for the input scenario's failure
    mode (the caller decides what "same failure" means — typically "any
    oracle fires").  The returned scenario still satisfies it.
    """
    current = scenario
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            assert _size(candidate) < _size(current)
            attempts += 1
            try:
                failed = still_fails(candidate)
            except Exception:
                # A candidate that crashes the harness is a different
                # bug; keep shrinking the one we were asked about.
                failed = False
            if failed:
                current = candidate
                progress = True
                break  # restart candidate enumeration from the smaller scenario
    return current, attempts


def describe_shrink(original: Scenario, shrunk: Scenario) -> str:
    parts: List[str] = []
    for label, before, after in (
        ("jobs", len(original.jobs), len(shrunk.jobs)),
        ("faults", len(original.faults), len(shrunk.faults)),
        ("nodes", original.num_nodes, shrunk.num_nodes),
    ):
        if before != after:
            parts.append(f"{label} {before}->{after}")
    if original.serve is not None and shrunk.serve is None:
        parts.append("serve dropped")
    if original.ha and not shrunk.ha:
        parts.append("ha dropped")
    return ", ".join(parts) if parts else "already minimal"
