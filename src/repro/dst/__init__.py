"""Deterministic simulation testing (DST) for the Ignem reproduction.

Four pieces, layered:

* :mod:`~repro.dst.scenario` — seeded :class:`ScenarioGenerator`
  sampling cluster configs x workload mixes x fault schedules into
  self-describing, canonically-serializable :class:`Scenario` objects;
* :mod:`~repro.dst.model` — an executable reference model of the Ignem
  master/slave contract, checked differentially against the real system
  at every command boundary via the trace stream;
* :mod:`~repro.dst.oracles` — end-of-run invariant oracles (do-not-harm,
  buffer cap, end-state emptiness, post-crash silence, conservation);
* :mod:`~repro.dst.shrinker` / :mod:`~repro.dst.runner` — greedy
  deterministic minimization of failing scenarios and the fuzz/replay
  driver behind ``python -m repro dst``.
"""

from .harness import (
    SABOTAGE_MODES,
    ScenarioResult,
    apply_sabotage,
    build_cluster,
    run_scenario,
    serve_requests,
)
from .model import DifferentialChecker, reference_priority
from .oracles import ALL_ORACLES, OracleContext, OracleReport, run_oracles
from .runner import DstReport, DstRunner, corpus_paths
from .scenario import Scenario, ScenarioGenerator, ScenarioJob, ServeTraffic
from .shrinker import shrink_scenario

__all__ = [
    "ALL_ORACLES",
    "SABOTAGE_MODES",
    "DifferentialChecker",
    "DstReport",
    "DstRunner",
    "OracleContext",
    "OracleReport",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioJob",
    "ScenarioResult",
    "ServeTraffic",
    "apply_sabotage",
    "build_cluster",
    "corpus_paths",
    "reference_priority",
    "run_oracles",
    "run_scenario",
    "serve_requests",
    "shrink_scenario",
]
