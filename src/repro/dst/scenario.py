"""Self-describing DST scenarios and their seeded generator.

A :class:`Scenario` is the unit of deterministic simulation testing: one
plain-data description of a cluster shape, a workload mix, and a fault
plan.  Scenarios serialize to canonical JSON (sorted keys, exact float
reprs) so a shrunk failing scenario is byte-identical across machines
and replays forever from ``tests/dst/corpus/``.

The :class:`ScenarioGenerator` samples random scenarios from a seed:
cluster configs (node count, replication, buffer capacity, policy, HA)
× workload mixes (SWIM-shaped movers, wordcount scans over shared
datasets, sorts, Hive query fragments over shared tables) ×
:class:`~repro.faults.schedule.FaultSchedule` draws.  The same seed
always yields the same scenario — generation never touches a live
simulation.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults.schedule import FaultEvent, FaultSchedule
from ..sim.rand import RandomSource, derive_seed
from ..storage.device import GB, MB

#: Bump when the serialized scenario layout changes incompatibly.
FORMAT_VERSION = 1

#: Workload fragment kinds the generator samples from.
JOB_KINDS = ("swim", "wordcount", "sort", "hive")

#: Slack past the last job arrival that the fault window may cover.
FAULT_HORIZON_SLACK = 90.0


@dataclass(frozen=True)
class ScenarioJob:
    """One job of a scenario's workload mix.

    ``input_path`` may be shared between jobs (wordcount and Hive
    fragments scan common datasets/tables), which is exactly the regime
    where per-block reference lists and the one-replica rule get
    interesting.
    """

    name: str
    kind: str  # one of JOB_KINDS
    input_path: str
    input_bytes: float
    arrival: float
    shuffle_fraction: float = 0.2
    output_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.input_bytes <= 0:
            raise ValueError("input_bytes must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")

    @property
    def shuffle_bytes(self) -> float:
        return self.input_bytes * self.shuffle_fraction

    @property
    def output_bytes(self) -> float:
        return self.shuffle_bytes * self.output_fraction

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "input_path": self.input_path,
            "input_bytes": self.input_bytes,
            "arrival": self.arrival,
            "shuffle_fraction": self.shuffle_fraction,
            "output_fraction": self.output_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioJob":
        return cls(**data)


@dataclass(frozen=True)
class ServeTraffic:
    """Interactive read traffic mixed into a scenario's batch workload.

    A seeded Zipfian request stream over a small set of shared objects,
    optionally with the hint-free popularity-driven migrator enabled —
    the serving regime of :mod:`repro.workloads.serve`, scaled down to
    DST size.  ``tenant_tick_bytes`` is part of the *declared*
    expectation: the tenant-fairness oracle convicts any tick that
    grants one tenant more promotion bytes than this cap.
    """

    num_requests: int
    num_objects: int = 6
    object_bytes: float = 32 * MB
    num_tenants: int = 2
    zipf_s: float = 1.1
    heat: bool = True
    tenant_tick_bytes: float = 256 * MB

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if self.object_bytes <= 0:
            raise ValueError("object_bytes must be positive")
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.tenant_tick_bytes <= 0:
            raise ValueError("tenant_tick_bytes must be positive")

    def to_dict(self) -> Dict:
        return {
            "num_requests": self.num_requests,
            "num_objects": self.num_objects,
            "object_bytes": self.object_bytes,
            "num_tenants": self.num_tenants,
            "zipf_s": self.zipf_s,
            "heat": self.heat,
            "tenant_tick_bytes": self.tenant_tick_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ServeTraffic":
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One complete DST input: cluster × workload × faults."""

    seed: int
    num_nodes: int
    replication: int
    slots_per_node: int
    block_size: float
    buffer_capacity: float
    policy: str
    ha: bool
    implicit_eviction: bool
    jobs: Tuple[ScenarioJob, ...]
    faults: Tuple[FaultEvent, ...] = ()
    #: Expectation the oracles check against (the spec is ground truth;
    #: the system under test may be sabotaged to disagree).
    do_not_harm: bool = True
    #: Storage-hierarchy preset (``repro.storage.TIER_PRESETS`` name);
    #: ``None`` keeps the classic 2-tier hdd+mem stack.  Serialized only
    #: when set, so pre-tier corpus files stay byte-canonical.
    tier_preset: Optional[str] = None
    #: Destination tier migrations land in (and the tier the declared
    #: ``buffer_capacity`` caps).  Serialized only when not ``"mem"``.
    migration_tier: str = "mem"
    #: Interactive read traffic alongside the batch jobs; ``None`` keeps
    #: the classic batch-only run.  Serialized only when set, so the
    #: pre-serving corpus stays byte-canonical.
    serve: Optional[ServeTraffic] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 1 <= self.replication <= self.num_nodes:
            raise ValueError("replication must be in [1, num_nodes]")
        if not self.jobs:
            raise ValueError("a scenario needs at least one job")
        if not self.migration_tier:
            raise ValueError("migration_tier must be non-empty")
        object.__setattr__(
            self,
            "faults",
            tuple(
                sorted(
                    self.faults, key=lambda e: (e.time, e.kind, e.target or "")
                )
            ),
        )

    # -- derived views ------------------------------------------------------------

    @property
    def horizon(self) -> float:
        return max(job.arrival for job in self.jobs) + FAULT_HORIZON_SLACK

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule(self.faults, seed=self.seed)

    def input_files(self) -> Dict[str, float]:
        """path -> size of every (deduplicated) input file.

        Shared paths keep the *largest* declared size so every job's scan
        is satisfiable.
        """
        files: Dict[str, float] = {}
        for job in self.jobs:
            size = files.get(job.input_path, 0.0)
            files[job.input_path] = max(size, job.input_bytes)
        return files

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for job in self.jobs:
            kinds[job.kind] = kinds.get(job.kind, 0) + 1
        mix = "+".join(f"{n}{k}" for k, n in sorted(kinds.items()))
        text = (
            f"seed={self.seed} nodes={self.num_nodes} rep={self.replication} "
            f"buf={self.buffer_capacity / MB:.0f}MB policy={self.policy} "
            f"ha={self.ha} jobs=[{mix}] faults={len(self.faults)}"
        )
        if self.tier_preset is not None:
            text += f" tiers={self.tier_preset}"
        if self.migration_tier != "mem":
            text += f" dst={self.migration_tier}"
        if self.serve is not None:
            text += (
                f" serve={self.serve.num_requests}req/"
                f"{self.serve.num_objects}obj"
            )
            if self.serve.heat:
                text += "+heat"
        return text

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> Dict:
        data = {
            "format_version": FORMAT_VERSION,
            "seed": self.seed,
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "slots_per_node": self.slots_per_node,
            "block_size": self.block_size,
            "buffer_capacity": self.buffer_capacity,
            "policy": self.policy,
            "ha": self.ha,
            "implicit_eviction": self.implicit_eviction,
            "do_not_harm": self.do_not_harm,
            "jobs": [job.to_dict() for job in self.jobs],
            "faults": [
                {
                    "time": event.time,
                    "kind": event.kind,
                    "target": event.target,
                    "param": event.param,
                }
                for event in self.faults
            ],
        }
        # Tier fields serialize only when non-default: the 2-tier
        # corpus written before the tier axis existed must re-serialize
        # byte-identically (the corpus canonical-form test).
        if self.tier_preset is not None:
            data["tier_preset"] = self.tier_preset
        if self.migration_tier != "mem":
            data["migration_tier"] = self.migration_tier
        if self.serve is not None:
            data["serve"] = self.serve.to_dict()
        return data

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, exact float reprs, one trailing
        newline — byte-identical for equal scenarios."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        version = data.get("format_version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValueError(
                f"scenario format_version {version} not supported "
                f"(this build reads {FORMAT_VERSION})"
            )
        return cls(
            seed=data["seed"],
            num_nodes=data["num_nodes"],
            replication=data["replication"],
            slots_per_node=data["slots_per_node"],
            block_size=data["block_size"],
            buffer_capacity=data["buffer_capacity"],
            policy=data["policy"],
            ha=data["ha"],
            implicit_eviction=data["implicit_eviction"],
            do_not_harm=data.get("do_not_harm", True),
            tier_preset=data.get("tier_preset"),
            migration_tier=data.get("migration_tier", "mem"),
            serve=(
                ServeTraffic.from_dict(data["serve"])
                if "serve" in data
                else None
            ),
            jobs=tuple(ScenarioJob.from_dict(job) for job in data["jobs"]),
            faults=tuple(
                FaultEvent(
                    time=event["time"],
                    kind=event["kind"],
                    target=event["target"],
                    param=event["param"],
                )
                for event in data["faults"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> pathlib.Path:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path) -> "Scenario":
        return cls.from_json(pathlib.Path(path).read_text())


class ScenarioGenerator:
    """Samples random scenarios deterministically from a seed.

    Every draw comes from a child stream of the generator's seed, so
    scenario ``i`` is a pure function of ``(seed, i)`` — adding runs
    never perturbs earlier scenarios.
    """

    def __init__(
        self,
        seed: int = 0,
        elasticity: bool = False,
        interactive: bool = False,
    ):
        self.seed = int(seed)
        #: Draw kill/join/decommission events into fault plans.  Off by
        #: default: elasticity draws append to (never reorder) the
        #: classic stream, so old corpus scenarios stay byte-identical.
        self.elasticity = bool(elasticity)
        #: Mix interactive serve traffic (and usually the heat migrator)
        #: into generated scenarios.  Off by default for the same
        #: reason: serve draws come strictly after every classic draw.
        self.interactive = bool(interactive)

    def generate(self, index: int = 0) -> Scenario:
        scenario_seed = derive_seed(self.seed, f"dst-scenario-{index}")
        rng = RandomSource(scenario_seed).spawn("dst")

        num_nodes = rng.randint(2, 6)
        replication = rng.randint(1, min(3, num_nodes))
        slots_per_node = rng.randint(2, 4)
        block_size = rng.choice([32 * MB, 64 * MB, 128 * MB])
        # Log-uniform small buffers: pressure (do-not-harm stalls,
        # cleanup sweeps) should be the common case, not the rare one.
        buffer_capacity = math.exp(
            rng.uniform(math.log(128 * MB), math.log(4 * GB))
        )
        policy = "smallest-job-first" if rng.uniform(0, 1) < 0.75 else "fifo"
        ha = rng.uniform(0, 1) < 0.5
        implicit_eviction = rng.uniform(0, 1) < 0.5

        jobs = self._sample_jobs(rng)
        faults = self._sample_faults(rng, scenario_seed, num_nodes, jobs)
        serve = self._sample_serve(rng) if self.interactive else None

        return Scenario(
            seed=scenario_seed,
            num_nodes=num_nodes,
            replication=replication,
            slots_per_node=slots_per_node,
            block_size=block_size,
            buffer_capacity=buffer_capacity,
            policy=policy,
            ha=ha,
            implicit_eviction=implicit_eviction,
            jobs=tuple(jobs),
            faults=faults,
            serve=serve,
        )

    # -- workload mix -------------------------------------------------------------

    def _sample_serve(self, rng: RandomSource) -> Optional[ServeTraffic]:
        """Interactive traffic draws, strictly after every classic draw
        (so ``interactive=False`` reproduces the classic scenarios)."""
        if rng.uniform(0, 1) < 0.3:
            return None  # batch-only runs stay in the mix
        return ServeTraffic(
            num_requests=rng.randint(15, 60),
            num_objects=rng.randint(3, 10),
            object_bytes=rng.choice([16 * MB, 32 * MB, 64 * MB]),
            num_tenants=rng.randint(1, 3),
            zipf_s=rng.uniform(0.8, 1.5),
            heat=rng.uniform(0, 1) < 0.75,
            tenant_tick_bytes=self._log_uniform(rng, 64 * MB, 512 * MB),
        )

    def _sample_jobs(self, rng: RandomSource) -> List[ScenarioJob]:
        num_jobs = rng.randint(2, 8)
        # Shared datasets: wordcount and Hive fragments scan these, so
        # several jobs hold references on the same blocks concurrently.
        num_tables = rng.randint(1, 2)
        table_sizes = {
            f"/dst/table-{k}": self._log_uniform(rng, 64 * MB, 1 * GB)
            for k in range(num_tables)
        }

        jobs: List[ScenarioJob] = []
        arrival = 0.0
        for index in range(num_jobs):
            arrival += rng.expovariate(1.0 / rng.uniform(4.0, 15.0))
            kind = rng.choice(list(JOB_KINDS))
            name = f"dst-{index:02d}-{kind}"
            if kind == "swim":
                jobs.append(
                    ScenarioJob(
                        name=name,
                        kind=kind,
                        input_path=f"/dst/input-{index:02d}",
                        input_bytes=self._log_uniform(rng, 4 * MB, 2 * GB),
                        arrival=arrival,
                        shuffle_fraction=rng.uniform(0.05, 0.5),
                        output_fraction=rng.uniform(0.1, 0.5),
                    )
                )
            elif kind == "sort":
                # Sort moves its whole input through shuffle and out.
                jobs.append(
                    ScenarioJob(
                        name=name,
                        kind=kind,
                        input_path=f"/dst/input-{index:02d}",
                        input_bytes=self._log_uniform(rng, 16 * MB, 1 * GB),
                        arrival=arrival,
                        shuffle_fraction=1.0,
                        output_fraction=1.0,
                    )
                )
            elif kind == "wordcount":
                path = rng.choice(sorted(table_sizes))
                jobs.append(
                    ScenarioJob(
                        name=name,
                        kind=kind,
                        input_path=path,
                        input_bytes=table_sizes[path],
                        arrival=arrival,
                        shuffle_fraction=0.05,
                        output_fraction=0.2,
                    )
                )
            else:  # hive: a short fragment chain over one shared table
                path = rng.choice(sorted(table_sizes))
                stages = rng.randint(1, 2)
                for stage in range(stages):
                    jobs.append(
                        ScenarioJob(
                            name=f"{name}-s{stage}",
                            kind=kind,
                            input_path=path,
                            input_bytes=table_sizes[path],
                            arrival=arrival + stage * rng.uniform(2.0, 6.0),
                            shuffle_fraction=rng.uniform(0.02, 0.15),
                            output_fraction=rng.uniform(0.05, 0.3),
                        )
                    )
        return jobs

    # -- faults -------------------------------------------------------------------

    def _sample_faults(
        self,
        rng: RandomSource,
        scenario_seed: int,
        num_nodes: int,
        jobs: List[ScenarioJob],
    ) -> Tuple[FaultEvent, ...]:
        if rng.uniform(0, 1) < 0.25:
            return ()  # clean runs stay in the mix
        horizon = max(job.arrival for job in jobs) + FAULT_HORIZON_SLACK
        node_names = [f"node{i}" for i in range(num_nodes)]
        schedule = FaultSchedule.random(
            derive_seed(scenario_seed, "dst-faults"),
            node_names,
            horizon,
            max_node_crashes=max(0, min(2, num_nodes - 1)),
            elasticity=self.elasticity,
        )
        return schedule.events

    @staticmethod
    def _log_uniform(rng: RandomSource, low: float, high: float) -> float:
        return math.exp(rng.uniform(math.log(low), math.log(high)))
