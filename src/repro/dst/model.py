"""Executable reference model of the Ignem master/slave contract.

The :class:`DifferentialChecker` is a pure-python re-statement of the
paper's migration rules (III-A1 through III-A4), checked against the
real implementation from the outside:

* **online**, at every command boundary: the master's ``command_tap``
  fires after each *accepted* delivery, where the checker verifies the
  slave's synchronous state change (reference-list update on migrate,
  reference drop on evict) and the one-replica-per-block rule, and logs
  the delivery for the post-run replay;
* **post-run**, over the PR 3 trace stream: a reference slave per node
  replays the logged deliveries against the observed
  ``ignem.migration`` / ``ignem.eviction`` events, simulating the exact
  worker loop — pop the minimum-priority item, silently drop it if its
  block is already resident, otherwise demand a matching trace event —
  which checks migration *order* (smallest-job-first with
  submission-time tie-break), non-preemption (one worker, one busy
  window at a time), work-conservation (a queued item never rots
  unserved), and queue-wait accounting.

The model deliberately re-implements the priority spec instead of
importing :mod:`repro.core.policy`: a regression in the product policy
must *disagree* with this file to be caught.

The command boundary the tap observes is now a transport boundary:
master→slave commands travel as :class:`~repro.transport.messages`
``MigrateMsg``/``EvictMsg`` over the cluster's
:class:`~repro.transport.sim.SimTransport`, which delivers the
*original* command objects synchronously.  The tap therefore still sees
exactly the objects the slaves queue — identity, ``seq`` tie-breaks,
and delivery order are all unchanged by the message-passing refactor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Times are reconstructed from trace microseconds and rounded
#: queue-waits; everything inside one simulated instant lands within
#: this window.
_TIME_EPS = 1e-5
#: Sort-key quantum: distinct simulated instants differ by at least an
#: RPC latency (2ms), far above the float noise this absorbs.
_QUANT = 7


def reference_priority(
    policy: str,
    job_input_bytes: float,
    job_submitted_at: float,
    order_hint: int,
) -> Tuple:
    """The paper's queue-ordering spec, restated (lower migrates first).

    III-A1: smallest job first, ties by submission time, within a job
    tail-first (the product's default ``reverse_within_job``).  The FIFO
    ablation orders purely by submission time.
    """
    if policy == "smallest-job-first":
        return (job_input_bytes, job_submitted_at, -order_hint)
    if policy == "fifo":
        return (job_submitted_at, -order_hint)
    raise ValueError(f"reference model does not cover policy {policy!r}")


@dataclass(frozen=True)
class DeliveredItem:
    """One migration work item as accepted by a slave."""

    time: float
    node: str
    job_id: str
    block_id: str
    nbytes: float
    priority: Tuple
    seq: int
    #: Destination tier: each (node, tier) pair has its own ordered
    #: queue and worker set, so the replay partitions on both.
    tier: str = "mem"


@dataclass(frozen=True)
class PopEvent:
    """One observed dequeue: an ``ignem.migration`` trace event."""

    node: str
    job_id: str
    block_id: str
    outcome: str
    queue_wait: float
    #: When the slave's handling of this item ended (span end for
    #: completed migrations, the instant itself otherwise) — the moment
    #: the worker becomes free again.
    t_end: float
    #: Span start (completed only): when bytes began moving.
    t_start: Optional[float] = None


class DifferentialChecker:
    """Differential harness: online command-boundary checks + replay."""

    def __init__(self, policy: str, replicas_to_migrate: int = 1):
        self.policy = policy
        self.replicas_to_migrate = replicas_to_migrate
        self.violations: List[str] = []
        #: Accepted migrate work, in delivery order.
        self.delivered: List[DeliveredItem] = []
        #: Accepted evict deliveries: (time, node, job, blocks).
        self.evict_deliveries: List[Tuple[float, str, str, Tuple[str, ...]]] = []
        self._targets: Dict[Tuple[str, str], Set[str]] = {}

    # -- online: the command boundary ------------------------------------------

    def on_delivery(self, node: str, kind: str, command, slave) -> None:
        """Master ``command_tap``: fired after every accepted delivery."""
        now = slave.env.now
        if kind == "migrate":
            for item in command.items:
                refs = slave.reference_list(item.block_id)
                if item.job_id not in refs:
                    self.violations.append(
                        f"[boundary] {node}: migrate({item.job_id}/"
                        f"{item.block_id}) accepted but the reference "
                        f"list {sorted(refs)} does not hold the job"
                    )
                targets = self._targets.setdefault(
                    (item.job_id, item.block_id), set()
                )
                targets.add(node)
                if len(targets) > self.replicas_to_migrate:
                    self.violations.append(
                        f"[one-replica] {item.job_id}/{item.block_id} "
                        f"accepted on {sorted(targets)} but only "
                        f"{self.replicas_to_migrate} replica(s) may migrate"
                    )
                self.delivered.append(
                    DeliveredItem(
                        time=now,
                        node=node,
                        job_id=item.job_id,
                        block_id=item.block_id,
                        nbytes=item.block.nbytes,
                        priority=reference_priority(
                            self.policy,
                            item.job_input_bytes,
                            item.job_submitted_at,
                            item.order_hint,
                        ),
                        seq=item.seq,
                        tier=item.dst_tier,
                    )
                )
        else:
            for block_id in command.block_ids:
                refs = slave.reference_list(block_id)
                if command.job_id in refs:
                    self.violations.append(
                        f"[boundary] {node}: evict({command.job_id}/"
                        f"{block_id}) accepted but the job still holds a "
                        f"reference"
                    )
                # The one-replica rule bounds *live* migrated replicas:
                # an accepted evict releases the target, so a later
                # re-migration (the heat policy demotes and re-promotes
                # the same block as popularity swings) may pick a
                # different node without tripping the bound.
                self._targets.get(
                    (command.job_id, block_id), set()
                ).discard(node)
            self.evict_deliveries.append(
                (now, node, command.job_id, tuple(command.block_ids))
            )

    def on_slave_failure(self, node: str) -> None:
        """Master ``failure_tap``: the slave's migrated replicas and
        queue died with its process (or were purged to match a cold
        master restart), so the node stops counting toward the
        one-replica bound — crash-safe migration-queue abandonment means
        the next migrate for the same block may pick a fresh replica."""
        for targets in self._targets.values():
            targets.discard(node)

    # -- post-run: trace replay ---------------------------------------------------

    def replay(
        self,
        trace_events: Sequence[dict],
        lanes: Dict[int, str],
        purges: Sequence[Tuple[float, str]],
    ) -> List[str]:
        """Replay the run per node; returns (and records) violations.

        ``trace_events`` is the parsed JSONL trace in file order (which,
        per node, is dequeue order: same-instant events keep execution
        order, and a span's start always follows the previous pop's end
        on a one-worker slave).  ``purges`` are the (time, node) pairs at
        which the live slave dropped its whole queue (crash, or a master
        restart/failover purge).
        """
        # Each (node, destination-tier) pair runs its own queue + worker
        # set, so the replay partitions on both; trace events without a
        # tier arg (pre-tier traces) land in the default "mem" partition.
        pops: Dict[Tuple[str, str], List[PopEvent]] = {}
        evictions: Dict[Tuple[str, str], List[Tuple[float, str]]] = {}

        for event in trace_events:
            name = event.get("name")
            node = lanes.get(event.get("tid"))
            if node is None:
                continue
            if name == "ignem.migration":
                args = event["args"]
                key = (node, args.get("tier", "mem"))
                ts = event["ts"] / 1e6
                if event.get("ph") == "X":
                    pops.setdefault(key, []).append(
                        PopEvent(
                            node=node,
                            job_id=args["job"],
                            block_id=args["block"],
                            outcome=args["outcome"],
                            queue_wait=args["queue_wait"],
                            t_end=ts + event.get("dur", 0.0) / 1e6,
                            t_start=ts,
                        )
                    )
                else:
                    pops.setdefault(key, []).append(
                        PopEvent(
                            node=node,
                            job_id=args["job"],
                            block_id=args["block"],
                            outcome=args["outcome"],
                            queue_wait=args["queue_wait"],
                            t_end=ts,
                        )
                    )
            elif name == "ignem.eviction" and event.get("ph") == "i":
                key = (node, event["args"].get("tier", "mem"))
                evictions.setdefault(key, []).append(
                    (event["ts"] / 1e6, event["args"]["block"])
                )

        deliveries: Dict[Tuple[str, str], List[DeliveredItem]] = {}
        for item in self.delivered:
            deliveries.setdefault((item.node, item.tier), []).append(item)
        # Purges are whole-node events (crash, master restart): they
        # drop every tier queue of the node at once.
        purge_map: Dict[str, List[float]] = {}
        for when, node in purges:
            purge_map.setdefault(node, []).append(when)

        keys = set(deliveries) | {k for k in pops if pops[k]}
        keys |= {
            (node, tier)
            for node in purge_map
            for (n, tier) in set(deliveries) | set(pops)
            if n == node
        }
        for node, tier in sorted(keys):
            label = node if tier == "mem" else f"{node}[{tier}]"
            self._replay_node(
                label,
                deliveries.get((node, tier), []),
                pops.get((node, tier), []),
                evictions.get((node, tier), []),
                purge_map.get(node, []),
            )
        return self.violations

    # -- the per-node worker simulation --------------------------------------------

    def _replay_node(
        self,
        node: str,
        delivered: List[DeliveredItem],
        pops: List[PopEvent],
        evictions: List[Tuple[float, str]],
        purges: List[float],
    ) -> None:
        # Event ranks at one instant mirror the live slave's intra-instant
        # order: completions land their block (0) and new work arrives (1)
        # before the queue is purged (2); the worker frees up (3) and
        # drains before evictions (4) retire residency — the generous
        # order for the resident-at-pop check, with `last_evicted` as the
        # epsilon fallback for same-instant races.
        events: List[Tuple[float, int, int, str, object]] = []
        idx = 0
        batch: List[DeliveredItem] = []
        for item in delivered:
            if batch and round(item.time, _QUANT) != round(
                batch[0].time, _QUANT
            ):
                events.append(
                    (round(batch[0].time, _QUANT), 1, idx, "deliver", batch)
                )
                idx += 1
                batch = []
            batch.append(item)
        if batch:
            events.append(
                (round(batch[0].time, _QUANT), 1, idx, "deliver", batch)
            )
            idx += 1
        for when in purges:
            events.append((round(when, _QUANT), 2, idx, "purge", when))
            idx += 1
        for when, block_id in evictions:
            events.append((round(when, _QUANT), 4, idx, "evict", (when, block_id)))
            idx += 1
        for pop_i, pop in enumerate(pops):
            if pop.outcome == "completed":
                events.append(
                    (round(pop.t_end, _QUANT), 0, idx, "add", (pop_i, pop))
                )
                idx += 1
        heap = events
        heapq.heapify(heap)
        counter = [idx]

        pending: List[Tuple] = []  # (priority, seq, DeliveredItem)
        #: block -> index of the completed pop that landed it.  A block
        #: only counts as resident for the silent-drop rule once its own
        #: pop has been matched (guards against zero-duration spans whose
        #: resident-add lands at the same instant as the pop itself).
        resident: Dict[str, int] = {}
        last_evicted: Dict[str, float] = {}
        pop_index = 0
        busy = False
        flagged_conservation = False

        def droppable(block_id: str, now: float) -> bool:
            added_by = resident.get(block_id)
            if added_by is not None and added_by < pop_index:
                return True
            evicted_at = last_evicted.get(block_id)
            return evicted_at is not None and abs(now - evicted_at) <= _TIME_EPS

        def visibly_skipped(entry: DeliveredItem) -> bool:
            """True when the next observed pop is ``entry`` marked skipped.

            The live slave checks the reference list before the
            already-migrated set: a pop whose refs are gone records a
            visible "skipped" outcome even for a resident block, while a
            still-referenced resident block is swallowed silently.  The
            model cannot see reference counts, so a resident head is only
            dropped silently when the slave did not visibly skip it.
            """
            if pop_index >= len(pops):
                return False
            observed = pops[pop_index]
            return observed.outcome == "skipped" and (
                observed.job_id,
                observed.block_id,
            ) == (entry.job_id, entry.block_id)

        def occupy(observed: PopEvent) -> None:
            nonlocal busy
            busy = True
            counter[0] += 1
            heapq.heappush(
                heap,
                (round(observed.t_end, _QUANT), 3, counter[0], "free", observed),
            )

        def serve(entry: DeliveredItem, now: float) -> bool:
            """Match one model dequeue against the next observed pop.

            Returns True when ``entry`` itself was consumed; False on an
            order violation (the worker is then modeled as busy with the
            item the slave *actually* handled, so one product bug yields
            one violation, not a cascade).
            """
            nonlocal pop_index, flagged_conservation
            if pop_index >= len(pops):
                if not flagged_conservation:
                    self.violations.append(
                        f"[work-conservation] {node}: "
                        f"{entry.job_id}/{entry.block_id} stayed queued "
                        f"with an idle worker and was never handled"
                    )
                    flagged_conservation = True
                return True
            observed = pops[pop_index]
            pop_index += 1
            if (observed.job_id, observed.block_id) != (
                entry.job_id,
                entry.block_id,
            ):
                self.violations.append(
                    f"[order] {node}: reference model expects "
                    f"{entry.job_id}/{entry.block_id} "
                    f"(priority {entry.priority}) to migrate next, but "
                    f"the slave handled {observed.job_id}/"
                    f"{observed.block_id} ({observed.outcome})"
                )
                for i, (_, _, queued) in enumerate(pending):
                    if (queued.job_id, queued.block_id) == (
                        observed.job_id,
                        observed.block_id,
                    ):
                        pending[i] = pending[-1]
                        pending.pop()
                        heapq.heapify(pending)
                        break
                occupy(observed)
                return False
            expected_wait = now - entry.time
            if abs(expected_wait - observed.queue_wait) > 1e-3:
                self.violations.append(
                    f"[queue-wait] {node}: {entry.job_id}/"
                    f"{entry.block_id} reported queue_wait="
                    f"{observed.queue_wait:.6f} but the model dequeues "
                    f"it after {expected_wait:.6f}s"
                )
            occupy(observed)
            return True

        def drain(now: float) -> None:
            while pending and not busy:
                _, _, head = pending[0]
                if droppable(head.block_id, now) and not visibly_skipped(head):
                    heapq.heappop(pending)  # silent drop, zero sim time
                    continue
                if serve(head, now):
                    heapq.heappop(pending)

        now = 0.0
        while heap:
            q, rank, _, kind, payload = heapq.heappop(heap)
            if kind == "deliver":
                items = payload
                now = items[0].time
                start = 0
                if not busy and not pending:
                    # The live queue was empty with the worker parked on
                    # a pending get(): Store.put_nowait hands the batch's
                    # FIRST item (command order) straight to the getter,
                    # bypassing the priority order.  Only after that item
                    # resolves does the worker see the rest, sorted.
                    first = items[0]
                    start = 1
                    if droppable(first.block_id, now) and not visibly_skipped(
                        first
                    ):
                        pass  # silent zero-time drop, as in drain()
                    elif not serve(first, now):
                        heapq.heappush(
                            pending, (first.priority, first.seq, first)
                        )
                for item in items[start:]:
                    heapq.heappush(
                        pending, (item.priority, item.seq, item)
                    )
            elif kind == "purge":
                now = payload
                pending.clear()
            elif kind == "evict":
                when, block_id = payload
                now = when
                resident.pop(block_id, None)
                last_evicted[block_id] = when
            elif kind == "add":
                pop_i, pop = payload
                now = pop.t_end
                if pop.block_id in resident:
                    self.violations.append(
                        f"[double-migration] {node}: {pop.block_id} "
                        f"completed a migration while already resident"
                    )
                resident[pop.block_id] = pop_i
            elif kind == "free":
                now = payload.t_end
                busy = False
            # Defer the drain while more same-instant arrivals or purges
            # are queued: the live worker sees the full instant's
            # insertions (and a crash's purge) before its next pop
            # resolves.
            if heap and heap[0][0] == q and heap[0][1] <= 2:
                continue
            if not busy:
                drain(now)

        while pop_index < len(pops):
            observed = pops[pop_index]
            pop_index += 1
            self.violations.append(
                f"[phantom-pop] {node}: slave handled {observed.job_id}/"
                f"{observed.block_id} ({observed.outcome}) but the "
                f"reference model has no such item queued"
            )
