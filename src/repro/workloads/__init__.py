"""Workload generators: SWIM trace, sort, wordcount, and the synthetic
Google cluster trace used by the Section II feasibility analyses."""

from .google_trace import GoogleTraceGenerator, GoogleTraceJob, TaskUsageInterval
from .scale import (
    ScaleConfig,
    ScaleResult,
    build_scale_cluster,
    format_scale_result,
    run_scale_replay,
)
from .sort import SORT_INPUT_BYTES, SORT_INPUT_PATH, make_sort_spec
from .swim import SwimGenerator, SwimJob, size_bin, to_specs
from .trace_io import (
    load_google_jobs,
    load_swim_trace,
    save_google_jobs,
    save_swim_trace,
)
from .wordcount import DEFAULT_SIZES_GB, make_wordcount_spec, wordcount_path

__all__ = [
    "DEFAULT_SIZES_GB",
    "GoogleTraceGenerator",
    "GoogleTraceJob",
    "SORT_INPUT_BYTES",
    "SORT_INPUT_PATH",
    "ScaleConfig",
    "ScaleResult",
    "SwimGenerator",
    "SwimJob",
    "TaskUsageInterval",
    "build_scale_cluster",
    "format_scale_result",
    "load_google_jobs",
    "load_swim_trace",
    "make_sort_spec",
    "make_wordcount_spec",
    "run_scale_replay",
    "save_google_jobs",
    "save_swim_trace",
    "size_bin",
    "to_specs",
    "wordcount_path",
]
