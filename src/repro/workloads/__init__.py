"""Workload generators: SWIM trace, sort, wordcount, the synthetic
Google cluster trace, the trace-scale replay, and the interactive
serving workload — all registered behind one :class:`Workload` protocol
(see :mod:`repro.workloads.base`)."""

from .base import (
    Workload,
    add_workload_arguments,
    cli_workloads,
    get_workload,
    params_from_args,
    register_workload,
    workload_registry,
)
from .google_trace import GoogleTraceGenerator, GoogleTraceJob, TaskUsageInterval
from .scale import (
    ScaleConfig,
    ScaleResult,
    build_scale_cluster,
    format_scale_result,
    run_scale_replay,
)
from .serve import (
    ServeConfig,
    ServeRequest,
    ServeResult,
    ZipfSampler,
    diurnal_rate,
    format_serve_result,
    generate_requests,
    run_serve,
)
from .sort import SORT_INPUT_BYTES, SORT_INPUT_PATH, make_sort_spec
from .swim import SwimGenerator, SwimJob, size_bin, to_specs
from .trace_io import (
    load_google_jobs,
    load_swim_trace,
    save_google_jobs,
    save_swim_trace,
)
from .wordcount import DEFAULT_SIZES_GB, make_wordcount_spec, wordcount_path

# Importing the adapters registers every workload family; keep this
# after the symbol imports above (the adapters import from them).
from . import adapters  # noqa: E402,F401

__all__ = [
    "DEFAULT_SIZES_GB",
    "GoogleTraceGenerator",
    "GoogleTraceJob",
    "SORT_INPUT_BYTES",
    "SORT_INPUT_PATH",
    "ScaleConfig",
    "ScaleResult",
    "ServeConfig",
    "ServeRequest",
    "ServeResult",
    "SwimGenerator",
    "SwimJob",
    "TaskUsageInterval",
    "Workload",
    "ZipfSampler",
    "add_workload_arguments",
    "build_scale_cluster",
    "cli_workloads",
    "diurnal_rate",
    "format_scale_result",
    "format_serve_result",
    "generate_requests",
    "get_workload",
    "load_google_jobs",
    "load_swim_trace",
    "make_sort_spec",
    "make_wordcount_spec",
    "params_from_args",
    "register_workload",
    "run_scale_replay",
    "run_serve",
    "size_bin",
    "to_specs",
    "wordcount_path",
    "workload_registry",
]
