"""Standalone wordcount jobs (paper Sections IV-E and IV-F, Figure 8).

The paper varies the input from 1GB to 12GB (a 400MB text corpus
concatenated onto itself) to study how migration benefit relates to input
size and lead-time, including the *Ignem+10s* variant that inserts 10s of
artificial lead-time in the job submitter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..mapreduce.spec import JobSpec
from ..storage.device import GB, MB

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster

#: The sweep used in Figure 8, extended past the paper's 12GB so the
#: Ignem+10s crossover (Section IV-F) is visible on our calibration.
DEFAULT_SIZES_GB: Sequence[float] = (1, 2, 4, 8, 12, 16, 24)


def wordcount_path(input_gb: float) -> str:
    return f"/wordcount/input-{input_gb:g}gb"


def make_wordcount_spec(input_gb: float) -> JobSpec:
    """Wordcount: CPU-heavy mappers, tiny aggregated shuffle/output."""
    input_bytes = input_gb * GB
    # Word histograms aggregate hard: shuffle is a few percent of input,
    # output smaller still (the corpus repeats, so the vocabulary
    # saturates quickly).
    shuffle_bytes = min(200 * MB, 0.03 * input_bytes)
    return JobSpec(
        name=f"wordcount-{input_gb:g}gb",
        input_paths=(wordcount_path(input_gb),),
        shuffle_bytes=shuffle_bytes,
        output_bytes=0.5 * shuffle_bytes,
        num_reduces=4,
        # Tokenizing + hashing every byte: ~40MB/s of mapper compute.
        map_cpu_factor=10.0,
        reduce_cpu_factor=1.0,
    )


def materialize(cluster: "Cluster", input_gb: float) -> None:
    cluster.client.create_file(wordcount_path(input_gb), input_gb * GB)
