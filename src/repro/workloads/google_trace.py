"""Synthetic Google cluster trace (paper Section II-C).

The real trace (Reiss et al., 12k+ servers, one month) is not available
offline, so this generator synthesizes rows calibrated to every aggregate
the paper uses:

* job queueing delays — lognormal with **median 1.8s and mean 8.8s**
  (the paper's reported values);
* per-job disk read time — lognormal calibrated so that for ~81% of jobs
  the lead-time exceeds the read time (Fig 3's headline number);
* per-server 5-minute usage intervals with task IO times whose derived
  utilization averages ~3% over 24h and stays under ~5% for a 40-server
  mean (Fig 4).

The *analysis* code consumes these rows through the same computation the
paper describes (sum task IO per job; assume IO uniform over intervals;
1s-granularity utilization averaged over 5-minute windows), so swapping
in the real trace would only change this generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..sim.rand import RandomSource

#: Lognormal parameters for queueing delay: median 1.8s => mu = ln(1.8);
#: mean 8.8s => sigma = sqrt(2 * (ln 8.8 - mu)).
QUEUE_MU = math.log(1.8)
QUEUE_SIGMA = math.sqrt(2 * (math.log(8.8) - QUEUE_MU))

#: Per-job total disk-read-time lognormal, calibrated so that
#: P(read < queue) ~= 0.81 given the queue distribution above:
#: (QUEUE_MU - READ_MU) / sqrt(READ_SIGMA^2 + QUEUE_SIGMA^2) = z_{0.81}.
READ_SIGMA = 2.0
_Z_81 = 0.8779  # standard normal quantile for 0.81
READ_MU = QUEUE_MU - _Z_81 * math.sqrt(READ_SIGMA**2 + QUEUE_SIGMA**2)

#: Mean per-interval disk utilization for a server (lognormal draw);
#: e^(mu + sigma^2/2) with these values gives ~3.1%.
UTIL_SIGMA = 1.0
UTIL_MU = math.log(0.031) - UTIL_SIGMA**2 / 2


@dataclass(frozen=True)
class GoogleTraceJob:
    """One job row: submission, queueing, and its tasks' disk IO times."""

    job_id: int
    submit_time: float
    queue_delay: float
    task_io_times: Tuple[float, ...]

    @property
    def lead_time(self) -> float:
        """Paper definition: submission to first task start = queue delay."""
        return self.queue_delay

    @property
    def total_read_time(self) -> float:
        """Sum of disk IO time over all the job's tasks (paper's Fig 3)."""
        return sum(self.task_io_times)


@dataclass(frozen=True)
class TaskUsageInterval:
    """One task's reported IO within one trace reporting interval."""

    server: int
    start: float
    end: float
    io_time: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("interval must have positive length")
        if self.io_time < 0 or self.io_time > self.end - self.start:
            raise ValueError("io_time must fit within the interval")


class GoogleTraceGenerator:
    """Deterministic synthesizer for the two Section II analyses."""

    def __init__(self, seed: int = 0):
        self.rng = RandomSource(seed).spawn("google-trace")

    def generate_jobs(
        self, num_jobs: int = 10_000, mean_interarrival: float = 0.5
    ) -> List[GoogleTraceJob]:
        """Job rows for the lead-time sufficiency analysis (Fig 3)."""
        if num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        jobs: List[GoogleTraceJob] = []
        submit = 0.0
        for job_id in range(num_jobs):
            submit += self.rng.expovariate(1.0 / mean_interarrival)
            queue_delay = self.rng.lognormal(QUEUE_MU, QUEUE_SIGMA)
            total_read = self.rng.lognormal(READ_MU, READ_SIGMA)
            num_tasks = 1 + int(self.rng.lognormal(1.0, 1.0))
            io_times = self._split(total_read, num_tasks)
            jobs.append(
                GoogleTraceJob(
                    job_id=job_id,
                    submit_time=submit,
                    queue_delay=queue_delay,
                    task_io_times=tuple(io_times),
                )
            )
        return jobs

    #: Relative activity per day of a week-long load cycle.  The paper
    #: analyzes a busy 24h window (mean ~3.1%) of a month whose overall
    #: mean is ~1.3%; this pattern (mean ~0.42 of the busiest day)
    #: reproduces that day-vs-month gap.
    WEEKLY_PATTERN = (1.0, 0.75, 0.5, 0.35, 0.25, 0.15, 0.1)

    def day_factor(self, day: int) -> float:
        """Relative activity of ``day`` within the weekly load cycle."""
        return self.WEEKLY_PATTERN[day % len(self.WEEKLY_PATTERN)]

    def generate_server_usage(
        self,
        num_servers: int = 40,
        duration: float = 24 * 3600.0,
        report_interval: float = 300.0,
        mean_tasks_per_server: float = 10.0,
        daily_pattern: bool = False,
    ) -> List[TaskUsageInterval]:
        """Per-server usage rows for the disk-utilization analysis (Fig 4).

        Each server reports every ``report_interval`` seconds (the trace
        reports IO in intervals of up to 5 minutes); the interval's total
        IO time is drawn so derived utilization matches the paper's ~3%
        mean, then split over the tasks running in that interval.

        With ``daily_pattern=True`` activity follows the weekly cycle in
        :attr:`WEEKLY_PATTERN` (day 0 busiest): a month-long generation
        then averages ~1.3% while its busiest day averages ~3.1%,
        matching the paper's two numbers.
        """
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        intervals: List[TaskUsageInterval] = []
        steps = int(duration / report_interval)
        for server in range(num_servers):
            for step in range(steps):
                start = step * report_interval
                end = start + report_interval
                factor = 1.0
                if daily_pattern:
                    factor = self.day_factor(int(start // 86400))
                utilization = min(
                    1.0, factor * self.rng.lognormal(UTIL_MU, UTIL_SIGMA)
                )
                total_io = utilization * report_interval
                num_tasks = max(1, self.rng.np.poisson(mean_tasks_per_server))
                for io_time in self._split(total_io, num_tasks):
                    intervals.append(
                        TaskUsageInterval(
                            server=server, start=start, end=end, io_time=io_time
                        )
                    )
        return intervals

    def _split(self, total: float, parts: int) -> List[float]:
        """Randomly split ``total`` into ``parts`` non-negative shares."""
        if parts == 1:
            return [total]
        weights = [self.rng.uniform(0.1, 1.0) for _ in range(parts)]
        scale = total / sum(weights)
        return [w * scale for w in weights]
