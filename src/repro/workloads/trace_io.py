"""Trace file input/output.

The real SWIM repository distributes workloads as tab-separated files
(one job per line) and the Google trace as CSV tables.  These helpers
read and write compatible flat files so users with access to the actual
traces can replay them through the same experiment harnesses that run on
our synthesized equivalents.

SWIM format (tab-separated, one job per line)::

    <job_index> <arrival_time_s> <input_bytes> <shuffle_bytes> <output_bytes>

Google-trace job format (CSV with header)::

    job_id,submit_time,queue_delay,task_io_times

where ``task_io_times`` is a ``;``-joined list of per-task disk IO
seconds.
"""

from __future__ import annotations

import csv
import pathlib
from typing import List, Sequence, Union

from .google_trace import GoogleTraceJob
from .swim import SwimJob

PathLike = Union[str, pathlib.Path]


# -- SWIM ---------------------------------------------------------------------


def save_swim_trace(jobs: Sequence[SwimJob], path: PathLike) -> None:
    """Write a SWIM-style tab-separated trace file."""
    lines = []
    for job in jobs:
        lines.append(
            f"{job.index}\t{job.arrival_time:.6f}\t{job.input_bytes:.0f}"
            f"\t{job.shuffle_bytes:.0f}\t{job.output_bytes:.0f}"
        )
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_swim_trace(path: PathLike) -> List[SwimJob]:
    """Read a SWIM-style tab-separated trace file."""
    jobs: List[SwimJob] = []
    for line_number, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 5:
            raise ValueError(
                f"{path}:{line_number}: expected 5 tab-separated fields, "
                f"got {len(fields)}"
            )
        index, arrival, input_bytes, shuffle_bytes, output_bytes = fields
        jobs.append(
            SwimJob(
                index=int(index),
                arrival_time=float(arrival),
                input_bytes=float(input_bytes),
                shuffle_bytes=float(shuffle_bytes),
                output_bytes=float(output_bytes),
            )
        )
    return jobs


# -- Google trace -----------------------------------------------------------------


def save_google_jobs(jobs: Sequence[GoogleTraceJob], path: PathLike) -> None:
    """Write Google-trace job rows as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["job_id", "submit_time", "queue_delay", "task_io_times"])
        for job in jobs:
            writer.writerow(
                [
                    job.job_id,
                    f"{job.submit_time:.6f}",
                    f"{job.queue_delay:.6f}",
                    ";".join(f"{t:.6f}" for t in job.task_io_times),
                ]
            )


def load_google_jobs(path: PathLike) -> List[GoogleTraceJob]:
    """Read Google-trace job rows from CSV."""
    jobs: List[GoogleTraceJob] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"job_id", "submit_time", "queue_delay", "task_io_times"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected CSV header with columns {sorted(required)}"
            )
        for row in reader:
            io_field = row["task_io_times"]
            io_times = (
                tuple(float(x) for x in io_field.split(";")) if io_field else ()
            )
            jobs.append(
                GoogleTraceJob(
                    job_id=int(row["job_id"]),
                    submit_time=float(row["submit_time"]),
                    queue_delay=float(row["queue_delay"]),
                    task_io_times=io_times,
                )
            )
    return jobs
