"""Interactive serving workload: Zipfian reads, latency SLOs.

Everything else the repro runs is batch analytics measured in job
duration.  This module opens the second workload axis of the paper's
motivating mixed cluster (PAPER.md, the Google trace): request-serving
traffic measured in *read latency percentiles*.  A seeded generator
produces a multi-tenant request stream — Zipfian object popularity
(each tenant has its own hot set), a diurnal load curve, optional
flash-crowd spikes — and a driver replays it against a cluster under
one of three policies:

* ``none`` — plain HDFS, every read hits disk until the buffer cache
  happens to help;
* ``hint`` — Ignem with an oracle submitter hint: the globally hottest
  objects are migrated up front (what a perfectly informed operator
  would pin);
* ``heat`` — Ignem plus the hint-free popularity-driven policy
  (:mod:`repro.core.heat`): the system learns heat from observed reads
  and promotes/demotes on its own.

Per-request latency lands in ``serve.read_latency_seconds`` (plus one
histogram per tenant) with SLO summary gauges ``serve.slo.p50`` /
``p99`` / ``p999`` / ``mean`` pulled from the same histogram.  Two runs
with one seed are byte-identical: :class:`ServeResult.to_dict`
deliberately excludes wall-clock time.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import Cluster, ClusterConfig
from ..core.config import IgnemConfig
from ..core.heat import HeatConfig
from ..sim.events import join_all
from ..sim.rand import RandomSource
from ..storage.device import GB, MB
from .base import cli_metadata

#: Latency bucket bounds (seconds) tuned to the serving range: a local
#: RAM block read is ~0.04s, a remote disk read ~0.5s, and a thrashing
#: disk under the diurnal peak runs into tens of seconds.
SERVE_BUCKETS: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    30.0,
    120.0,
)


def object_path(index: int) -> str:
    """DFS path of serving object ``index`` (``/serve/obj-0007``)."""
    return f"/serve/obj-{index:04d}"


@dataclass(frozen=True)
class ServeConfig:
    """Shape of one serving run (defaults: the paper-testbed cluster
    under a load its disks cannot absorb but its RAM can)."""

    num_nodes: int = field(
        default=8,
        metadata=cli_metadata(flag="--nodes", help="cluster size"),
    )
    num_objects: int = field(
        default=48,
        metadata=cli_metadata(flag="--objects", help="serving objects"),
    )
    #: Bytes per object (one DFS block by default).
    object_bytes: float = field(
        default=64 * MB, metadata=cli_metadata(cli=False)
    )
    replication: int = field(default=3, metadata=cli_metadata(cli=False))
    num_requests: int = field(
        default=1200,
        metadata=cli_metadata(flag="--requests", help="requests to replay"),
    )
    #: Mean arrival rate (requests/second) before the diurnal curve.
    #: 3 req/s of 64MB objects keeps the aggregate demand under the
    #: disks' sequential bandwidth, but popularity skew concentrates the
    #: hot set on a few replica holders — exactly the regime where
    #: upward migration pays (p99 collapses once the hot set is in RAM).
    base_rps: float = field(
        default=3.0,
        metadata=cli_metadata(flag="--rps", help="mean request rate"),
    )
    #: Zipf exponent of object popularity (higher = more skew).
    zipf_s: float = field(
        default=1.1,
        metadata=cli_metadata(flag="--zipf", help="popularity skew exponent"),
    )
    num_tenants: int = field(
        default=3,
        metadata=cli_metadata(flag="--tenants", help="request tenants"),
    )
    #: Diurnal load curve: rate(t) = base * (1 + A * sin(2*pi*t/period)).
    diurnal_amplitude: float = field(
        default=0.5,
        metadata=cli_metadata(
            flag="--diurnal-amplitude", help="load-curve swing in [0, 1]"
        ),
    )
    diurnal_period: float = field(
        default=240.0,
        metadata=cli_metadata(
            flag="--diurnal-period", help="load-curve period (seconds)"
        ),
    )
    flash_crowds: int = field(
        default=1,
        metadata=cli_metadata(
            flag="--flash-crowds", help="flash-crowd spikes to inject"
        ),
    )
    flash_crowd_duration: float = field(
        default=20.0, metadata=cli_metadata(cli=False)
    )
    #: Probability a request inside a flash window redirects to the
    #: crowd's object.
    flash_crowd_boost: float = field(
        default=0.35, metadata=cli_metadata(cli=False)
    )
    policy: str = field(
        default="heat",
        metadata=cli_metadata(
            flag="--policy",
            choices=("none", "hint", "heat"),
            help="migration policy: none | hint (oracle) | heat (learned)",
        ),
    )
    #: Objects the oracle hint pins (``policy="hint"``).
    hint_objects: int = field(
        default=8,
        metadata=cli_metadata(
            flag="--hint-objects", help="objects the hint policy pins"
        ),
    )
    buffer_capacity: float = field(
        default=2 * GB, metadata=cli_metadata(cli=False)
    )
    #: SWIM batch jobs to run alongside the request stream (0 = pure
    #: interactive; >0 reproduces the paper's mixed cluster).
    batch_jobs: int = field(
        default=0,
        metadata=cli_metadata(flag="--batch-jobs", help="mixed-mode SWIM jobs"),
    )
    seed: int = 0
    #: Heat-policy knobs (``policy="heat"``).
    heat: HeatConfig = field(
        default_factory=HeatConfig, metadata=cli_metadata(cli=False)
    )

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if self.object_bytes <= 0:
            raise ValueError("object_bytes must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.base_rps <= 0:
            raise ValueError("base_rps must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if not 0 <= self.diurnal_amplitude <= 1:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if self.flash_crowds < 0:
            raise ValueError("flash_crowds must be >= 0")
        if self.flash_crowd_duration <= 0:
            raise ValueError("flash_crowd_duration must be positive")
        if not 0 <= self.flash_crowd_boost <= 1:
            raise ValueError("flash_crowd_boost must be in [0, 1]")
        if self.policy not in ("none", "hint", "heat"):
            raise ValueError(
                f"policy must be 'none', 'hint', or 'heat', got {self.policy!r}"
            )
        if self.hint_objects < 1:
            raise ValueError("hint_objects must be >= 1")
        if self.batch_jobs < 0:
            raise ValueError("batch_jobs must be >= 0")


class ZipfSampler:
    """Inverse-CDF sampling of a Zipf(s) distribution over ``n`` ranks.

    Deterministic given the uniform draw: rank ``k`` has weight
    ``1 / (k+1)**s``.  Sampling is a bisect over the precomputed CDF, so
    a request stream costs O(log n) per draw.
    """

    def __init__(self, n: int, s: float):
        if n < 1:
            raise ValueError("n must be >= 1")
        if s <= 0:
            raise ValueError("s must be positive")
        self.n = n
        self.s = s
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard float drift at the top

    def probability(self, rank: int) -> float:
        """P(rank) — the sampler's exact mass at one rank."""
        if rank == 0:
            return self._cdf[0]
        return self._cdf[rank] - self._cdf[rank - 1]

    def sample(self, u: float) -> int:
        """Map one uniform draw in [0, 1) to a popularity rank."""
        return min(self.n - 1, bisect_left(self._cdf, u))


def diurnal_rate(
    base: float, amplitude: float, period: float, t: float
) -> float:
    """Request rate at time ``t`` under the diurnal curve, floored at
    5% of base so the arrival process never stalls in the trough."""
    rate = base * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
    return max(0.05 * base, rate)


@dataclass(frozen=True)
class ServeRequest:
    """One read request of the generated stream."""

    time: float
    path: str
    tenant: str
    reader: str
    flash: bool = False


def generate_requests(
    config: ServeConfig, rng: RandomSource
) -> List[ServeRequest]:
    """Synthesize the request stream (pure function of config + rng).

    Draw order is part of the determinism contract: per-tenant
    popularity permutations, then flash windows, then per-request
    (arrival gap, tenant, rank, flash redirect, reader).  Each tenant
    sees the same Zipf *shape* over its own shuffled object order, so
    tenants have distinct hot sets and fairness caps bind for real.
    """
    zipf = ZipfSampler(config.num_objects, config.zipf_s)

    # Tenant popularity permutations: tenant i's rank r maps to its own
    # object, so "hot" means different blocks per tenant.
    permutations: List[List[int]] = []
    for _tenant in range(config.num_tenants):
        order = list(range(config.num_objects))
        rng.shuffle(order)
        permutations.append(order)

    # Tenant mix: geometric weights (tenant0 busiest), normalized CDF.
    weights = [0.6**index for index in range(config.num_tenants)]
    total = sum(weights)
    tenant_cdf: List[float] = []
    cumulative = 0.0
    for weight in weights:
        cumulative += weight / total
        tenant_cdf.append(cumulative)
    tenant_cdf[-1] = 1.0

    # Flash-crowd windows: each picks a mid-popularity object and a
    # start inside the nominal horizon.
    horizon = config.num_requests / config.base_rps
    windows: List[Tuple[float, float, int]] = []
    for _crowd in range(config.flash_crowds):
        start = rng.uniform(0.15, 0.7) * horizon
        low = config.num_objects // 4
        high = max(low, (3 * config.num_objects) // 4)
        windows.append(
            (start, start + config.flash_crowd_duration, rng.randint(low, high))
        )

    requests: List[ServeRequest] = []
    t = 0.0
    for _index in range(config.num_requests):
        rate = diurnal_rate(
            config.base_rps,
            config.diurnal_amplitude,
            config.diurnal_period,
            t,
        )
        t += rng.expovariate(rate)
        tenant_index = bisect_left(tenant_cdf, rng.uniform(0.0, 1.0))
        tenant_index = min(tenant_index, config.num_tenants - 1)
        rank = zipf.sample(rng.uniform(0.0, 1.0))
        obj = permutations[tenant_index][rank]
        flash = False
        for start, end, flash_obj in windows:
            if start <= t < end and rng.uniform(0.0, 1.0) < config.flash_crowd_boost:
                obj = flash_obj
                flash = True
                break
        reader = f"node{rng.randint(0, config.num_nodes - 1)}"
        requests.append(
            ServeRequest(
                time=t,
                path=object_path(obj),
                tenant=f"tenant{tenant_index}",
                reader=reader,
                flash=flash,
            )
        )
    return requests


@dataclass
class ServeResult:
    """SLO summary + determinism fingerprint for one serving run."""

    policy: str
    num_nodes: int
    num_objects: int
    num_requests: int
    num_tenants: int
    seed: int
    sim_time: float
    events: int
    requests_served: int
    flash_requests: int
    p50: float
    p99: float
    p999: float
    mean: float
    tenant_p99: Dict[str, float]
    ram_block_reads: int
    disk_block_reads: int
    migrations_completed: int
    migrated_bytes: float
    promotions: int
    demotions: int
    shed: int
    queued: int
    expired: int
    batch_jobs_completed: int
    wall_seconds: float

    @property
    def ram_share(self) -> float:
        reads = self.ram_block_reads + self.disk_block_reads
        return self.ram_block_reads / reads if reads else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON payload.  Wall-clock time is intentionally absent: two
        runs with one seed must serialize byte-identically."""
        return {
            "policy": self.policy,
            "num_nodes": self.num_nodes,
            "num_objects": self.num_objects,
            "num_requests": self.num_requests,
            "num_tenants": self.num_tenants,
            "seed": self.seed,
            "sim_time": round(self.sim_time, 6),
            "events": self.events,
            "requests_served": self.requests_served,
            "flash_requests": self.flash_requests,
            "p50": round(self.p50, 6),
            "p99": round(self.p99, 6),
            "p999": round(self.p999, 6),
            "mean": round(self.mean, 6),
            "tenant_p99": {
                tenant: round(value, 6)
                for tenant, value in sorted(self.tenant_p99.items())
            },
            "ram_block_reads": self.ram_block_reads,
            "disk_block_reads": self.disk_block_reads,
            "ram_share": round(self.ram_share, 4),
            "migrations_completed": self.migrations_completed,
            "migrated_bytes": self.migrated_bytes,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "shed": self.shed,
            "queued": self.queued,
            "expired": self.expired,
            "batch_jobs_completed": self.batch_jobs_completed,
        }


@dataclass
class _ServeStats:
    """Mutable tallies shared by the request processes."""

    served: int = 0
    ram_block_reads: int = 0
    disk_block_reads: int = 0


def _serve_request(
    cluster: Cluster,
    request: ServeRequest,
    arrival,
    histogram,
    tenant_histogram,
    stats: _ServeStats,
):
    """One request: wait for its arrival, read every block, observe."""
    env = cluster.env
    yield arrival
    started = env.now
    client = cluster.client
    pending = []
    for block in cluster.namenode.file_blocks(request.path):
        read = client.read_block(
            block, request.reader, tenant=request.tenant
        )
        if read.source == "ram":
            stats.ram_block_reads += 1
        else:
            stats.disk_block_reads += 1
        pending.append(read.done)
    if pending:
        yield join_all(env, pending)
    latency = env.now - started
    histogram.observe(latency)
    tenant_histogram.observe(latency)
    stats.served += 1


def _oracle_hints(requests: List[ServeRequest], count: int) -> List[str]:
    """The hint policy's pin list: the ``count`` most-requested paths
    (ties broken by path) — a perfectly informed operator."""
    tallies: Dict[str, int] = {}
    for request in requests:
        tallies[request.path] = tallies.get(request.path, 0) + 1
    ranked = sorted(tallies, key=lambda path: (-tallies[path], path))
    return ranked[:count]


def run_serve(config: Optional[ServeConfig] = None) -> ServeResult:
    """Build the cluster, replay the request stream, summarize SLOs."""
    config = config or ServeConfig()
    wall_start = time.perf_counter()

    cluster = Cluster(
        ClusterConfig(
            num_nodes=config.num_nodes,
            replication=min(config.replication, config.num_nodes),
            seed=config.seed,
        )
    )
    env = cluster.env
    registry = cluster.metrics

    for index in range(config.num_objects):
        cluster.client.create_file(object_path(index), config.object_bytes)

    if config.policy in ("hint", "heat"):
        cluster.enable_ignem(
            IgnemConfig(buffer_capacity=config.buffer_capacity)
        )
    if config.policy == "heat":
        cluster.enable_heat_migration(config.heat)

    rng = RandomSource(config.seed).spawn("serve")
    requests = generate_requests(config, rng)

    if config.policy == "hint":
        # The oracle hint rides one synthetic job for the whole run,
        # exactly like a submitter pinning its service's working set.
        cluster.rm.register_job("serve-hint")
        cluster.ignem_master.request_migration(
            _oracle_hints(requests, config.hint_objects), "serve-hint"
        )

    histogram = registry.histogram("serve.read_latency_seconds", SERVE_BUCKETS)
    tenant_histograms = {
        f"tenant{index}": registry.histogram(
            f"serve.tenant.tenant{index}.read_latency_seconds", SERVE_BUCKETS
        )
        for index in range(config.num_tenants)
    }

    def _slo(quantile: Optional[float]):
        def pull() -> float:
            if histogram.count == 0:
                return 0.0
            if quantile is None:
                return histogram.mean
            return histogram.quantile(quantile)

        return pull

    registry.register_pull("serve.slo.p50", _slo(0.50))
    registry.register_pull("serve.slo.p99", _slo(0.99))
    registry.register_pull("serve.slo.p999", _slo(0.999))
    registry.register_pull("serve.slo.mean", _slo(None))

    stats = _ServeStats()
    arrivals = env.timeout_batch([request.time for request in requests])
    for request, arrival in zip(requests, arrivals):
        env.process(
            _serve_request(
                cluster,
                request,
                arrival,
                histogram,
                tenant_histograms[request.tenant],
                stats,
            )
        )

    batch_done = None
    if config.batch_jobs > 0:
        from . import swim

        generator = swim.SwimGenerator(seed=config.seed)
        jobs = generator.generate(num_jobs=config.batch_jobs)
        swim.materialize(cluster, jobs)
        specs, job_arrivals = swim.to_specs(jobs)
        batch_done = cluster.engine.run_workload(specs, job_arrivals)

    env.run()

    def heat_count(event: str) -> int:
        if cluster.heat_migrator is None:
            return 0
        return int(registry.value(f"heat.policy.{event}"))

    completed = cluster.collector.completed_migrations()
    batch_completed = 0
    if batch_done is not None:
        batch_completed = sum(
            1 for job in cluster.engine.jobs if job.completed.triggered
        )
    return ServeResult(
        policy=config.policy,
        num_nodes=config.num_nodes,
        num_objects=config.num_objects,
        num_requests=config.num_requests,
        num_tenants=config.num_tenants,
        seed=config.seed,
        sim_time=env.now,
        events=env._eid,
        requests_served=stats.served,
        flash_requests=sum(1 for request in requests if request.flash),
        p50=histogram.quantile(0.50) if histogram.count else 0.0,
        p99=histogram.quantile(0.99) if histogram.count else 0.0,
        p999=histogram.quantile(0.999) if histogram.count else 0.0,
        mean=histogram.mean if histogram.count else 0.0,
        tenant_p99={
            tenant: (hist.quantile(0.99) if hist.count else 0.0)
            for tenant, hist in tenant_histograms.items()
        },
        ram_block_reads=stats.ram_block_reads,
        disk_block_reads=stats.disk_block_reads,
        migrations_completed=len(completed),
        migrated_bytes=sum(record.nbytes for record in completed),
        promotions=heat_count("promotions"),
        demotions=heat_count("demotions"),
        shed=heat_count("shed"),
        queued=heat_count("queued"),
        expired=heat_count("expired"),
        batch_jobs_completed=batch_completed,
        wall_seconds=time.perf_counter() - wall_start,
    )


def format_serve_result(result: ServeResult) -> str:
    """Human-readable report for ``repro serve`` (and serve.txt)."""
    lines = [
        "Interactive serving replay",
        "==========================",
        f"policy           : {result.policy}",
        f"cluster          : {result.num_nodes} nodes",
        f"objects          : {result.num_objects}"
        f" x {result.num_tenants} tenants",
        f"requests         : {result.requests_served}/{result.num_requests}"
        f" served ({result.flash_requests} flash)",
        f"sim time         : {result.sim_time:.1f} s",
        f"read latency     : p50 {result.p50 * 1000:.0f} ms"
        f" | p99 {result.p99 * 1000:.0f} ms"
        f" | p999 {result.p999 * 1000:.0f} ms"
        f" | mean {result.mean * 1000:.0f} ms",
        f"ram reads        : {result.ram_block_reads}"
        f" ({100.0 * result.ram_share:.1f}% of block reads)",
        f"migrations       : {result.migrations_completed}"
        f" ({result.migrated_bytes / GB:.2f} GB)",
    ]
    if result.policy == "heat":
        lines.append(
            f"heat policy      : {result.promotions} promoted,"
            f" {result.demotions} demoted, {result.queued} queued,"
            f" {result.shed} shed, {result.expired} expired"
        )
    if result.batch_jobs_completed:
        lines.append(
            f"batch jobs       : {result.batch_jobs_completed} completed"
        )
    for tenant in sorted(result.tenant_p99):
        lines.append(
            f"{tenant:<17}: p99 {result.tenant_p99[tenant] * 1000:.0f} ms"
        )
    return "\n".join(lines)
