"""Standalone sort job (paper Section IV-D, Table III).

Sort over 40GB of random text: shuffle and output equal the input (sort
neither filters nor aggregates), making it the paper's stress case for
"reads matter even for jobs with significant computation and writes".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..mapreduce.spec import JobSpec
from ..storage.device import GB

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster

SORT_INPUT_PATH = "/sort/input"
SORT_INPUT_BYTES = 40 * GB


def make_sort_spec(
    input_bytes: float = SORT_INPUT_BYTES,
    input_path: str = SORT_INPUT_PATH,
    num_reduces: int = 32,
) -> JobSpec:
    """Sort: shuffle == output == input, moderate CPU on both sides."""
    return JobSpec(
        name="sort",
        input_paths=(input_path,),
        shuffle_bytes=input_bytes,
        output_bytes=input_bytes,
        num_reduces=num_reduces,
        # Sort mappers do real work per byte (parse, partition, serialize,
        # spill): ~28MB/s of mapper compute throughput.  That duty cycle
        # leaves disk headroom that Ignem's work-conserving migration
        # exploits — the effect behind Table III's 22% gain.
        map_cpu_factor=14.0,
        reduce_cpu_factor=3.0,
    )


def materialize(cluster: "Cluster", input_bytes: float = SORT_INPUT_BYTES) -> None:
    """Create the 40GB random-text dataset in the DFS."""
    cluster.client.create_file(SORT_INPUT_PATH, input_bytes)
