"""Trace-scale replay: Google-trace-shaped jobs on a huge cluster.

Drives :class:`~repro.workloads.google_trace.GoogleTraceGenerator` rows
through a full :class:`~repro.cluster.Cluster` at configurable node/job
counts — the kernel-stress workload behind ``python -m repro scale``.
Each trace row becomes one job: an input file sized from the row's total
disk-read time, an Ignem migrate call at submission, a read wave after
the row's queueing delay, and an evict call at completion (the paper's
Section III client protocol, replayed at Google-trace scale).

The harness opts into the scale-only fast paths (sampled replica
placement, parked heartbeat loops, pooled timeouts, vectorized device
resharing above 64 streams); the paper-testbed experiments never enable
these, so their golden outputs are unaffected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster import Cluster, ClusterConfig
from ..core.config import IgnemConfig
from ..sim.events import join_all
from ..storage.presets import HDD_BANDWIDTH
from .base import cli_metadata
from .google_trace import GoogleTraceGenerator, GoogleTraceJob

GB = 1024.0**3


@dataclass(frozen=True)
class ScaleConfig:
    """Shape of one scale replay (defaults: the 10k/100k headline run)."""

    num_nodes: int = field(
        default=10_000,
        metadata=cli_metadata(flag="--nodes", help="cluster size"),
    )
    num_jobs: int = field(
        default=100_000,
        metadata=cli_metadata(flag="--jobs", help="trace rows to replay"),
    )
    seed: int = 0
    #: Mean job interarrival in seconds (trace arrival process).
    mean_interarrival: float = field(
        default=0.5,
        metadata=cli_metadata(
            flag="--interarrival", help="mean job interarrival (seconds)"
        ),
    )
    #: Cap on blocks per job input file.  The trace's per-job read-time
    #: lognormal has sigma=2, so its far tail would turn single rows
    #: into multi-terabyte files; capping bounds the tail while leaving
    #: the bulk of the distribution untouched (capped jobs are counted
    #: in the result).
    max_blocks_per_job: int = field(
        default=64,
        metadata=cli_metadata(
            flag="--max-blocks",
            help="cap on blocks per job input file (bounds the lognormal tail)",
        ),
    )
    #: Replay with Ignem enabled (migrate/evict calls around each job).
    #: False replays the plain-HDFS baseline: reads only.
    ignem: bool = field(
        default=True,
        metadata=cli_metadata(
            flag="--no-ignem",
            invert=True,
            help="replay the plain-HDFS baseline (no migrate/evict calls)",
        ),
    )


@dataclass
class ScaleResult:
    """Determinism fingerprint + throughput numbers for one replay."""

    num_nodes: int
    num_jobs: int
    seed: int
    events: int
    sim_time: float
    jobs_completed: int
    block_reads: int
    ram_block_reads: int
    disk_block_reads: int
    migrations_completed: int
    migrated_bytes: float
    dataset_bytes: float
    capped_jobs: int
    wall_seconds: float

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_nodes": self.num_nodes,
            "num_jobs": self.num_jobs,
            "seed": self.seed,
            "events": self.events,
            "sim_time": self.sim_time,
            "jobs_completed": self.jobs_completed,
            "block_reads": self.block_reads,
            "ram_block_reads": self.ram_block_reads,
            "disk_block_reads": self.disk_block_reads,
            "migrations_completed": self.migrations_completed,
            "migrated_bytes": self.migrated_bytes,
            "dataset_bytes": self.dataset_bytes,
            "capped_jobs": self.capped_jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "events_per_second": round(self.events_per_second, 1),
        }


@dataclass
class _ReplayStats:
    """Mutable counters shared by every in-flight job process."""

    jobs_completed: int = 0
    block_reads: int = 0
    ram_block_reads: int = 0


def _job_bytes(job: GoogleTraceJob, block_size: float, max_blocks: int) -> float:
    """Input-file size implied by the row's total disk-read time.

    The trace reports read *time*; the paper's testbed disks move
    ~130 MB/s, so bytes = read_time x HDD bandwidth, capped at
    ``max_blocks`` blocks against the lognormal tail.
    """
    nbytes = max(1.0, job.total_read_time * HDD_BANDWIDTH)
    return min(nbytes, max_blocks * block_size)


def _replay_job(cluster: Cluster, job: GoogleTraceJob, arrival, stats: _ReplayStats):
    """One trace row: submit -> migrate -> queue -> read wave -> evict."""
    env = cluster.env
    yield arrival
    job_id = f"job-{job.job_id}"
    path = f"/scale/input-{job.job_id}"
    rm = cluster.rm
    rm.register_job(job_id)
    master = cluster.ignem_master
    if master is not None:
        # The client's migrate call rides the job-submission RPC
        # (paper III-B); implicit eviction reclaims each block's buffer
        # space as soon as its read drops the last reference.
        master.request_migration([path], job_id, implicit_eviction=True)
    yield env.pooled_timeout(job.queue_delay)

    namenode = cluster.namenode
    datanodes = cluster.datanodes
    pending = []
    ram_reads = 0
    for block in namenode.file_blocks(path):
        memory = namenode.memory_locations(block.block_id)
        if memory:
            node = memory[0]
        else:
            locations = namenode.get_block_locations(block.block_id)
            if not locations:
                continue
            node = locations[0]
        handle = datanodes[node].read_block(block, job_id)
        if handle.source == "ram":
            ram_reads += 1
        pending.append(handle.done)
    stats.block_reads += len(pending)
    stats.ram_block_reads += ram_reads
    if pending:
        yield join_all(env, pending)

    if master is not None:
        master.request_eviction([path], job_id)
    rm.unregister_job(job_id)
    stats.jobs_completed += 1


def build_scale_cluster(config: ScaleConfig) -> Cluster:
    """A cluster sized for ``config`` with the scale fast paths on."""
    cluster = Cluster(
        ClusterConfig(
            num_nodes=config.num_nodes,
            replication=min(3, config.num_nodes),
            fast_placement=True,
            seed=config.seed,
        )
    )
    if config.ignem:
        cluster.enable_ignem(IgnemConfig())
    return cluster


def run_scale_replay(config: Optional[ScaleConfig] = None) -> ScaleResult:
    """Build the cluster, materialize the dataset, replay every row."""
    config = config or ScaleConfig()
    wall_start = time.perf_counter()

    cluster = build_scale_cluster(config)
    env = cluster.env
    namenode = cluster.namenode
    block_size = cluster.config.block_size

    jobs = GoogleTraceGenerator(config.seed).generate_jobs(
        config.num_jobs, mean_interarrival=config.mean_interarrival
    )

    # Dataset materialization happens before the measured run (as in the
    # paper's setup): block replicas appear on disks at no simulated cost.
    dataset_bytes = 0.0
    capped_jobs = 0
    cap = config.max_blocks_per_job * block_size
    for job in jobs:
        nbytes = _job_bytes(job, block_size, config.max_blocks_per_job)
        if nbytes >= cap and job.total_read_time * HDD_BANDWIDTH > cap:
            capped_jobs += 1
        namenode.create_file(f"/scale/input-{job.job_id}", nbytes)
        dataset_bytes += nbytes

    # One heapified batch schedules every arrival; each job process
    # blocks on its pre-built timeout before touching the cluster.
    stats = _ReplayStats()
    arrivals = env.timeout_batch([job.submit_time for job in jobs])
    for job, arrival in zip(jobs, arrivals):
        env.process(_replay_job(cluster, job, arrival, stats))
    env.run()

    wall_seconds = time.perf_counter() - wall_start
    completed = cluster.collector.completed_migrations()
    return ScaleResult(
        num_nodes=config.num_nodes,
        num_jobs=config.num_jobs,
        seed=config.seed,
        events=env._eid,
        sim_time=env.now,
        jobs_completed=stats.jobs_completed,
        block_reads=stats.block_reads,
        ram_block_reads=stats.ram_block_reads,
        disk_block_reads=stats.block_reads - stats.ram_block_reads,
        migrations_completed=len(completed),
        migrated_bytes=sum(record.nbytes for record in completed),
        dataset_bytes=dataset_bytes,
        capped_jobs=capped_jobs,
        wall_seconds=wall_seconds,
    )


def format_scale_result(result: ScaleResult) -> str:
    """Human-readable report for ``repro scale`` (and scale.txt)."""
    ram_share = (
        100.0 * result.ram_block_reads / result.block_reads
        if result.block_reads
        else 0.0
    )
    lines = [
        "Trace-scale replay",
        "==================",
        f"cluster          : {result.num_nodes} nodes",
        f"jobs             : {result.jobs_completed}/{result.num_jobs} completed",
        f"dataset          : {result.dataset_bytes / GB:.1f} GB"
        f" ({result.capped_jobs} jobs capped)",
        f"sim time         : {result.sim_time:.1f} s",
        f"events           : {result.events}",
        f"block reads      : {result.block_reads}"
        f" ({result.ram_block_reads} from RAM, {ram_share:.1f}%)",
        f"migrations       : {result.migrations_completed}"
        f" ({result.migrated_bytes / GB:.1f} GB)",
        f"wall clock       : {result.wall_seconds:.1f} s"
        f" ({result.events_per_second:,.0f} events/s)",
    ]
    return "\n".join(lines)
