"""SWIM: synthetic Facebook-derived trace workload (paper Section IV-B1).

The paper runs the first 200 jobs of the SWIM Facebook trace, scaled so
the total input is 170GB, with inter-arrival times halved.  The trace
itself is not redistributable here, so this module synthesizes a workload
matching every marginal the paper reports:

* 200 jobs, ~170GB of total input;
* 85% of jobs read 64MB or less; the largest jobs read up to 24GB
  ("abundance of short jobs and a heavy tail");
* per-job shuffle and output sizes (SWIM records all three);
* Poisson arrivals with the halved mean inter-arrival gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from ..mapreduce.spec import JobSpec
from ..sim.rand import RandomSource
from ..storage.device import GB, MB

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster


@dataclass(frozen=True)
class SwimJob:
    """One job row of the synthesized SWIM trace."""

    index: int
    arrival_time: float
    input_bytes: float
    shuffle_bytes: float
    output_bytes: float

    @property
    def name(self) -> str:
        return f"swim-{self.index:03d}"

    @property
    def input_path(self) -> str:
        return f"/swim/input-{self.index:03d}"


class SwimGenerator:
    """Synthesizes SWIM-shaped workloads deterministically from a seed."""

    def __init__(self, seed: int = 0):
        self.rng = RandomSource(seed).spawn("swim")

    def generate(
        self,
        num_jobs: int = 200,
        total_bytes: float = 170 * GB,
        small_fraction: float = 0.85,
        small_max: float = 64 * MB,
        tail_max: float = 24 * GB,
        mean_interarrival: float = 25.0,
    ) -> List[SwimJob]:
        """Build the job list.

        Small jobs draw log-uniformly in (1MB, ``small_max``]; tail jobs
        draw from a lognormal whose mass is rescaled so the workload total
        matches ``total_bytes`` with the largest job clipped to
        ``tail_max``.
        """
        if num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if not 0 <= small_fraction <= 1:
            raise ValueError("small_fraction must be in [0, 1]")

        num_small = round(num_jobs * small_fraction)
        num_tail = num_jobs - num_small

        small_sizes = [
            self._log_uniform(1 * MB, small_max) for _ in range(num_small)
        ]
        # The tail spreads from just above 64MB into the multi-GB range;
        # the wide sigma leaves a thin 64-512MB band (the paper notes the
        # workload has "few medium sized jobs") under a heavy top end.
        tail_sizes = self._tail_sizes(
            num_tail, total_bytes - sum(small_sizes), small_max, tail_max
        )

        sizes = small_sizes + tail_sizes
        self.rng.shuffle(sizes)

        jobs: List[SwimJob] = []
        arrival = 0.0
        for index, input_bytes in enumerate(sizes):
            arrival += self.rng.expovariate(1.0 / mean_interarrival)
            shuffle_fraction = self.rng.uniform(0.05, 0.5)
            output_fraction = self.rng.uniform(0.1, 0.5)
            shuffle_bytes = input_bytes * shuffle_fraction
            jobs.append(
                SwimJob(
                    index=index,
                    arrival_time=arrival,
                    input_bytes=input_bytes,
                    shuffle_bytes=shuffle_bytes,
                    output_bytes=shuffle_bytes * output_fraction,
                )
            )
        return jobs

    def _log_uniform(self, low: float, high: float) -> float:
        import math

        return math.exp(self.rng.uniform(math.log(low), math.log(high)))

    def _tail_sizes(
        self, count: int, target_total: float, floor: float, ceiling: float
    ) -> List[float]:
        if count == 0:
            return []
        raw = [self.rng.lognormal(0.0, 2.2) for _ in range(count)]
        scale = target_total / sum(raw)
        sizes = [min(ceiling, max(floor * 1.01, value * scale)) for value in raw]
        # Correction passes: clipping at the ceiling loses bytes; scale the
        # unclipped jobs *proportionally* so the workload total holds while
        # the small end of the tail (the 64-512MB "medium" band) survives.
        for _ in range(4):
            deficit = target_total - sum(sizes)
            unclipped = [i for i, v in enumerate(sizes) if v < ceiling]
            if deficit <= 0 or not unclipped:
                break
            unclipped_sum = sum(sizes[i] for i in unclipped)
            factor = (unclipped_sum + deficit) / unclipped_sum
            for i in unclipped:
                sizes[i] = min(ceiling, sizes[i] * factor)
        return sizes


def materialize(cluster: "Cluster", jobs: Sequence[SwimJob]) -> None:
    """Create every job's input file in the cluster's DFS."""
    for job in jobs:
        cluster.client.create_file(job.input_path, job.input_bytes)


def to_specs(jobs: Sequence[SwimJob]) -> Tuple[List[JobSpec], List[float]]:
    """Convert trace rows to engine job specs plus arrival times."""
    specs = []
    arrivals = []
    for job in jobs:
        num_reduces = max(1, min(16, int(job.shuffle_bytes // (128 * MB)) + 1))
        specs.append(
            JobSpec(
                name=job.name,
                input_paths=(job.input_path,),
                shuffle_bytes=job.shuffle_bytes,
                output_bytes=job.output_bytes,
                num_reduces=num_reduces,
            )
        )
        arrivals.append(job.arrival_time)
    return specs, arrivals


def size_bin(input_bytes: float) -> str:
    """The paper's Fig 5 bins: <=64MB, 64-512MB, >512MB."""
    if input_bytes <= 64 * MB:
        return "small"
    if input_bytes <= 512 * MB:
        return "medium"
    return "large"
