"""The unified ``Workload`` protocol and registry.

Every workload family the repro can drive — SWIM, sort, wordcount, the
Google-trace feasibility replay, the trace-scale kernel stress, and the
interactive serving workload — registers one :class:`Workload` subclass
here.  A workload bundles:

* ``name`` / ``summary`` — how it appears in ``repro list``;
* ``Params`` — a frozen dataclass of knobs.  Field ``metadata`` drives
  CLI generation (see :func:`add_workload_arguments`), so a workload's
  subcommand flags live next to the knobs they set instead of in a
  hand-maintained parser branch;
* ``build(cluster, rng)`` — materialize datasets / wire policies onto a
  cluster (or build one when ``cluster`` is ``None``);
* ``run()`` — execute end to end and return a result object;
* ``format_result(result)`` / ``result_payload(result)`` — the human
  report and the JSON payload the CLI writes.

``python -m repro`` generates one subparser per ``cli=True`` workload
from the registry, replacing the ad-hoc per-workload branches that had
accreted in ``__main__.py``.
"""

from __future__ import annotations

import argparse
from dataclasses import MISSING, fields
from typing import Callable, ClassVar, Dict, List, Optional, Type

#: name -> workload class, in registration order (sorted on query).
_REGISTRY: Dict[str, Type["Workload"]] = {}


def register_workload(cls: Type["Workload"]) -> Type["Workload"]:
    """Class decorator: add a workload to the global registry."""
    name = getattr(cls, "name", None)
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if name in _REGISTRY:
        raise ValueError(f"workload {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def workload_registry() -> Dict[str, Type["Workload"]]:
    """All registered workloads, sorted by name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def get_workload(name: str) -> Type["Workload"]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None


def cli_workloads() -> List[Type["Workload"]]:
    """The workloads that generate their own ``repro <name>`` subcommand."""
    return [cls for _name, cls in sorted(_REGISTRY.items()) if cls.cli]


class Workload:
    """Base class every workload family implements.

    Subclasses set the class attributes, implement :meth:`run`, and
    usually :meth:`build` and :meth:`format_result`.  Instances are
    cheap parameter holders; all heavy lifting happens in ``run()``.
    """

    #: Registry key and CLI subcommand name.
    name: ClassVar[str] = ""
    #: One-line description for ``repro list``.
    summary: ClassVar[str] = ""
    #: The parameter dataclass (its fields drive CLI generation).
    Params: ClassVar[type] = None
    #: Whether this workload gets its own generated subcommand.
    cli: ClassVar[bool] = False
    #: Optional longer description for the generated subparser.
    epilog: ClassVar[Optional[str]] = None

    def __init__(self, params=None):
        self.params = params if params is not None else self.Params()

    def build(self, cluster=None, rng=None):
        """Materialize datasets / policies onto ``cluster`` (or build a
        cluster when ``None``); returns the cluster.  Optional — some
        workloads only make sense end to end through :meth:`run`."""
        raise NotImplementedError(f"{self.name} has no standalone build()")

    def run(self):
        """Execute the workload end to end; returns a result object."""
        raise NotImplementedError

    def format_result(self, result) -> str:
        """Human-readable report for the CLI (and the ``.txt`` output)."""
        return str(result)

    def result_payload(self, result) -> dict:
        """JSON payload for the ``.json`` output."""
        return result.to_dict()

    def exit_code(self, result) -> int:
        """CLI exit status for ``result`` (0 unless a check failed)."""
        return 0


# -- CLI generation -----------------------------------------------------------------


def add_workload_arguments(parser: argparse.ArgumentParser, params_cls) -> None:
    """Generate ``parser`` arguments from a params dataclass.

    Field ``metadata`` keys:

    * ``"flag"`` — the option string (default ``--<field-with-dashes>``);
    * ``"help"`` — help text;
    * ``"choices"`` — restrict values;
    * ``"invert"`` — for default-``True`` booleans: the flag *clears*
      the field (``--no-ignem`` -> ``ignem=False``);
    * ``"cli": False`` — the field is not CLI-settable.

    The ``seed`` field is skipped: every subcommand inherits ``--seed``
    from the shared parent parser.
    """
    for field in fields(params_cls):
        metadata = field.metadata
        if not metadata.get("cli", True) or field.name == "seed":
            continue
        if field.default is MISSING:
            raise ValueError(
                f"CLI param {params_cls.__name__}.{field.name} needs a "
                "default (or metadata {'cli': False})"
            )
        flag = metadata.get("flag", "--" + field.name.replace("_", "-"))
        kwargs: dict = {
            "dest": field.name,
            "default": field.default,
            "help": metadata.get("help"),
        }
        if isinstance(field.default, bool):
            kwargs["action"] = (
                "store_false" if metadata.get("invert") else "store_true"
            )
        else:
            kwargs["type"] = type(field.default)
            if "choices" in metadata:
                kwargs["choices"] = metadata["choices"]
        parser.add_argument(flag, **kwargs)


def params_from_args(params_cls, args: argparse.Namespace):
    """Rebuild a params dataclass from parsed CLI arguments."""
    kwargs = {}
    for field in fields(params_cls):
        if not field.metadata.get("cli", True):
            continue
        if field.name == "seed":
            kwargs["seed"] = args.seed
        else:
            kwargs[field.name] = getattr(args, field.name)
    return params_cls(**kwargs)


def cli_metadata(
    flag: Optional[str] = None,
    help: Optional[str] = None,  # noqa: A002 - mirrors argparse's keyword
    choices=None,
    invert: bool = False,
    cli: bool = True,
) -> Dict[str, object]:
    """Build field metadata for :func:`add_workload_arguments` without
    sprinkling dict literals through every params dataclass."""
    metadata: Dict[str, object] = {"cli": cli}
    if flag is not None:
        metadata["flag"] = flag
    if help is not None:
        metadata["help"] = help
    if choices is not None:
        metadata["choices"] = tuple(choices)
    if invert:
        metadata["invert"] = True
    return metadata
