"""Registry adapters: every workload family as a :class:`Workload`.

The batch families (SWIM, sort, wordcount, Google-trace) predate the
unified protocol; their adapters wrap the experiment-layer entry points
lazily (imported inside ``run()`` so the workloads package never drags
the experiments package in at import time).  ``scale`` and ``serve``
are native: their params dataclasses carry CLI metadata and their
subcommands are generated from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .base import Workload, cli_metadata, register_workload
from .scale import ScaleConfig
from .serve import ServeConfig


@register_workload
class ServeWorkload(Workload):
    name = "serve"
    summary = "interactive request serving with latency SLOs"
    Params = ServeConfig
    cli = True
    epilog = (
        "Replay a seeded multi-tenant request stream (Zipfian object "
        "popularity, diurnal load, optional flash crowds) against the "
        "cluster under --policy none (plain HDFS), hint (oracle Ignem "
        "pin), or heat (hint-free popularity-driven migration).  Writes "
        "serve.json and serve.txt under --out and prints the SLO "
        "summary (p50/p99/p999 read latency)."
    )

    def build(self, cluster=None, rng=None):
        from ..cluster import Cluster, ClusterConfig
        from .serve import object_path

        params = self.params
        if cluster is None:
            cluster = Cluster(
                ClusterConfig(
                    num_nodes=params.num_nodes,
                    replication=min(params.replication, params.num_nodes),
                    seed=params.seed,
                )
            )
        for index in range(params.num_objects):
            cluster.client.create_file(
                object_path(index), params.object_bytes
            )
        return cluster

    def run(self):
        from .serve import run_serve

        return run_serve(self.params)

    def format_result(self, result) -> str:
        from .serve import format_serve_result

        return format_serve_result(result)


@register_workload
class ScaleWorkload(Workload):
    name = "scale"
    summary = "replay a Google-trace-shaped workload at cluster scale"
    Params = ScaleConfig
    cli = True
    epilog = (
        "Drive synthetic Google-trace rows through a full simulated "
        "cluster: one input file, migrate call, read wave, and evict "
        "call per job (see repro.workloads.scale).  Writes scale.json "
        "and scale.txt under --out and prints the replay summary.  "
        "The default shape (10k nodes, 100k jobs) is the kernel's "
        "headline stress run; it finishes in minutes on one core."
    )

    def build(self, cluster=None, rng=None):
        from .scale import build_scale_cluster

        if cluster is not None:
            raise ValueError("scale builds its own cluster")
        return build_scale_cluster(self.params)

    def run(self):
        from .scale import run_scale_replay

        return run_scale_replay(self.params)

    def format_result(self, result) -> str:
        from .scale import format_scale_result

        return format_scale_result(result)


@dataclass(frozen=True)
class SwimParams:
    """Knobs of one SWIM run (the paper's Section IV-B workload)."""

    mode: str = field(
        default="ignem",
        metadata=cli_metadata(choices=("hdfs", "ignem", "ram")),
    )
    num_jobs: int = 200
    seed: int = 0


@register_workload
class SwimWorkload(Workload):
    name = "swim"
    summary = "synthetic Facebook SWIM trace (200 batch jobs, 170GB)"
    Params = SwimParams

    def build(self, cluster=None, rng=None):
        from ..experiments.swim_runs import prepare_swim_cluster

        prepared, _jobs, _specs, _arrivals = prepare_swim_cluster(
            self.params.mode,
            seed=self.params.seed,
            num_jobs=self.params.num_jobs,
        )
        return prepared

    def run(self):
        from ..experiments.swim_runs import run_swim

        return run_swim(
            self.params.mode,
            seed=self.params.seed,
            num_jobs=self.params.num_jobs,
        )

    def format_result(self, result) -> str:
        mean = result.collector.mean_job_duration()
        return (
            f"swim [{result.mode}]: {self.params.num_jobs} jobs, "
            f"mean duration {mean:.1f}s"
        )

    def result_payload(self, result) -> Dict[str, object]:
        return {
            "mode": result.mode,
            "num_jobs": self.params.num_jobs,
            "mean_job_duration": result.collector.mean_job_duration(),
        }


@dataclass(frozen=True)
class SortParams:
    """The standalone 40GB sort job (paper Table III)."""

    mode: str = field(
        default="ignem",
        metadata=cli_metadata(choices=("hdfs", "ignem", "ram")),
    )
    seed: int = 0


@register_workload
class SortWorkload(Workload):
    name = "sort"
    summary = "standalone 40GB sort job (paper Table III)"
    Params = SortParams

    def run(self):
        from ..experiments.table3_sort import run_sort_once

        return run_sort_once(self.params.mode, seed=self.params.seed)

    def format_result(self, result) -> str:
        return f"sort [{self.params.mode}]: {result:.1f}s"

    def result_payload(self, result) -> Dict[str, object]:
        return {"mode": self.params.mode, "duration": result}


@dataclass(frozen=True)
class WordcountParams:
    """The wordcount size sweep of paper Fig 8."""

    mode: str = field(
        default="ignem",
        metadata=cli_metadata(choices=("hdfs", "ignem", "ignem+10s", "ram")),
    )
    seed: int = 0


@register_workload
class WordcountWorkload(Workload):
    name = "wordcount"
    summary = "wordcount input-size sweep (paper Fig 8)"
    Params = WordcountParams

    def run(self):
        from ..experiments.fig8_wordcount import run_wordcount_point
        from .wordcount import DEFAULT_SIZES_GB

        return [
            (
                float(input_gb),
                run_wordcount_point(
                    self.params.mode, input_gb, seed=self.params.seed
                ),
            )
            for input_gb in DEFAULT_SIZES_GB
        ]

    def format_result(self, result) -> str:
        points = ", ".join(f"{gb:g}GB={dur:.0f}s" for gb, dur in result)
        return f"wordcount [{self.params.mode}]: {points}"

    def result_payload(self, result) -> Dict[str, object]:
        return {
            "mode": self.params.mode,
            "durations": {f"{gb:g}": dur for gb, dur in result},
        }


@dataclass(frozen=True)
class GoogleTraceParams:
    """The Section II feasibility replay of the Google cluster trace."""

    num_jobs: int = 1000
    seed: int = 0


@register_workload
class GoogleTraceWorkload(Workload):
    name = "google-trace"
    summary = "synthetic Google cluster trace (Section II feasibility)"
    Params = GoogleTraceParams

    def run(self):
        from .google_trace import GoogleTraceGenerator

        return GoogleTraceGenerator(seed=self.params.seed).generate_jobs(
            self.params.num_jobs
        )

    def format_result(self, result) -> str:
        total_read = sum(job.total_read_time for job in result)
        return (
            f"google-trace: {len(result)} jobs, "
            f"{total_read:.0f}s total disk-read time"
        )

    def result_payload(self, result) -> Dict[str, object]:
        return {
            "num_jobs": len(result),
            "total_read_time": sum(job.total_read_time for job in result),
        }
