"""Deterministic structured tracing keyed on simulation time.

The :class:`Tracer` records spans ("X" phase) and instant events ("i"
phase) in the Chrome ``trace_event`` JSON format, with timestamps taken
from the simulation clock (microseconds of sim-time, never wall-clock).
Because the simulator is deterministic, two runs with the same seed emit
byte-identical traces — the tracer itself never reads wall-clock time,
random state, or object ids.

Output is JSONL: one trace-event object per line, sorted by timestamp,
so downstream tools can stream it and the shipped schema checker
(:mod:`repro.obs.schema`) can assert monotonicity.  The companion
:class:`TraceReader` loads a JSONL trace back and can re-wrap it as a
``{"traceEvents": [...]}`` array for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import pathlib
from operator import itemgetter
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Trace categories, enabling instrumentation per layer.  "sim" (the
#: event-dispatch kernel) is deliberately absent from the default set:
#: kernel-level tracing multiplies event volume by the dispatch count and
#: is only worth paying for when debugging the simulator itself.
ALL_CATEGORIES: FrozenSet[str] = frozenset(
    {
        "sim",
        "storage",
        "net",
        "dfs",
        "repair",
        "ignem",
        "scheduler",
        "job",
        "transport",
    }
)
DEFAULT_CATEGORIES: FrozenSet[str] = ALL_CATEGORIES - {"sim"}

#: Conversion from sim-time seconds to trace microseconds.
_US = 1e6


class Tracer:
    """Collects trace events against a simulation clock.

    Parameters
    ----------
    env:
        Anything with a ``now`` attribute in seconds (the simulation
        :class:`~repro.sim.engine.Environment`).
    categories:
        Enabled trace categories; emissions for other categories are
        dropped at the call site (callers check :meth:`enabled`).
    """

    def __init__(self, env, categories: Iterable[str] = DEFAULT_CATEGORIES):
        self.env = env
        unknown = set(categories) - ALL_CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown trace categories {sorted(unknown)}; "
                f"choose from {sorted(ALL_CATEGORIES)}"
            )
        self.categories: FrozenSet[str] = frozenset(categories)
        #: Event tuples ``(ts_us, dur_us|None, ph, name, cat, tid, args)``.
        self._events: List[Tuple] = []
        #: Thread-name registry: chrome wants integer tids; we map stable
        #: human-readable lane names (node names, "jobs", "network") to
        #: ids in first-use order, which is deterministic.
        self._tids: Dict[str, int] = {}

    # -- emission --------------------------------------------------------------

    def enabled(self, category: str) -> bool:
        return category in self.categories

    def _tid(self, lane: str) -> int:
        tid = self._tids.get(lane)
        if tid is None:
            tid = self._tids[lane] = len(self._tids)
        return tid

    def instant(
        self,
        name: str,
        category: str,
        lane: str = "cluster",
        args: Optional[Dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Record a point-in-time event at ``ts`` (default: now)."""
        when = self.env.now if ts is None else ts
        self._events.append(
            (when * _US, None, "i", name, category, self._tid(lane), args)
        )

    def complete(
        self,
        name: str,
        category: str,
        start: float,
        end: Optional[float] = None,
        lane: str = "cluster",
        args: Optional[Dict] = None,
    ) -> None:
        """Record a completed span from ``start`` to ``end`` (default: now)."""
        finish = self.env.now if end is None else end
        self._events.append(
            (
                start * _US,
                max(0.0, (finish - start) * _US),
                "X",
                name,
                category,
                self._tid(lane),
                args,
            )
        )

    @property
    def num_events(self) -> int:
        return len(self._events)

    # -- serialization ----------------------------------------------------------

    def lines(self) -> List[str]:
        """The trace as JSONL lines (no trailing newlines), ts-sorted.

        Spans are recorded when they *finish* but carry their *start*
        timestamp (Chrome "X" semantics), so a stable sort on ts restores
        global time order; stability keeps same-instant events in
        execution order, which is deterministic.
        """
        out: List[str] = []
        for lane, tid in self._tids.items():
            out.append(
                json.dumps(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "cat": "__metadata",
                        "ts": 0,
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": lane},
                    },
                    sort_keys=True,
                )
            )
        # Hand-rolled formatting (json.dumps only for the free-form args
        # dict): dumping tens of thousands of events is the hottest part
        # of a traced run, and every fixed field is a known-safe scalar.
        # Keys stay in sorted order so output matches sort_keys=True.
        dumps = json.dumps
        append = out.append
        for ts, dur, ph, name, cat, tid, args in sorted(
            self._events, key=itemgetter(0)
        ):
            # args keep their (deterministic) emission-site key order;
            # only the fixed envelope keys are promised sorted.
            head = (
                f'{{"args": {dumps(args)}, ' if args is not None else "{"
            )
            mid = f'"dur": {dur!r}, ' if dur is not None else ""
            append(
                f'{head}"cat": "{cat}", {mid}"name": "{name}", '
                f'"ph": "{ph}", "pid": 0, "tid": {tid}, "ts": {ts!r}}}'
            )
        return out

    def dump(self, path) -> pathlib.Path:
        """Write the trace as JSONL; returns the path written."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.lines()) + "\n")
        return target

    def __repr__(self) -> str:
        return (
            f"<Tracer events={len(self._events)} "
            f"categories={sorted(self.categories)}>"
        )


class TraceReader:
    """Loads a JSONL trace back into structured form.

    ``TraceReader.load(path)`` parses the file written by
    :meth:`Tracer.dump`; :meth:`to_chrome` re-wraps it as the JSON-array
    format that ``chrome://tracing`` and Perfetto open directly.
    """

    def __init__(self, events: List[Dict]):
        self.events = events

    @classmethod
    def load(cls, path) -> "TraceReader":
        events = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return cls(events)

    # -- queries ----------------------------------------------------------------

    def filter(
        self, name: Optional[str] = None, category: Optional[str] = None
    ) -> List[Dict]:
        return [
            event
            for event in self.events
            if (name is None or event.get("name") == name)
            and (category is None or event.get("cat") == category)
        ]

    def spans(self, name: Optional[str] = None) -> List[Dict]:
        """All complete-spans (optionally by name)."""
        return [
            event
            for event in self.filter(name=name)
            if event.get("ph") == "X"
        ]

    def durations(self, name: str) -> List[float]:
        """Span durations for ``name``, converted back to seconds."""
        return [event["dur"] / _US for event in self.spans(name)]

    def lanes(self) -> Dict[int, str]:
        """tid -> human-readable lane name, from the metadata events."""
        return {
            event["tid"]: event["args"]["name"]
            for event in self.events
            if event.get("ph") == "M" and event.get("name") == "thread_name"
        }

    def to_chrome(self, path) -> pathlib.Path:
        """Write the ``{"traceEvents": [...]}`` array format for
        ``chrome://tracing`` / Perfetto; returns the path written."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps({"traceEvents": self.events}, sort_keys=True) + "\n"
        )
        return target

    def __repr__(self) -> str:
        return f"<TraceReader events={len(self.events)}>"
