"""Central metrics registry: named counters, gauges, and histograms.

Every subsystem reports into one :class:`MetricsRegistry` under a
``component.event`` naming scheme (``ignem.master.commands_sent``,
``scheduler.queue_wait_seconds``, ...).  The registry is passive — it
never touches simulation time — and deterministic: snapshots are sorted
by name, so two runs with the same seed serialize byte-identically.

Three instrument kinds:

* :class:`Counter` — a monotonically increasing event count;
* :class:`Gauge` — a settable level (also usable as an up/down counter);
* :class:`Histogram` — count/sum/min/max plus fixed-boundary buckets.

Pull metrics (:meth:`MetricsRegistry.register_pull`) let existing ad-hoc
tallies (``ResourceManager.tasks_launched``, device byte totals, cache
hit counts) surface in the same snapshot without touching hot paths.
"""

from __future__ import annotations

import json
import pathlib
import re
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Instrument names must follow the ``component.event`` scheme: lowercase
#: dotted segments of ``[a-z0-9_]``.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Default histogram bucket boundaries, in the unit being observed
#: (seconds for every latency histogram in this package).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.01,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not follow the 'component.event' "
            "scheme (lowercase dotted segments of [a-z0-9_])"
        )
    return name


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n})")
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A level that can move both ways (queue depths, resident bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A fixed-boundary histogram with count/sum/min/max.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final bucket
    counts everything above the last boundary.  Boundaries are fixed at
    creation so two runs produce structurally identical snapshots.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must ascend, got {bounds}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # bisect_left returns the first bucket whose bound >= value
        # (i.e. "value <= bound"), or len(bounds) for the overflow bucket.
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no observations")
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket counts.

        Linear interpolation inside the target bucket (the Prometheus
        ``histogram_quantile`` estimator), clamped to the observed
        min/max so tiny samples do not report a bucket boundary the run
        never reached.  The overflow bucket reports the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no observations")
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index == len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                within = rank - (cumulative - bucket_count)
                estimate = lower + (upper - lower) * within / bucket_count
                return min(max(estimate, self.min), self.max)
        return self.max

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    The registry is shared: the cluster owns one and hands it to every
    subsystem, so a single :meth:`snapshot` covers the whole run.  Two
    components asking for the same name share the instrument (this is how
    an HA master pair naturally sums into one cluster-wide counter).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._pulls: Dict[str, Callable[[], float]] = {}

    # -- instrument factories --------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[_check_name(name)] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[_check_name(name)] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[_check_name(name)] = Histogram(
                name, bounds
            )
        return instrument

    def register_pull(self, name: str, fn: Callable[[], float]) -> None:
        """Register a zero-overhead pull metric, evaluated at snapshot
        time.  Lets pre-existing ad-hoc tallies surface in the unified
        snapshot without instrumenting their hot paths."""
        self._pulls[_check_name(name)] = fn

    # -- queries ----------------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter, gauge, or pull metric."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._pulls:
            return self._pulls[name]()
        raise KeyError(f"no counter, gauge, or pull metric named {name!r}")

    def names(self) -> List[str]:
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._histograms)
            | set(self._pulls)
        )

    def snapshot(self) -> Dict:
        """Deterministic full dump: all instruments, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "pulls": {name: self._pulls[name]() for name in sorted(self._pulls)},
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def write(self, path) -> pathlib.Path:
        """Write the snapshot as pretty-printed JSON; returns the path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"
        )
        return target

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)} "
            f"pulls={len(self._pulls)}>"
        )
