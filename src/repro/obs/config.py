"""Observability configuration, carried on the cluster config."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from .trace import DEFAULT_CATEGORIES


@dataclass(frozen=True)
class ObservabilityConfig:
    """How (and whether) a cluster run is instrumented.

    Disabled by default: the clean path takes no tracer allocations, no
    per-event callbacks, and produces bit-identical outputs to a build
    without the observability layer.  The shared
    :class:`~repro.obs.registry.MetricsRegistry` always exists (counter
    bumps are a few nanoseconds and never touch simulation time), but
    tracing, span callbacks, and snapshot/trace files are all opt-in.

    Parameters
    ----------
    enabled:
        Master switch for tracing instrumentation.
    categories:
        Trace categories to record (see
        :data:`~repro.obs.trace.ALL_CATEGORIES`).  The default set covers
        every application layer; the "sim" kernel category is opt-in via
        ``sim_events`` because it scales with raw event-dispatch volume.
    sim_events:
        Also trace the simulation kernel (event dispatches and process
        wakeups).  Expensive; for debugging the simulator itself.
    trace_path:
        When set, :meth:`repro.cluster.Cluster.run` writes the JSONL
        trace here after the run.
    metrics_path:
        When set, :meth:`repro.cluster.Cluster.run` writes the metrics
        snapshot (JSON) here after the run.
    transport_metrics:
        Bind ``transport.*`` send/receive/bytes counters (and, when
        tracing is active, per-message trace events) onto the cluster's
        message transport.  Off by default: counting a message encodes
        it to measure wire size, a cost — and a metrics-snapshot
        difference — the bit-identical clean path must not carry.
    """

    enabled: bool = False
    categories: FrozenSet[str] = DEFAULT_CATEGORIES
    sim_events: bool = False
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    transport_metrics: bool = False

    def effective_categories(self) -> FrozenSet[str]:
        cats = frozenset(self.categories)
        if self.sim_events:
            cats = cats | {"sim"}
        return cats
