"""Trace schema checker: validates JSONL traces emitted by the Tracer.

Shipped with the package (and wired into CI) so any traced run can be
mechanically checked: every line must be a well-formed Chrome
``trace_event`` object, every event name must be registered in
:data:`KNOWN_EVENTS`, and timestamps must be non-decreasing.

Usage::

    python -m repro.obs.schema trace.jsonl

exits 0 on a valid trace and 1 with one error per line otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Union

from .trace import ALL_CATEGORIES

#: Every event name the instrumentation may emit, with its category.
#: The checker fails on names outside this registry, so adding an event
#: to the code without registering it here is caught by CI.
KNOWN_EVENTS: Dict[str, str] = {
    # sim kernel (opt-in category)
    "sim.dispatch": "sim",
    # storage layer
    "storage.transfer": "storage",
    "cache.insert": "storage",
    "cache.evict": "storage",
    # network
    "net.transfer": "net",
    # DFS
    "dfs.read": "dfs",
    # self-healing replication (repair / thinning / decommission)
    "dfs.repair.copy": "repair",
    "dfs.repair.drop": "repair",
    "dfs.repair.decommission": "repair",
    # Ignem master/slave
    "ignem.command.sent": "ignem",
    "ignem.command.retry": "ignem",
    "ignem.command.rerouted": "ignem",
    "ignem.command.abandoned": "ignem",
    "ignem.migration": "ignem",
    "ignem.eviction": "ignem",
    "ignem.do_not_harm_wait": "ignem",
    # scheduler
    "scheduler.launch": "scheduler",
    # MapReduce lifecycle
    "mapreduce.job": "job",
    "mapreduce.task": "job",
}

#: Metadata events (thread-name declarations) allowed alongside data.
_METADATA_NAMES = {"thread_name"}
_ALLOWED_PHASES = {"X", "i", "M"}
_REQUIRED_KEYS = {"name", "ph", "cat", "ts", "pid", "tid"}


def validate_lines(lines: Iterable[str]) -> List[str]:
    """Validate trace lines; returns a list of error strings (empty = ok)."""
    errors: List[str] = []
    last_ts = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"line {lineno}: not valid JSON ({error})")
            continue
        if not isinstance(event, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        missing = _REQUIRED_KEYS - set(event)
        if missing:
            errors.append(f"line {lineno}: missing keys {sorted(missing)}")
            continue
        phase = event["ph"]
        if phase not in _ALLOWED_PHASES:
            errors.append(f"line {lineno}: unknown phase {phase!r}")
            continue
        name = event["name"]
        if phase == "M":
            if name not in _METADATA_NAMES:
                errors.append(f"line {lineno}: unknown metadata event {name!r}")
            continue
        if name not in KNOWN_EVENTS:
            errors.append(f"line {lineno}: unknown event type {name!r}")
            continue
        category = event["cat"]
        if category not in ALL_CATEGORIES:
            errors.append(f"line {lineno}: unknown category {category!r}")
        elif KNOWN_EVENTS[name] != category:
            errors.append(
                f"line {lineno}: event {name!r} has category {category!r}, "
                f"expected {KNOWN_EVENTS[name]!r}"
            )
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"line {lineno}: bad timestamp {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"line {lineno}: non-monotonic timestamp {ts} < {last_ts}"
            )
        last_ts = ts
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"line {lineno}: span with bad dur {dur!r}")
    return errors


def validate_trace(path_or_lines: Union[str, Iterable[str]]) -> List[str]:
    """Validate a trace file (by path) or an iterable of JSONL lines."""
    if isinstance(path_or_lines, (str, bytes)) or hasattr(
        path_or_lines, "__fspath__"
    ):
        with open(path_or_lines) as handle:
            return validate_lines(handle)
    return validate_lines(path_or_lines)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.jsonl", file=sys.stderr)
        return 2
    errors = validate_trace(argv[0])
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"{argv[0]}: INVALID ({len(errors)} errors)", file=sys.stderr)
        return 1
    print(f"{argv[0]}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
