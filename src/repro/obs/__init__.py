"""Observability subsystem: structured tracing + metrics registry.

Public surface:

* :class:`~repro.obs.config.ObservabilityConfig` — per-cluster switch;
* :class:`~repro.obs.registry.MetricsRegistry` (+ Counter/Gauge/Histogram);
* :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.TraceReader`;
* :class:`~repro.obs.api.Observability` — the facade clusters carry;
* :mod:`repro.obs.schema` — the trace validator CI runs.
"""

from .api import Observability
from .config import ObservabilityConfig
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import KNOWN_EVENTS, validate_trace
from .trace import ALL_CATEGORIES, DEFAULT_CATEGORIES, Tracer, TraceReader

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_BUCKETS",
    "DEFAULT_CATEGORIES",
    "KNOWN_EVENTS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "TraceReader",
    "Tracer",
    "validate_trace",
]
