"""The observability facade: one object bundling registry + tracer.

A :class:`Observability` instance is created by every
:class:`~repro.cluster.Cluster` (the registry side is always live — it
is pure bookkeeping).  Tracing is opt-in: :meth:`Observability.activate`
builds the :class:`~repro.obs.trace.Tracer` and :meth:`attach` threads
span/instant emission hooks through the cluster's layers — storage
devices, buffer caches, network, DFS client, scheduler, MapReduce
engine, Ignem master/slaves, and (when the "sim" category is enabled)
the event-dispatch kernel itself.

Components carry a plain ``obs`` attribute that stays ``None`` on the
clean path; every hot-path hook is a single ``is None`` check, which is
how the disabled configuration keeps bit-identical outputs and
near-zero overhead.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.events import Event
from ..sim.process import Process
from .config import ObservabilityConfig
from .registry import MetricsRegistry
from .trace import Tracer

#: The unbound Process wakeup method; the kernel monitor classifies
#: callbacks against it to count process wakeups without touching the
#: clean-path run loop.
_RESUME = Process._resume


def _fmt_tag(tag) -> str:
    """Deterministic, compact rendering of transfer tags for trace args."""
    if type(tag) is str:
        return tag
    if tag is None:
        return ""
    if isinstance(tag, tuple):
        return ":".join(str(part) for part in tag)
    return str(tag)


class _KernelMonitor:
    """Per-dispatch hook installed on the Environment (sim category only).

    Counts every dispatched event and every process wakeup; optionally
    emits an instant trace event per dispatch.  This is the one piece of
    instrumentation that scales with raw kernel event volume, which is
    why it hides behind ``ObservabilityConfig.sim_events``.
    """

    __slots__ = ("_dispatches", "_wakeups", "_tracer")

    def __init__(self, registry: MetricsRegistry, tracer: Optional[Tracer]):
        self._dispatches = registry.counter("sim.events_dispatched")
        self._wakeups = registry.counter("sim.process_wakeups")
        self._tracer = tracer

    def __call__(self, when: float, event, callbacks) -> None:
        self._dispatches.inc()
        wakeups = 0
        for callback in callbacks:
            if getattr(callback, "__func__", None) is _RESUME:
                wakeups += 1
        if wakeups:
            self._wakeups.inc(wakeups)
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "sim.dispatch",
                "sim",
                lane="kernel",
                args={"type": type(event).__name__, "callbacks": len(callbacks)},
                ts=when,
            )


class Observability:
    """Registry + optional tracer behind the cluster's instrumentation API.

    Lifecycle::

        obs = Observability(env)          # registry live, tracer off
        obs.activate()                    # build the tracer
        obs.attach(cluster)               # wire hooks through the stack
        ... run ...
        obs.tracer.dump("trace.jsonl")
        obs.registry.write("metrics.json")

    :meth:`repro.cluster.Cluster.run` drives all of this from
    ``run(options=RunOptions(...))`` / ``ObservabilityConfig``.
    """

    def __init__(
        self,
        env,
        config: Optional[ObservabilityConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.config = config or ObservabilityConfig()
        self.registry = registry or MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        self._attached = False
        # Instruments bound lazily at activate()/attach() time.
        self._h_net = None
        self._h_dfs = None
        self._h_sched_wait = None
        self._h_job = None
        self._h_map = None
        self._h_reduce = None

    @property
    def active(self) -> bool:
        """Whether tracing instrumentation is live."""
        return self.tracer is not None

    def activate(self, categories=None) -> Tracer:
        """Build the tracer (idempotent); returns it."""
        if self.tracer is None:
            cats = (
                frozenset(categories)
                if categories is not None
                else self.config.effective_categories()
            )
            self.tracer = Tracer(self.env, cats)
        return self.tracer

    # -- wiring ------------------------------------------------------------------

    def attach(self, cluster) -> None:
        """Thread instrumentation hooks through an assembled cluster.

        Requires :meth:`activate` first; idempotent.  Components touched:
        every DataNode's disk/ram devices and buffer cache, every NIC,
        the network, DFS client, ResourceManager, MapReduce engine, the
        Ignem master/slaves when enabled, and the sim kernel when the
        "sim" category is on.
        """
        if self.tracer is None:
            raise RuntimeError("call activate() before attach()")
        if self._attached:
            return
        self._attached = True
        tracer = self.tracer
        registry = self.registry

        self._h_net = registry.histogram("net.transfer_seconds")
        self._h_dfs = registry.histogram("dfs.read_seconds")
        self._h_sched_wait = registry.histogram("scheduler.queue_wait_seconds")
        self._h_job = registry.histogram("mapreduce.job_seconds")
        self._h_map = registry.histogram("mapreduce.map_seconds")
        self._h_reduce = registry.histogram("mapreduce.reduce_seconds")

        if tracer.enabled("sim"):
            cluster.env.monitor = _KernelMonitor(registry, tracer)

        if tracer.enabled("storage"):
            for name in sorted(cluster.datanodes):
                datanode = cluster.datanodes[name]
                # Device lanes keep their historical labels on the
                # default hierarchy: the bottom tier is "disk", the top
                # "ram"; middle tiers (3-tier presets) are labelled by
                # their tier name.
                tiers = datanode.tiers
                for tier in tiers:
                    if tier is tiers.bottom:
                        label = "disk"
                    elif tier is tiers.top:
                        label = "ram"
                    else:
                        label = tier.spec.name
                    self._attach_device(tier.device, label, name)
                for tier in tiers.upper:
                    suffix = (
                        "" if tier is tiers.top else f"-{tier.spec.name}"
                    )
                    self._attach_cache(tier.cache, name, suffix)
            for node in sorted(cluster.network._nics):
                self._attach_device(
                    cluster.network._nics[node].device, "nic", node
                )

        cluster.network.obs = self
        cluster.client.obs = self
        cluster.rm.obs = self
        cluster.engine.obs = self
        # Jobs submitted before activation (submit-then-run(trace=...))
        # were constructed with obs=None; backfill so their lifecycle
        # events are traced too.
        for job in cluster.engine.jobs:
            if job.obs is None:
                job.obs = self
        if cluster.ignem_master is not None:
            self.attach_ignem(cluster.ignem_master, cluster.ignem_slaves)
        if cluster.replication_monitor is not None:
            cluster.replication_monitor.obs = self

    def attach_datanode(self, cluster, name: str) -> None:
        """Wire a freshly joined DataNode (cluster elasticity) with the
        same storage instrumentation :meth:`attach` gave the originals.
        No-op until the cluster has been attached."""
        if self.tracer is None or not self._attached:
            return
        if self.tracer.enabled("storage"):
            datanode = cluster.datanodes[name]
            tiers = datanode.tiers
            for tier in tiers:
                if tier is tiers.bottom:
                    label = "disk"
                elif tier is tiers.top:
                    label = "ram"
                else:
                    label = tier.spec.name
                self._attach_device(tier.device, label, name)
            for tier in tiers.upper:
                suffix = "" if tier is tiers.top else f"-{tier.spec.name}"
                self._attach_cache(tier.cache, name, suffix)
            nic = cluster.network._nics.get(name)
            if nic is not None:
                self._attach_device(nic.device, "nic", name)

    def attach_ignem(self, master, slaves) -> None:
        """Wire the Ignem master (or HA pair) and slaves for tracing."""
        master.obs = self
        for name in sorted(slaves):
            slaves[name].obs = self

    def register_cluster_pulls(self, cluster) -> None:
        """Surface the cluster's pre-existing ad-hoc tallies as pull
        metrics, evaluated only at snapshot time (zero hot-path cost).
        Called unconditionally from cluster assembly, so even untraced
        runs get a meaningful metrics snapshot."""
        registry = self.registry
        env = cluster.env
        rm = cluster.rm
        network = cluster.network
        engine = cluster.engine
        datanodes = cluster.datanodes

        registry.register_pull("sim.now", lambda: env.now)
        registry.register_pull(
            "scheduler.tasks_launched", lambda: rm.tasks_launched
        )
        registry.register_pull(
            "scheduler.tasks_finished", lambda: rm.tasks_finished
        )
        registry.register_pull(
            "scheduler.tasks_retried", lambda: rm.tasks_retried
        )
        registry.register_pull(
            "scheduler.tasks_abandoned", lambda: rm.tasks_abandoned
        )
        registry.register_pull(
            "net.transfers_failed", lambda: network.transfers_failed
        )
        registry.register_pull(
            "mapreduce.jobs_submitted", lambda: len(engine.jobs)
        )
        registry.register_pull(
            "cache.hits",
            lambda: sum(dn.cache.hits for dn in datanodes.values()),
        )
        registry.register_pull(
            "cache.misses",
            lambda: sum(dn.cache.misses for dn in datanodes.values()),
        )
        registry.register_pull(
            "cache.evictions",
            lambda: sum(dn.cache.evictions for dn in datanodes.values()),
        )
        registry.register_pull(
            "storage.disk.bytes_moved",
            lambda: sum(dn.disk.bytes_moved for dn in datanodes.values()),
        )
        registry.register_pull(
            "storage.disk.busy_seconds",
            lambda: sum(dn.disk.busy_time for dn in datanodes.values()),
        )
        registry.register_pull(
            "storage.ram.bytes_moved",
            lambda: sum(dn.ram.bytes_moved for dn in datanodes.values()),
        )

    # -- per-component wiring ------------------------------------------------------

    def _attach_device(self, device, label: str, node: str) -> None:
        tracer = self.tracer
        counter = self.registry.counter(f"storage.{label}.transfers")
        nbytes_total = self.registry.counter(f"storage.{label}.bytes")
        hist = self.registry.histogram(f"storage.{label}.transfer_seconds")
        env = self.env
        lane = f"{node}/{label}"

        def on_complete(record):
            counter.inc()
            nbytes_total.inc(record.nbytes)
            start = record.submitted_at
            hist.observe(env.now - start)
            tracer.complete(
                "storage.transfer",
                "storage",
                start,
                lane=lane,
                args={
                    "device": label,
                    "bytes": round(record.nbytes),
                    "tag": _fmt_tag(record.tag),
                },
            )

        device.on_complete = on_complete

    def _attach_cache(self, cache, node: str, suffix: str = "") -> None:
        tracer = self.tracer
        lane = f"{node}/cache{suffix}"

        def on_event(op, key, nbytes):
            tracer.instant(
                f"cache.{op}",
                "storage",
                lane=lane,
                args={"key": _fmt_tag(key), "bytes": round(nbytes)},
            )

        cache.on_event = on_event

    @staticmethod
    def _subscribe(event: Event, fn: Callable[[Event], None]) -> None:
        """Observe an event's completion without changing failure
        semantics: if the observer turns out to be the *only* callback on
        a failed event, re-raise so the kernel still surfaces the
        unhandled failure exactly as it would have untraced."""
        callbacks = event.callbacks
        if callbacks is None:
            fn(event)
            return

        def wrapper(ev, _callbacks=callbacks, _fn=fn):
            _fn(ev)
            if not ev._ok and len(_callbacks) == 1:
                raise ev._value

        callbacks.append(wrapper)

    # -- hook methods called by instrumented components ----------------------------

    def on_net_transfer(self, src, dst, nbytes, tag, done: Event) -> None:
        """Network.transfer hook: span from issue to completion."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("net"):
            return
        start = self.env.now
        hist = self._h_net
        env = self.env

        def finish(event):
            if hist is not None and event._ok:
                hist.observe(env.now - start)
            tracer.complete(
                "net.transfer",
                "net",
                start,
                lane="network",
                args={
                    "src": src,
                    "dst": dst,
                    "bytes": round(nbytes),
                    "tag": _fmt_tag(tag),
                    "ok": bool(event._ok),
                },
            )

        self._subscribe(done, finish)

    def on_dfs_read(
        self, source, serving, reader, block, done: Event
    ) -> None:
        """DFSClient.read_block hook: classify + span the read."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("dfs"):
            return
        medium = "memory" if source == "ram" else "disk"
        where = "local" if serving == reader else "remote"
        self.registry.counter(f"dfs.reads.{medium}_{where}").inc()
        start = self.env.now
        hist = self._h_dfs
        env = self.env

        def finish(event):
            if hist is not None and event._ok:
                hist.observe(env.now - start)
            tracer.complete(
                "dfs.read",
                "dfs",
                start,
                lane=reader,
                args={
                    "block": block.block_id,
                    "source": f"{medium}_{where}",
                    "serving": serving,
                    "bytes": round(block.nbytes),
                    "ok": bool(event._ok),
                },
            )

        self._subscribe(done, finish)

    def on_task_launch(self, task, node: str) -> None:
        """ResourceManager launch hook: queue-wait + launch instant."""
        tracer = self.tracer
        if tracer is None:
            return
        waited = self.env.now - (task.submitted_at or self.env.now)
        if self._h_sched_wait is not None:
            self._h_sched_wait.observe(waited)
        if tracer.enabled("scheduler"):
            tracer.instant(
                "scheduler.launch",
                "scheduler",
                lane=node,
                args={
                    "task": task.task_id,
                    "job": task.job_id,
                    "kind": task.kind,
                    "wait": round(waited, 6),
                },
            )

    def on_job_complete(self, job) -> None:
        """MRJob completion hook: job-lifetime span + duration histogram."""
        tracer = self.tracer
        if tracer is None:
            return
        duration = job.finished_at - job.submitted_at
        self.registry.counter("mapreduce.jobs_completed").inc()
        if self._h_job is not None:
            self._h_job.observe(duration)
        if tracer.enabled("job"):
            tracer.complete(
                "mapreduce.job",
                "job",
                job.submitted_at,
                end=job.finished_at,
                lane="jobs",
                args={
                    "job": job.job_id,
                    "name": job.spec.name,
                    "maps": job.num_maps,
                    "reduces": job.num_reduces,
                    "input_bytes": round(job.input_bytes),
                    "failed": job.failed,
                },
            )

    def on_task_complete(
        self, kind: str, task_id: str, job_id: str, node: str, start: float
    ) -> None:
        """MRJob task hook: per-task span + duration histogram."""
        tracer = self.tracer
        if tracer is None:
            return
        self.registry.counter("mapreduce.tasks_completed").inc()
        hist = self._h_map if kind == "map" else self._h_reduce
        if hist is not None:
            hist.observe(self.env.now - start)
        if tracer.enabled("job"):
            tracer.complete(
                "mapreduce.task",
                "job",
                start,
                lane=node,
                args={"task": task_id, "job": job_id, "kind": kind},
            )

    # -- self-healing replication hooks ------------------------------------------------

    def on_repair_copy(
        self,
        block_id: str,
        source: str,
        targets,
        nbytes: float,
        start: float,
        outcome: str,
        reason: str,
    ) -> None:
        """ReplicationMonitor chain-copy hook: span per pipelined copy."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("repair"):
            return
        tracer.complete(
            "dfs.repair.copy",
            "repair",
            start,
            lane="repair",
            args={
                "block": block_id,
                "source": source,
                "targets": ",".join(targets),
                "bytes": round(nbytes),
                "outcome": outcome,
                "reason": reason,
            },
        )

    def on_repair_drop(self, block_id: str, node: str, reason: str) -> None:
        """Excess-thinning / rebalance-retirement hook."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("repair"):
            return
        tracer.instant(
            "dfs.repair.drop",
            "repair",
            lane="repair",
            args={"block": block_id, "node": node, "reason": reason},
        )

    def on_repair_decommission(
        self, node: str, start: float, blocks_moved: int
    ) -> None:
        """Decommission-drain hook: span from request to full drain."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("repair"):
            return
        tracer.complete(
            "dfs.repair.decommission",
            "repair",
            start,
            lane="repair",
            args={"node": node, "blocks_moved": blocks_moved},
        )

    # -- transport hooks ---------------------------------------------------------------

    def on_transport_message(self, endpoint: str, kind: str, nbytes: int) -> None:
        """Transport delivery hook (bound only when
        ``ObservabilityConfig.transport_metrics`` is on): one instant
        event per message, tagged with endpoint, kind, and wire size."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("transport"):
            return
        tracer.instant(
            "transport.message",
            "transport",
            lane="transport",
            args={"endpoint": endpoint, "kind": kind, "nbytes": nbytes},
        )

    # -- Ignem hooks ------------------------------------------------------------------

    def on_master_command(self, what: str, node: str, kind: str, job_id: str) -> None:
        """IgnemMaster RPC hook: sent/retry/rerouted/abandoned instants."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("ignem"):
            return
        tracer.instant(
            f"ignem.command.{what}",
            "ignem",
            lane="ignem-master",
            args={"node": node, "kind": kind, "job": job_id},
        )

    def on_migration(
        self,
        node: str,
        item,
        start: float,
        outcome: str,
        queue_wait: float,
    ) -> None:
        """IgnemSlave migration hook: span (completed) or instant."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("ignem"):
            return
        args = {
            "block": item.block_id,
            "job": item.job_id,
            "bytes": round(item.block.nbytes),
            "tier": item.dst_tier,
            "outcome": outcome,
            "queue_wait": round(queue_wait, 6),
        }
        if outcome == "completed":
            tracer.complete("ignem.migration", "ignem", start, lane=node, args=args)
        else:
            tracer.instant("ignem.migration", "ignem", lane=node, args=args)

    def on_eviction(
        self, node: str, block_id: str, nbytes: float, reason: str, tier: str
    ) -> None:
        """IgnemSlave eviction hook, tagged with its cause and tier."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("ignem"):
            return
        tracer.instant(
            "ignem.eviction",
            "ignem",
            lane=node,
            args={
                "block": block_id,
                "bytes": round(nbytes),
                "reason": reason,
                "tier": tier,
            },
        )

    def on_do_not_harm_wait(
        self, node: str, block_id: str, job_id: str, start: float
    ) -> None:
        """IgnemSlave capacity-gate hook: span covering the stall."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled("ignem"):
            return
        tracer.complete(
            "ignem.do_not_harm_wait",
            "ignem",
            start,
            lane=node,
            args={"block": block_id, "job": job_id},
        )

    def __repr__(self) -> str:
        state = "active" if self.active else "passive"
        return f"<Observability {state} registry={self.registry!r}>"
