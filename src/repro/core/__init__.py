"""Ignem: proactive upward migration of cold data (the paper's core).

The master (inside the NameNode) decides *what* migrates; slaves (inside
the DataNodes) decide *how* and *when* — one block at a time, smallest
job first, guarded by reference lists and the Do-not-harm rule.
"""

from .commands import EvictCommand, MigrateCommand, MigrationWorkItem
from .config import IgnemConfig
from .ha import HighAvailabilityMaster
from .heat import (
    HeatConfig,
    HeatEstimator,
    PopularityMigrator,
    PromotionCandidate,
    plan_promotions,
)
from .master import IgnemMaster
from .policy import (
    BenefitAware,
    FifoOrder,
    MigrationPolicy,
    SmallestJobFirst,
    available_policies,
    make_policy,
    register,
)
from .slave import IgnemSlave

__all__ = [
    "BenefitAware",
    "EvictCommand",
    "FifoOrder",
    "HeatConfig",
    "HeatEstimator",
    "HighAvailabilityMaster",
    "IgnemConfig",
    "IgnemMaster",
    "IgnemSlave",
    "MigrateCommand",
    "MigrationPolicy",
    "MigrationWorkItem",
    "PopularityMigrator",
    "PromotionCandidate",
    "SmallestJobFirst",
    "available_policies",
    "make_policy",
    "plan_promotions",
    "register",
]
