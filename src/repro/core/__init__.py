"""Ignem: proactive upward migration of cold data (the paper's core).

The master (inside the NameNode) decides *what* migrates; slaves (inside
the DataNodes) decide *how* and *when* — one block at a time, smallest
job first, guarded by reference lists and the Do-not-harm rule.
"""

from .commands import EvictCommand, MigrateCommand, MigrationWorkItem
from .config import IgnemConfig
from .ha import HighAvailabilityMaster
from .master import IgnemMaster
from .policy import (
    BenefitAware,
    FifoOrder,
    MigrationPolicy,
    SmallestJobFirst,
    available_policies,
    make_policy,
    register,
)
from .slave import IgnemSlave

__all__ = [
    "BenefitAware",
    "EvictCommand",
    "FifoOrder",
    "HighAvailabilityMaster",
    "IgnemConfig",
    "IgnemMaster",
    "IgnemSlave",
    "MigrateCommand",
    "MigrationPolicy",
    "MigrationWorkItem",
    "SmallestJobFirst",
    "available_policies",
    "make_policy",
    "register",
]
