"""Hint-free popularity-driven migration: heat tracking + policy.

Everything Ignem migrates today it migrates because a job *asked*
(`client.migrate(paths, job_id)` — the paper's submitter hint).  This
module adds the production-realistic alternative from "Automating
Distributed Tiered Storage Management in Cluster Computing" (see
PAPERS.md): the system itself estimates block heat from observed reads
and promotes hot blocks up the tier stack, demoting them when they cool.

Three pieces:

* :class:`HeatEstimator` — exponentially-decayed per-block access
  counters fed from NameNode read events.  The update rule is a pure
  function of the event multiset (order-independent up to float
  associativity), which is what makes the promotion decisions
  reproducible no matter how concurrent readers interleave within a
  policy tick.
* :class:`HeatConfig` — the policy knobs (half-life, thresholds, tick
  cadence, per-tenant fairness caps, admission control).
* :class:`PopularityMigrator` — the tick loop.  It owns a synthetic
  "job" (``config.owner``) so the promoted blocks ride the *existing*
  Ignem machinery end to end: master batching/retry/reroute, slave
  queues, do-not-harm accounting, buffer caps, and cleanup sweeps all
  apply unchanged.  No new command types, no slave changes.

The migrator parks when the cluster is quiescent (nothing promoted,
nothing in flight, nothing hot enough to promote) so a simulation with
no perpetual load still drains: ``env.run()`` terminates exactly as it
does without the policy.  Reads un-park it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dfs.blocks import Block
from ..dfs.namenode import NameNode
from ..obs.registry import MetricsRegistry
from ..sim.engine import Environment
from ..transport.messages import DemoteBlocksRequest, PromoteBlocksRequest
from ..sim.events import Event
from ..storage.device import GB, MB
from ..storage.tiers import MEM


@dataclass(frozen=True)
class HeatConfig:
    """Tunables for the popularity-driven migration policy.

    * ``half_life`` — seconds for a block's heat to decay by half with
      no accesses.  Each read adds 1.0 heat.
    * ``tick_interval`` — seconds between policy decisions.
    * ``promote_threshold`` / ``demote_threshold`` — heat above which a
      block is promoted, and below which a promoted block is demoted.
      A read-per-half-life steady state holds heat ~2.0, so the default
      promote threshold means "accessed faster than once per half-life".
    * ``dst_tier`` — destination tier for promotions; ``None`` follows
      the Ignem config's ``migration_tier`` (``mem`` by default).
    * ``tenant_tick_bytes`` — per-tenant fairness cap: bytes of
      promotion bandwidth one tenant may receive per tick.  A single hot
      tenant cannot starve the others' promotions.
    * ``max_outstanding_bytes`` — admission control: total bytes of
      promotions in flight (requested, not yet resident).  Above it new
      promotions are shed or queued per ``overload``.
    * ``overload`` — ``"queue"`` defers over-cap candidates to the next
      tick; ``"shed"`` drops them (they re-qualify on their own if still
      hot later).
    * ``request_ttl_ticks`` — a promotion that has not become resident
      after this many ticks is written off (and its queued work
      cancelled) so a crashed or saturated slave cannot pin the
      admission budget forever.
    * ``owner`` — the synthetic job id the policy's migrations run
      under; registered with the scheduler so slave cleanup sweeps keep
      the promoted blocks.
    * ``max_tracked`` — cap on tracked blocks; the coldest ~10% are
      dropped when exceeded (heat estimation stays O(working set), not
      O(namespace)).
    """

    half_life: float = 60.0
    tick_interval: float = 5.0
    promote_threshold: float = 2.0
    demote_threshold: float = 0.5
    dst_tier: Optional[str] = None
    tenant_tick_bytes: float = 512 * MB
    max_outstanding_bytes: float = 4 * GB
    overload: str = "queue"
    request_ttl_ticks: int = 8
    owner: str = "heat-policy"
    max_tracked: int = 100_000

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.promote_threshold <= 0:
            raise ValueError("promote_threshold must be positive")
        if not 0 <= self.demote_threshold < self.promote_threshold:
            raise ValueError(
                "demote_threshold must be in [0, promote_threshold)"
            )
        if self.tenant_tick_bytes <= 0:
            raise ValueError("tenant_tick_bytes must be positive")
        if self.max_outstanding_bytes <= 0:
            raise ValueError("max_outstanding_bytes must be positive")
        if self.overload not in ("queue", "shed"):
            raise ValueError(
                f"overload must be 'queue' or 'shed', got {self.overload!r}"
            )
        if self.request_ttl_ticks < 1:
            raise ValueError("request_ttl_ticks must be >= 1")
        if not self.owner:
            raise ValueError("owner must be non-empty")
        if self.max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")


class HeatEstimator:
    """Exponentially-decayed access counters, one per observed block.

    The stored heat is always the value *at the stamp time* (the latest
    event time seen).  The update rule makes the state a pure function
    of the event multiset: recording ``(block, t)`` adds exactly
    ``0.5 ** ((stamp - t) / half_life)`` heat at the stamp, whether the
    event arrives in order or late.  Reordering events within a tick
    therefore cannot change which blocks qualify for promotion (up to
    float addition order).
    """

    def __init__(self, half_life: float = 60.0, max_tracked: int = 100_000):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self.max_tracked = max_tracked
        self._heat: Dict[str, float] = {}
        self._stamp: Dict[str, float] = {}
        self._blocks: Dict[str, Block] = {}
        self._tenants: Dict[str, Dict[str, int]] = {}

    # -- feeding ----------------------------------------------------------------

    def record(
        self, block: Block, tenant: Optional[str], now: float
    ) -> None:
        """Fold one read of ``block`` at time ``now`` into its heat."""
        tenant = tenant if tenant is not None else "default"
        block_id = block.block_id
        stamp = self._stamp.get(block_id)
        if stamp is None:
            self._heat[block_id] = 1.0
            self._stamp[block_id] = now
        elif now >= stamp:
            decay = 0.5 ** ((now - stamp) / self.half_life)
            self._heat[block_id] = self._heat[block_id] * decay + 1.0
            self._stamp[block_id] = now
        else:  # late event: discount it back from the stamp instead
            self._heat[block_id] += 0.5 ** ((stamp - now) / self.half_life)
        self._blocks[block_id] = block
        counts = self._tenants.setdefault(block_id, {})
        counts[tenant] = counts.get(tenant, 0) + 1
        if len(self._heat) > self.max_tracked:
            self._evict_coldest(now)

    # -- queries ----------------------------------------------------------------

    def heat(self, block_id: str, now: float) -> float:
        """Decayed heat of one block at time ``now`` (0.0 if untracked)."""
        value = self._heat.get(block_id)
        if value is None:
            return 0.0
        delta = now - self._stamp[block_id]
        if delta > 0:
            value *= 0.5 ** (delta / self.half_life)
        return value

    def max_heat(self, now: float) -> float:
        """The hottest tracked block's decayed heat (0.0 when empty)."""
        best = 0.0
        for block_id in self._heat:
            value = self.heat(block_id, now)
            if value > best:
                best = value
        return best

    def items(self, now: float) -> List[Tuple[str, float]]:
        """All tracked blocks as ``(block_id, heat)``, hottest first
        (ties broken by block id, for determinism)."""
        decayed = [
            (block_id, self.heat(block_id, now)) for block_id in self._heat
        ]
        decayed.sort(key=lambda pair: (-pair[1], pair[0]))
        return decayed

    def dominant_tenant(self, block_id: str) -> Optional[str]:
        """The tenant with the most recorded reads of this block (ties
        broken by tenant name)."""
        counts = self._tenants.get(block_id)
        if not counts:
            return None
        return min(counts, key=lambda tenant: (-counts[tenant], tenant))

    def block(self, block_id: str) -> Optional[Block]:
        return self._blocks.get(block_id)

    def tracked(self) -> int:
        return len(self._heat)

    # -- maintenance -------------------------------------------------------------

    def forget(self, block_id: str) -> None:
        self._heat.pop(block_id, None)
        self._stamp.pop(block_id, None)
        self._blocks.pop(block_id, None)
        self._tenants.pop(block_id, None)

    def _evict_coldest(self, now: float) -> None:
        """Drop the coldest ~10% so tracking stays bounded."""
        victims = sorted(
            self._heat, key=lambda block_id: (self.heat(block_id, now), block_id)
        )[: max(1, self.max_tracked // 10)]
        for block_id in victims:
            self.forget(block_id)


@dataclass(frozen=True)
class PromotionCandidate:
    """One block the policy wants to promote, attributed to the tenant
    that earned it its heat (fairness accounting charges them)."""

    block: Block
    tenant: str

    @property
    def nbytes(self) -> float:
        return self.block.nbytes


def plan_promotions(
    candidates: Sequence,
    tenant_tick_bytes: float,
    max_outstanding_bytes: float,
    outstanding_bytes: float,
):
    """Apply fairness + admission control to a priority-ordered candidate
    list.  Pure function (no simulator state) so properties — per-tenant
    caps never exceeded, admission budget respected — test directly.

    Each candidate needs ``.nbytes`` and ``.tenant``.  Returns
    ``(granted, spend, overflow)`` where ``spend`` maps tenant -> bytes
    granted this tick and ``overflow`` pairs each rejected candidate
    with the binding constraint (``"fairness"`` or ``"admission"``).
    """
    granted = []
    overflow = []
    spend: Dict[str, float] = {}
    for candidate in candidates:
        tenant_spend = spend.get(candidate.tenant, 0.0)
        if tenant_spend + candidate.nbytes > tenant_tick_bytes:
            overflow.append((candidate, "fairness"))
            continue
        if outstanding_bytes + candidate.nbytes > max_outstanding_bytes:
            overflow.append((candidate, "admission"))
            continue
        spend[candidate.tenant] = tenant_spend + candidate.nbytes
        outstanding_bytes += candidate.nbytes
        granted.append(candidate)
    return granted, spend, overflow


class PopularityMigrator:
    """The heat-driven policy loop: observe reads, promote, demote.

    Wire-up (done by ``Cluster.enable_heat_migration``): subscribe
    :meth:`on_read` to the NameNode's read events, then :meth:`start`.
    All migrations run under the synthetic job ``config.owner`` through
    the ordinary Ignem master APIs, so every existing robustness
    mechanism (command retry, do-not-harm, cleanup sweeps, per-tier
    caps) governs promoted blocks too.
    """

    def __init__(
        self,
        env: Environment,
        master,
        namenode: NameNode,
        rm,
        config: Optional[HeatConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        default_tier: str = MEM,
        transport=None,
    ):
        self.env = env
        self.master = master
        self.namenode = namenode
        self.rm = rm
        #: When set, promotions/demotions ship to the ``"master"``
        #: endpoint as protocol messages instead of direct method calls.
        self.transport = transport
        self.config = config or HeatConfig()
        self.dst_tier = self.config.dst_tier or default_tier
        self.estimator = HeatEstimator(
            half_life=self.config.half_life,
            max_tracked=self.config.max_tracked,
        )
        self.enabled = True
        #: block_id -> destination tier, for promotions that completed.
        self.promoted: Dict[str, str] = {}
        #: block_id -> (tick issued, nbytes, tier), for requests in flight.
        self._outstanding: Dict[str, Tuple[int, float, str]] = {}
        self._outstanding_bytes = 0.0
        self._deferred: List[PromotionCandidate] = []
        self._tick_count = 0
        self._parked: Optional[Event] = None
        #: Per-tick fairness audit: ``{"tick", "time", "granted":
        #: {tenant: bytes}}`` for every tick that granted promotions.
        #: The DST tenant-fairness oracle replays this against the cap.
        self.fairness_log: List[Dict] = []

        registry = registry or MetricsRegistry()
        self.metrics = registry
        self._c_ticks = registry.counter("heat.policy.ticks")
        self._c_promotions = registry.counter("heat.policy.promotions")
        self._c_demotions = registry.counter("heat.policy.demotions")
        self._c_shed = registry.counter("heat.policy.shed")
        self._c_queued = registry.counter("heat.policy.queued")
        self._c_expired = registry.counter("heat.policy.expired")
        registry.register_pull("heat.policy.tracked_blocks", self.estimator.tracked)
        registry.register_pull(
            "heat.policy.outstanding_bytes", lambda: self._outstanding_bytes
        )

    # -- feed --------------------------------------------------------------------

    def on_read(self, block: Block, tenant: Optional[str]) -> None:
        """NameNode read-event listener: fold the access into the heat
        model and un-park the tick loop."""
        if not self.enabled:
            return
        self.estimator.record(block, tenant, self.env.now)
        if self._parked is not None and not self._parked.triggered:
            self._parked.succeed(None)

    # -- master RPC --------------------------------------------------------------

    def _request_promotion(self, blocks, owner: str, dst_tier: str) -> None:
        if self.transport is not None:
            self.transport.request(
                "master",
                PromoteBlocksRequest(tuple(blocks), owner, dst_tier=dst_tier),
            )
        else:
            self.master.request_block_migration(blocks, owner, dst_tier=dst_tier)

    def _request_demotion(self, block_ids, owner: str) -> None:
        if self.transport is not None:
            self.transport.request(
                "master", DemoteBlocksRequest(tuple(block_ids), owner)
            )
        else:
            self.master.request_block_eviction(block_ids, owner)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Register the policy's owner job and start the tick loop."""
        self.rm.register_job(self.config.owner)
        self.env.process(self._loop(), name="heat-policy")

    def shutdown(self) -> None:
        """Stop the policy and demote everything it promoted.

        Leaves the cluster exactly as a hint-based job's completion
        would: references released, buffer bytes returned, owner job
        unregistered (so any straggler refs fall to the cleanup sweep).
        """
        self.enabled = False
        leftovers = sorted(set(self.promoted) | set(self._outstanding))
        if leftovers:
            self._request_demotion(leftovers, self.config.owner)
        self.promoted.clear()
        self._outstanding.clear()
        self._outstanding_bytes = 0.0
        self._deferred.clear()
        if self._parked is not None and not self._parked.triggered:
            self._parked.succeed(None)
        if self.rm.job_active(self.config.owner):
            self.rm.unregister_job(self.config.owner)

    # -- the loop ----------------------------------------------------------------

    def _quiescent(self) -> bool:
        """Nothing promoted, nothing in flight, nothing hot enough: the
        next tick provably has no work, and only a new read (which
        un-parks us) can change that — heat only decays with time."""
        if self.promoted or self._outstanding or self._deferred:
            return False
        return self.estimator.max_heat(self.env.now) < self.config.promote_threshold

    def _loop(self):
        while self.enabled:
            if self._quiescent():
                self._parked = Event(self.env)
                yield self._parked
                self._parked = None
                continue
            yield self.env.timeout(self.config.tick_interval)
            if not self.enabled:
                return
            self._tick()

    def _tick(self) -> None:
        now = self.env.now
        self._tick_count += 1
        self._c_ticks.inc()
        config = self.config
        estimator = self.estimator
        namenode = self.namenode

        # 1. Settle in-flight promotions: resident -> promoted; deleted
        #    -> written off; TTL-expired -> written off AND cancelled
        #    (the eviction drops queued work so a completed-later
        #    migration cannot leak resident bytes).
        for block_id in sorted(self._outstanding):
            issued, _nbytes, tier = self._outstanding[block_id]
            if not namenode.is_block(block_id):
                self._finish_outstanding(block_id)
                estimator.forget(block_id)
            elif namenode.tier_nodes(block_id, tier):
                self._finish_outstanding(block_id)
                self.promoted[block_id] = tier
            elif self._tick_count - issued >= config.request_ttl_ticks:
                self._finish_outstanding(block_id)
                self._c_expired.inc()
                self._request_demotion([block_id], config.owner)

        # 2. Demote cooled (or deleted) promoted blocks.
        demote: List[str] = []
        for block_id in sorted(self.promoted):
            if not namenode.is_block(block_id):
                demote.append(block_id)
                estimator.forget(block_id)
            elif estimator.heat(block_id, now) < config.demote_threshold:
                demote.append(block_id)
        if demote:
            for block_id in demote:
                self.promoted.pop(block_id)
            self._c_demotions.inc(len(demote))
            self._request_demotion(demote, config.owner)

        # 3. Gather candidates: deferred (re-validated) first — they were
        #    hot before the queue backed up — then fresh heat, hottest
        #    first.
        candidates: List[PromotionCandidate] = []
        seen = set(self.promoted) | set(self._outstanding)
        deferred, self._deferred = self._deferred, []
        for candidate in deferred:
            block_id = candidate.block.block_id
            if block_id in seen or not namenode.is_block(block_id):
                continue
            if estimator.heat(block_id, now) < config.promote_threshold:
                continue  # cooled while queued; it can re-qualify later
            seen.add(block_id)
            candidates.append(candidate)
        for block_id, heat in estimator.items(now):
            if heat < config.promote_threshold:
                break
            if block_id in seen:
                continue
            if not namenode.is_block(block_id):
                estimator.forget(block_id)
                continue
            block = estimator.block(block_id)
            if block is None:
                continue
            tenant = estimator.dominant_tenant(block_id) or "default"
            seen.add(block_id)
            candidates.append(PromotionCandidate(block, tenant))
        if not candidates:
            return

        # 4. Fairness + admission, then one batched promotion request.
        granted, spend, overflow = plan_promotions(
            candidates,
            config.tenant_tick_bytes,
            config.max_outstanding_bytes,
            self._outstanding_bytes,
        )
        for candidate, _reason in overflow:
            self._overflow(candidate)
        if not granted:
            return
        self._request_promotion(
            [candidate.block for candidate in granted],
            config.owner,
            self.dst_tier,
        )
        for candidate in granted:
            self._outstanding[candidate.block.block_id] = (
                self._tick_count,
                candidate.block.nbytes,
                self.dst_tier,
            )
            self._outstanding_bytes += candidate.block.nbytes
        self._c_promotions.inc(len(granted))
        self.fairness_log.append(
            {
                "tick": self._tick_count,
                "time": now,
                "granted": {tenant: spend[tenant] for tenant in sorted(spend)},
            }
        )

    def _finish_outstanding(self, block_id: str) -> None:
        _issued, nbytes, _tier = self._outstanding.pop(block_id)
        self._outstanding_bytes = max(0.0, self._outstanding_bytes - nbytes)

    def _overflow(self, candidate: PromotionCandidate) -> None:
        """An over-cap candidate is queued for the next tick when it can
        ever fit under both caps, shed otherwise (or always, in shed
        mode)."""
        fits = candidate.nbytes <= min(
            self.config.tenant_tick_bytes, self.config.max_outstanding_bytes
        )
        if self.config.overload == "queue" and fits:
            self._deferred.append(candidate)
            self._c_queued.inc()
        else:
            self._c_shed.inc()
