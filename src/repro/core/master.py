"""IgnemMaster: determines *what* migrates, hosted in the NameNode.

Clients (job submitters) send the master the list of files a job will
soon read.  The master maps files to blocks via the NameNode, picks ONE
replica per block uniformly at random (paper III-A2 — network bandwidth
is plentiful, so one in-memory copy suffices), batches the resulting
per-slave command lists, and ships them over (simulated) RPC.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..dfs.blocks import Block
from ..dfs.namenode import NameNode
from ..metrics.collector import MetricsCollector
from ..obs.registry import MetricsRegistry
from ..net.network import NetworkError
from ..sim.engine import Environment
from ..sim.rand import RandomSource
from ..transport.messages import (
    Ack,
    DemoteBlocksRequest,
    EvictFilesRequest,
    EvictMsg,
    FailoverMsg,
    MigrateFilesRequest,
    MigrateMsg,
    PromoteBlocksRequest,
)
from .commands import EvictCommand, MigrateCommand, MigrationWorkItem
from .config import IgnemConfig
from .slave import IgnemSlave


def dispatch_master_message(master, msg):
    """Shared ``"master"`` endpoint dispatch: translate a client-facing
    protocol message into the corresponding request method.  Used by
    both :class:`IgnemMaster` and the HA pair (which routes each request
    to its active member)."""
    if isinstance(msg, MigrateFilesRequest):
        master.request_migration(
            msg.paths,
            msg.job_id,
            implicit_eviction=msg.implicit_eviction,
            dst_tier=msg.dst_tier,
        )
        return Ack(True)
    if isinstance(msg, EvictFilesRequest):
        master.request_eviction(msg.paths, msg.job_id)
        return Ack(True)
    if isinstance(msg, PromoteBlocksRequest):
        master.request_block_migration(
            msg.blocks, msg.owner, dst_tier=msg.dst_tier
        )
        return Ack(True)
    if isinstance(msg, DemoteBlocksRequest):
        master.request_block_eviction(msg.block_ids, msg.owner)
        return Ack(True)
    raise TypeError(f"master cannot handle {type(msg).__name__}")


class IgnemMaster:
    """The migration coordinator.

    RPC/workload tallies live in a :class:`MetricsRegistry` under
    ``ignem.master.*`` (shared with the rest of the cluster when built
    through :class:`~repro.cluster.Cluster`), read via
    ``master.metrics.value("ignem.master.<event>")``.
    """

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        rng: Optional[RandomSource] = None,
        config: Optional[IgnemConfig] = None,
        collector: Optional[MetricsCollector] = None,
        registry: Optional[MetricsRegistry] = None,
        transport=None,
    ):
        self.env = env
        self.namenode = namenode
        self.rng = rng or RandomSource(0)
        self.config = config or IgnemConfig()
        self.collector = collector or MetricsCollector()
        self.metrics = registry or MetricsRegistry()
        #: Message transport carrying master→slave commands.  ``None``
        #: falls back to direct method calls (standalone masters in
        #: tests); cluster-built masters always ship commands through
        #: the transport's ``slave/<node>`` endpoints.
        self.transport = transport
        self.alive = True

        self._slaves: Dict[str, IgnemSlave] = {}
        #: (job_id, block_id) -> slave nodes chosen for its migration, so
        #: eviction commands go exactly where the block went.
        self._assignments: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: Fault hook (set by the fault injector): called with the target
        #: node per delivery attempt; returning ``"lost"`` drops that
        #: attempt.  ``None`` is the zero-overhead clean path.
        self.rpc_fault: Optional[Callable[[str], Optional[str]]] = None
        #: Command-boundary tap (set by the DST differential checker):
        #: called as ``tap(node, kind, command, slave)`` after every
        #: *accepted* delivery, i.e. at the exact boundary where the
        #: slave's synchronous state change (reference-list update, queue
        #: insert) has just happened.  ``None`` is the clean path.
        self.command_tap: Optional[Callable] = None
        #: Slave-state-loss tap (set by the DST differential checker):
        #: called as ``tap(node)`` whenever the master forgets a slave's
        #: routing state (crash, decommission, cold-restart purge) — the
        #: boundary where a later duplicate migrate may legitimately pick
        #: a fresh replica.  ``None`` is the clean path.
        self.failure_tap: Optional[Callable] = None
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

        # The registry counters are shared instruments: an HA pair
        # reporting into one registry naturally sums into cluster-wide
        # totals.
        metrics = self.metrics
        self._c_migration_requests = metrics.counter(
            "ignem.master.migration_requests"
        )
        self._c_eviction_requests = metrics.counter(
            "ignem.master.eviction_requests"
        )
        self._c_promotion_requests = metrics.counter(
            "ignem.master.promotion_requests"
        )
        self._c_demotion_requests = metrics.counter(
            "ignem.master.demotion_requests"
        )
        self._c_sent = metrics.counter("ignem.master.commands_sent")
        self._c_retries = metrics.counter("ignem.master.command_retries")
        self._c_rerouted = metrics.counter("ignem.master.commands_rerouted")
        self._c_abandoned = metrics.counter("ignem.master.commands_abandoned")

    # -- topology -----------------------------------------------------------------

    def attach_slave(self, slave: IgnemSlave) -> None:
        if slave.name in self._slaves:
            raise ValueError(f"duplicate slave {slave.name!r}")
        self._slaves[slave.name] = slave

    def slave(self, node: str) -> IgnemSlave:
        return self._slaves[node]

    def slaves(self) -> List[IgnemSlave]:
        return list(self._slaves.values())

    # -- client API -----------------------------------------------------------------

    def request_migration(
        self,
        paths: Sequence[str],
        job_id: str,
        implicit_eviction: bool = False,
        dst_tier: Optional[str] = None,
    ) -> None:
        """Handle a job submitter's migrate call.

        ``dst_tier`` names the tier the job's blocks should land in;
        ``None`` uses the configured default (``mem`` — the paper's
        design).  Requests to a dead master are lost (the client retries
        against the replacement master in a real deployment; the paper
        accepts the temporary performance loss, III-A5).
        """
        if not self.alive:
            return
        if dst_tier is None:
            dst_tier = self.config.migration_tier
        elif dst_tier not in self.config.destination_tiers():
            raise ValueError(
                f"{dst_tier!r} is not a configured migration destination "
                f"(destinations: {', '.join(self.config.destination_tiers())})"
            )
        self._c_migration_requests.inc()
        job_input_bytes = self.namenode.total_bytes(paths)
        submitted_at = self.env.now

        batches: Dict[str, List[MigrationWorkItem]] = {}
        namenode = self.namenode
        slaves = self._slaves
        assignments = self._assignments
        order_hint = 0
        for path in paths:
            for block in namenode.file_blocks(path):
                locations = namenode.get_block_locations(block.block_id)
                usable = [node for node in locations if node in slaves]
                if not usable:
                    continue
                key = (job_id, block.block_id)
                previous = [
                    node for node in assignments.get(key, ()) if node in usable
                ]
                if previous:
                    # A duplicate migrate call (client retry) must reuse
                    # the earlier replica choice, or the eviction would
                    # only reach the latest choice and leak the first.
                    chosen_nodes = previous
                else:
                    count = min(self.config.replicas_to_migrate, len(usable))
                    chosen_nodes = self.rng.sample(sorted(usable), count)
                # Eviction routing remembers every chosen holder.
                assignments[key] = tuple(chosen_nodes)
                for chosen in chosen_nodes:
                    batches.setdefault(chosen, []).append(
                        MigrationWorkItem(
                            block=block,
                            job_id=job_id,
                            job_input_bytes=job_input_bytes,
                            job_submitted_at=submitted_at,
                            implicit_eviction=implicit_eviction,
                            order_hint=order_hint,
                            dst_tier=dst_tier,
                        )
                    )
                order_hint += 1

        for node, items in batches.items():
            self._send(node, "migrate", MigrateCommand(job_id, tuple(items)))

    def request_block_migration(
        self,
        blocks: Sequence["Block"],
        owner: str,
        dst_tier: Optional[str] = None,
    ) -> None:
        """Hint-free promotion path: migrate specific blocks for ``owner``.

        Unlike :meth:`request_migration` this is not tied to a job's
        submission hint — the popularity-driven policy names individual
        hot blocks directly and owns their references under a pseudo job
        id (``owner``).  Replica choice, eviction routing, retry/reroute,
        and the command tap are all shared with the hint path, so the
        differential model and fault machinery see ordinary commands.
        """
        if not self.alive:
            return
        if dst_tier is None:
            dst_tier = self.config.migration_tier
        elif dst_tier not in self.config.destination_tiers():
            raise ValueError(
                f"{dst_tier!r} is not a configured migration destination "
                f"(destinations: {', '.join(self.config.destination_tiers())})"
            )
        self._c_promotion_requests.inc()
        submitted_at = self.env.now
        namenode = self.namenode
        slaves = self._slaves
        assignments = self._assignments
        # The promotion wave is priced like one small job: policies that
        # favor small inputs treat a batch of hot blocks as a unit.
        total_bytes = sum(block.nbytes for block in blocks)

        batches: Dict[str, List[MigrationWorkItem]] = {}
        order_hint = 0
        for block in blocks:
            if not namenode.is_block(block.block_id):
                continue  # the file was deleted since the heat sample
            locations = namenode.get_block_locations(block.block_id)
            usable = [node for node in locations if node in slaves]
            if not usable:
                continue
            key = (owner, block.block_id)
            previous = [
                node for node in assignments.get(key, ()) if node in usable
            ]
            if previous:
                chosen_nodes = previous
            else:
                count = min(self.config.replicas_to_migrate, len(usable))
                chosen_nodes = self.rng.sample(sorted(usable), count)
            assignments[key] = tuple(chosen_nodes)
            for chosen in chosen_nodes:
                batches.setdefault(chosen, []).append(
                    MigrationWorkItem(
                        block=block,
                        job_id=owner,
                        job_input_bytes=total_bytes,
                        job_submitted_at=submitted_at,
                        implicit_eviction=False,
                        order_hint=order_hint,
                        dst_tier=dst_tier,
                    )
                )
            order_hint += 1

        for node, items in batches.items():
            self._send(node, "migrate", MigrateCommand(owner, tuple(items)))

    def request_block_eviction(
        self, block_ids: Sequence[str], owner: str
    ) -> None:
        """Demote specific blocks promoted under ``owner`` (cooled heat)."""
        if not self.alive:
            return
        self._c_demotion_requests.inc()
        batches: Dict[str, List[str]] = {}
        for block_id in block_ids:
            nodes = self._assignments.pop((owner, block_id), ())
            for node in nodes:
                if node in self._slaves:
                    batches.setdefault(node, []).append(block_id)
        for node, ids in batches.items():
            self._send(node, "evict", EvictCommand(owner, tuple(ids)))

    def request_eviction(self, paths: Sequence[str], job_id: str) -> None:
        """Handle a job submitter's evict call (job completed)."""
        if not self.alive:
            return
        self._c_eviction_requests.inc()
        batches: Dict[str, List[str]] = {}
        for path in paths:
            if not self.namenode.exists(path):
                continue
            for block in self.namenode.file_blocks(path):
                nodes = self._assignments.pop((job_id, block.block_id), ())
                for node in nodes:
                    if node in self._slaves:
                        batches.setdefault(node, []).append(block.block_id)
        for node, block_ids in batches.items():
            self._send(node, "evict", EvictCommand(job_id, tuple(block_ids)))

    # -- failure handling -----------------------------------------------------------

    def fail(self) -> None:
        """The master process dies; in-flight state is gone."""
        self.alive = False
        self._assignments.clear()

    def restart(self) -> None:
        """A replacement master starts with empty state; slaves purge
        their reference lists to stay consistent with it (III-A5)."""
        self.alive = True
        for name, slave in self._slaves.items():
            if self.transport is not None:
                self.transport.send(
                    f"slave/{name}", FailoverMsg(generation=0, active="master")
                )
            else:
                slave.purge_all(reason="failure")
            if self.failure_tap is not None:
                self.failure_tap(name)

    def handle_slave_failure(self, node: str) -> None:
        """Forget routing state for a crashed slave: its queue and
        reference lists died with the process, so eviction commands must
        not target it and a duplicate migrate call may pick a fresh
        replica (crash-safe migration-queue abandonment)."""
        if self.failure_tap is not None:
            self.failure_tap(node)
        stale = [
            (key, nodes)
            for key, nodes in self._assignments.items()
            if node in nodes
        ]
        for key, nodes in stale:
            remaining = tuple(n for n in nodes if n != node)
            if remaining:
                self._assignments[key] = remaining
            else:
                del self._assignments[key]

    # -- RPC ---------------------------------------------------------------------------

    def _send(
        self,
        node: str,
        kind: str,
        command,
        tried: FrozenSet[str] = frozenset(),
    ) -> None:
        """Ship one batched command with the configured RPC latency.

        Delivery is acknowledged: an unacked command (slave down or
        message lost) is retried with timeout + exponential backoff, and
        after ``command_max_retries`` the failure handler re-routes or
        abandons the work.  ``tried`` carries the nodes already attempted
        for this work so a re-route never bounces between dead slaves.
        """
        self._c_sent.inc()
        if self.obs is not None:
            self.obs.on_master_command("sent", node, kind, command.job_id)
        if self.config.rpc_latency <= 0 and self.rpc_fault is None:
            if not self._deliver(node, kind, command):
                self._command_failed(node, kind, command, tried)
            return
        self.env.process(self._rpc(node, kind, command, tried), name="ignem-rpc")

    def _deliver(self, node: str, kind: str, command) -> bool:
        slave = self._slaves[node]
        if self.transport is not None:
            # The command ships as a protocol message through the slave's
            # transport endpoint.  SimTransport delivers the original
            # command object synchronously, so ordering, acknowledgement
            # semantics, and the tap boundary are exactly the direct call.
            msg = MigrateMsg(command) if kind == "migrate" else EvictMsg(command)
            try:
                accepted = self.transport.request(f"slave/{node}", msg).ok
            except NetworkError:
                accepted = False
        elif kind == "migrate":
            accepted = slave.receive_migrate(command)
        else:
            accepted = slave.receive_evict(command)
        if accepted and self.command_tap is not None:
            self.command_tap(node, kind, command, slave)
        return accepted

    def handle_message(self, msg):
        """The ``"master"`` transport endpoint (client-facing requests)."""
        return dispatch_master_message(self, msg)

    def _rpc(self, node: str, kind: str, command, tried: FrozenSet[str]):
        cfg = self.config
        latency = cfg.rpc_latency
        for attempt in range(cfg.command_max_retries + 1):
            lost = self.rpc_fault is not None and self.rpc_fault(node) == "lost"
            if latency > 0:
                yield self.env.timeout(latency)
            if not lost and self._deliver(node, kind, command):
                return
            if attempt >= cfg.command_max_retries:
                break
            self._c_retries.inc()
            if self.obs is not None:
                self.obs.on_master_command("retry", node, kind, command.job_id)
            yield self.env.timeout(
                cfg.command_timeout
                + cfg.command_backoff * cfg.command_backoff_factor ** attempt
            )
        self._command_failed(node, kind, command, tried)

    def _command_failed(
        self, node: str, kind: str, command, tried: FrozenSet[str]
    ) -> None:
        """All retries exhausted: the slave is down or unreachable."""
        if not self.alive:
            return
        tried = tried | {node}
        if kind == "evict":
            # The dead slave's restart purges its references anyway
            # (III-A5), so the eviction is moot — just drop it.
            self._c_abandoned.inc()
            if self.obs is not None:
                self.obs.on_master_command(
                    "abandoned", node, kind, command.job_id
                )
            return
        self._reroute_migration(node, command, tried)

    def _reroute_migration(
        self, failed_node: str, command, tried: FrozenSet[str]
    ) -> None:
        """Graceful degradation (III-A5): re-route each block's migration
        to another live replica holder; blocks with no live untried
        replica are abandoned and their routing state dropped."""
        namenode = self.namenode
        slaves = self._slaves
        batches: Dict[str, List[MigrationWorkItem]] = {}
        for item in command.items:
            key = (command.job_id, item.block_id)
            kept = tuple(
                n for n in self._assignments.get(key, ()) if n != failed_node
            )
            usable = [
                n
                for n in namenode.get_block_locations(item.block_id)
                if n in slaves and n not in tried and slaves[n].alive
            ]
            if not usable:
                # Crash-safe abandonment: forget the routing entry rather
                # than leak it (the job will read from disk instead).
                if kept:
                    self._assignments[key] = kept
                else:
                    self._assignments.pop(key, None)
                self._c_abandoned.inc()
                if self.obs is not None:
                    self.obs.on_master_command(
                        "abandoned", failed_node, "migrate", command.job_id
                    )
                continue
            chosen = self.rng.choice(sorted(usable))
            if chosen in kept:
                # Another replica of this block is already migrating.
                self._assignments[key] = kept
                continue
            self._assignments[key] = kept + (chosen,)
            batches.setdefault(chosen, []).append(item)
        for new_node, items in batches.items():
            self._c_rerouted.inc()
            if self.obs is not None:
                self.obs.on_master_command(
                    "rerouted", new_node, "migrate", command.job_id
                )
            self._send(
                new_node,
                "migrate",
                MigrateCommand(command.job_id, tuple(items)),
                tried=tried,
            )
