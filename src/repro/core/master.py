"""IgnemMaster: determines *what* migrates, hosted in the NameNode.

Clients (job submitters) send the master the list of files a job will
soon read.  The master maps files to blocks via the NameNode, picks ONE
replica per block uniformly at random (paper III-A2 — network bandwidth
is plentiful, so one in-memory copy suffices), batches the resulting
per-slave command lists, and ships them over (simulated) RPC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dfs.namenode import NameNode
from ..metrics.collector import MetricsCollector
from ..sim.engine import Environment
from ..sim.rand import RandomSource
from .commands import EvictCommand, MigrateCommand, MigrationWorkItem
from .config import IgnemConfig
from .slave import IgnemSlave


class IgnemMaster:
    """The migration coordinator."""

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        rng: Optional[RandomSource] = None,
        config: Optional[IgnemConfig] = None,
        collector: Optional[MetricsCollector] = None,
    ):
        self.env = env
        self.namenode = namenode
        self.rng = rng or RandomSource(0)
        self.config = config or IgnemConfig()
        self.collector = collector or MetricsCollector()
        self.alive = True

        self._slaves: Dict[str, IgnemSlave] = {}
        #: (job_id, block_id) -> slave nodes chosen for its migration, so
        #: eviction commands go exactly where the block went.
        self._assignments: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self.migration_requests = 0
        self.eviction_requests = 0

    # -- topology -----------------------------------------------------------------

    def attach_slave(self, slave: IgnemSlave) -> None:
        if slave.name in self._slaves:
            raise ValueError(f"duplicate slave {slave.name!r}")
        self._slaves[slave.name] = slave

    def slave(self, node: str) -> IgnemSlave:
        return self._slaves[node]

    def slaves(self) -> List[IgnemSlave]:
        return list(self._slaves.values())

    # -- client API -----------------------------------------------------------------

    def request_migration(
        self,
        paths: Sequence[str],
        job_id: str,
        implicit_eviction: bool = False,
    ) -> None:
        """Handle a job submitter's migrate call.

        Requests to a dead master are lost (the client retries against the
        replacement master in a real deployment; the paper accepts the
        temporary performance loss, III-A5).
        """
        if not self.alive:
            return
        self.migration_requests += 1
        job_input_bytes = self.namenode.total_bytes(paths)
        submitted_at = self.env.now

        batches: Dict[str, List[MigrationWorkItem]] = {}
        namenode = self.namenode
        slaves = self._slaves
        assignments = self._assignments
        order_hint = 0
        for path in paths:
            for block in namenode.file_blocks(path):
                locations = namenode.get_block_locations(block.block_id)
                usable = [node for node in locations if node in slaves]
                if not usable:
                    continue
                key = (job_id, block.block_id)
                previous = [
                    node for node in assignments.get(key, ()) if node in usable
                ]
                if previous:
                    # A duplicate migrate call (client retry) must reuse
                    # the earlier replica choice, or the eviction would
                    # only reach the latest choice and leak the first.
                    chosen_nodes = previous
                else:
                    count = min(self.config.replicas_to_migrate, len(usable))
                    chosen_nodes = self.rng.sample(sorted(usable), count)
                # Eviction routing remembers every chosen holder.
                assignments[key] = tuple(chosen_nodes)
                for chosen in chosen_nodes:
                    batches.setdefault(chosen, []).append(
                        MigrationWorkItem(
                            block=block,
                            job_id=job_id,
                            job_input_bytes=job_input_bytes,
                            job_submitted_at=submitted_at,
                            implicit_eviction=implicit_eviction,
                            order_hint=order_hint,
                        )
                    )
                order_hint += 1

        for node, items in batches.items():
            self._send(
                self._slaves[node].receive_migrate,
                MigrateCommand(job_id, tuple(items)),
            )

    def request_eviction(self, paths: Sequence[str], job_id: str) -> None:
        """Handle a job submitter's evict call (job completed)."""
        if not self.alive:
            return
        self.eviction_requests += 1
        batches: Dict[str, List[str]] = {}
        for path in paths:
            if not self.namenode.exists(path):
                continue
            for block in self.namenode.file_blocks(path):
                nodes = self._assignments.pop((job_id, block.block_id), ())
                for node in nodes:
                    if node in self._slaves:
                        batches.setdefault(node, []).append(block.block_id)
        for node, block_ids in batches.items():
            self._send(
                self._slaves[node].receive_evict,
                EvictCommand(job_id, tuple(block_ids)),
            )

    # -- failure handling -----------------------------------------------------------

    def fail(self) -> None:
        """The master process dies; in-flight state is gone."""
        self.alive = False
        self._assignments.clear()

    def restart(self) -> None:
        """A replacement master starts with empty state; slaves purge
        their reference lists to stay consistent with it (III-A5)."""
        self.alive = True
        for slave in self._slaves.values():
            slave.purge_all(reason="failure")

    # -- RPC ---------------------------------------------------------------------------

    def _send(self, deliver, command) -> None:
        """Ship one batched command with the configured RPC latency."""
        latency = self.config.rpc_latency
        if latency <= 0:
            deliver(command)
            return

        def rpc():
            yield self.env.timeout(latency)
            deliver(command)

        self.env.process(rpc(), name="ignem-rpc")
