"""Migration-queue ordering policies (paper Sections III-A1, IV-C5, IV-E).

Three built-in policies:

* :class:`SmallestJobFirst` — the paper's choice;
* :class:`FifoOrder` — the IV-C5 ablation baseline;
* :class:`BenefitAware` — the extension the paper sketches in Section
  IV-E: "A migration scheme that can infer the Ignem speed-up curve for
  different jobs can potentially use this information to prioritize jobs
  which will benefit more."

Policies are selected *by name* through a registry: :func:`register`
maps a name to a factory ``(reverse_within_job: bool) -> MigrationPolicy``
and :func:`make_policy` instantiates one.  ``IgnemConfig`` validates its
``policy`` field against :func:`available_policies`, so an experiment
(or test ablation) can plug in a new ordering without touching config or
slave code.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..storage.device import MB
from .commands import MigrationWorkItem

#: Registered policy factories, keyed by policy name.
_REGISTRY: Dict[str, Callable[[bool], "MigrationPolicy"]] = {}


def register(name: str, factory: Callable[[bool], "MigrationPolicy"]) -> None:
    """Register a policy factory under ``name`` (last write wins, so a
    test can shadow a built-in and restore it afterwards)."""
    if not name:
        raise ValueError("policy name must be non-empty")
    _REGISTRY[name] = factory


def available_policies() -> Tuple[str, ...]:
    """The registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_policy(name: str, reverse_within_job: bool = True) -> "MigrationPolicy":
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(available_policies())
        raise ValueError(f"unknown migration policy {name!r} (known: {known})")
    return factory(reverse_within_job)


class MigrationPolicy:
    """Orders the per-slave migration queue; lower keys migrate first."""

    name = "abstract"

    def __init__(self, reverse_within_job: bool = True):
        #: Migrate each job's blocks tail-first (see MigrationWorkItem).
        self.reverse_within_job = reverse_within_job

    def priority(self, item: MigrationWorkItem) -> Tuple:
        raise NotImplementedError

    def _within_job(self, item: MigrationWorkItem) -> int:
        if self.reverse_within_job:
            return -item.order_hint
        return item.order_hint


class SmallestJobFirst(MigrationPolicy):
    """The paper's policy: prioritize blocks of jobs with smaller inputs.

    Improves more jobs per byte migrated and raises the chance of fully
    migrating a job's input within its lead-time.  Ties broken by job
    submission time (III-A1), then within-job block order, then arrival.
    """

    name = "smallest-job-first"

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (
            item.job_input_bytes,
            item.job_submitted_at,
            self._within_job(item),
            item.seq,
        )


class FifoOrder(MigrationPolicy):
    """The natural strategy the paper ablates against: job arrival order."""

    name = "fifo"

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (item.job_submitted_at, self._within_job(item), item.seq)


class BenefitAware(MigrationPolicy):
    """Prioritize by expected speed-up per migrated byte (paper IV-E).

    The wordcount sweep (Fig 8) shows the per-job speed-up curve: jobs
    whose whole input fits in the lead-time get the full benefit; beyond
    that the marginal benefit of each migrated byte decays as it becomes
    a smaller fraction of the input.  This policy scores each block by
    the fraction of its job's input that is expected to migrate in time
    (``expected_lead_bytes / job_input_bytes``, saturated at 1) and
    migrates higher-benefit jobs first.

    With ``expected_lead_bytes`` well below every job size this decays to
    smallest-job-first; with it very large, to submission-order FIFO.
    """

    name = "benefit-aware"

    def __init__(
        self,
        reverse_within_job: bool = True,
        expected_lead_bytes: float = 512 * MB,
    ):
        super().__init__(reverse_within_job)
        if expected_lead_bytes <= 0:
            raise ValueError("expected_lead_bytes must be positive")
        self.expected_lead_bytes = float(expected_lead_bytes)

    def benefit(self, item: MigrationWorkItem) -> float:
        if item.job_input_bytes <= 0:
            return 1.0
        return min(1.0, self.expected_lead_bytes / item.job_input_bytes)

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (
            -self.benefit(item),
            item.job_submitted_at,
            self._within_job(item),
            item.seq,
        )


register(SmallestJobFirst.name, SmallestJobFirst)
register(FifoOrder.name, FifoOrder)
register(BenefitAware.name, BenefitAware)
