"""Migration-queue ordering policies (paper Sections III-A1, IV-C5, IV-E).

Three policies:

* :class:`SmallestJobFirst` — the paper's choice;
* :class:`FifoOrder` — the IV-C5 ablation baseline;
* :class:`BenefitAware` — the extension the paper sketches in Section
  IV-E: "A migration scheme that can infer the Ignem speed-up curve for
  different jobs can potentially use this information to prioritize jobs
  which will benefit more."
"""

from __future__ import annotations

from typing import Tuple

from ..storage.device import MB
from .commands import MigrationWorkItem


class MigrationPolicy:
    """Orders the per-slave migration queue; lower keys migrate first."""

    name = "abstract"

    def __init__(self, reverse_within_job: bool = True):
        #: Migrate each job's blocks tail-first (see MigrationWorkItem).
        self.reverse_within_job = reverse_within_job

    def priority(self, item: MigrationWorkItem) -> Tuple:
        raise NotImplementedError

    def _within_job(self, item: MigrationWorkItem) -> int:
        if self.reverse_within_job:
            return -item.order_hint
        return item.order_hint


class SmallestJobFirst(MigrationPolicy):
    """The paper's policy: prioritize blocks of jobs with smaller inputs.

    Improves more jobs per byte migrated and raises the chance of fully
    migrating a job's input within its lead-time.  Ties broken by job
    submission time (III-A1), then within-job block order, then arrival.
    """

    name = "smallest-job-first"

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (
            item.job_input_bytes,
            item.job_submitted_at,
            self._within_job(item),
            item.seq,
        )


class FifoOrder(MigrationPolicy):
    """The natural strategy the paper ablates against: job arrival order."""

    name = "fifo"

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (item.job_submitted_at, self._within_job(item), item.seq)


class BenefitAware(MigrationPolicy):
    """Prioritize by expected speed-up per migrated byte (paper IV-E).

    The wordcount sweep (Fig 8) shows the per-job speed-up curve: jobs
    whose whole input fits in the lead-time get the full benefit; beyond
    that the marginal benefit of each migrated byte decays as it becomes
    a smaller fraction of the input.  This policy scores each block by
    the fraction of its job's input that is expected to migrate in time
    (``expected_lead_bytes / job_input_bytes``, saturated at 1) and
    migrates higher-benefit jobs first.

    With ``expected_lead_bytes`` well below every job size this decays to
    smallest-job-first; with it very large, to submission-order FIFO.
    """

    name = "benefit-aware"

    def __init__(
        self,
        reverse_within_job: bool = True,
        expected_lead_bytes: float = 512 * MB,
    ):
        super().__init__(reverse_within_job)
        if expected_lead_bytes <= 0:
            raise ValueError("expected_lead_bytes must be positive")
        self.expected_lead_bytes = float(expected_lead_bytes)

    def benefit(self, item: MigrationWorkItem) -> float:
        if item.job_input_bytes <= 0:
            return 1.0
        return min(1.0, self.expected_lead_bytes / item.job_input_bytes)

    def priority(self, item: MigrationWorkItem) -> Tuple:
        return (
            -self.benefit(item),
            item.job_submitted_at,
            self._within_job(item),
            item.seq,
        )


def make_policy(name: str, reverse_within_job: bool = True) -> MigrationPolicy:
    if name == "smallest-job-first":
        return SmallestJobFirst(reverse_within_job)
    if name == "fifo":
        return FifoOrder(reverse_within_job)
    if name == "benefit-aware":
        return BenefitAware(reverse_within_job)
    raise ValueError(f"unknown migration policy {name!r}")
