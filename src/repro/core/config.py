"""Ignem configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..storage.device import GB, MB
from ..storage.tiers import MEM
from .policy import available_policies


@dataclass(frozen=True)
class IgnemConfig:
    """Tunables for the Ignem master and slaves.

    * ``buffer_capacity`` — per-slave cap on migrated bytes (paper
      Section III-B2: "Ignem limits the amount of migrated data to a
      configurable maximum threshold").  The paper's worst-case analysis
      (II-C2) shows 12.5GB suffices; we default to 16GB headroom.
    * ``cleanup_threshold`` — occupancy fraction at which a slave asks the
      cluster scheduler which jobs are still alive and purges references
      held by dead jobs (III-A4).
    * ``rpc_latency`` — simulated latency of one batched master<->slave or
      client->master RPC (III-A6 batches commands to amortize this).
    * ``policy`` — migration-queue ordering: ``"smallest-job-first"``
      (the paper's choice, III-A1), ``"fifo"`` (the IV-C5 ablation), or
      ``"benefit-aware"`` (the Section IV-E extension: prioritize jobs
      with more expected speed-up per migrated byte).
    * ``migration_concurrency`` — concurrent migrations per slave.  The
      paper uses 1 to protect disk bandwidth; >1 is an ablation.
    * ``do_not_harm`` — when the buffer is full, never evict migrated
      blocks to admit new ones (III-A3).  ``False`` switches to an
      evict-for-newer policy (ablation).
    * ``reverse_within_job`` — migrate each job's blocks tail-first so
      migration never races the mappers' scan front (ablation:
      ``False`` migrates in scan order).
    * ``replicas_to_migrate`` — how many replicas of each block to
      migrate.  The paper picks exactly one at random (III-A2): network
      bandwidth is plentiful, so extra in-memory copies mostly waste
      disk bandwidth and RAM (ablation: >1).
    * ``busy_threshold`` — optional Aqueduct-style throttle (paper §V
      relates Ignem to Aqueduct's bounded-impact migration): when set,
      a slave defers starting a migration while its disk already serves
      at least this many foreground streams, re-checking every
      ``busy_poll_interval`` seconds.  ``None`` keeps the paper's purely
      work-conserving behaviour.
    * ``migration_read_rate`` — optional per-slave ceiling (bytes/s) on
      the mmap/mlock migration read path.  ``None`` (default) lets a lone
      migration stream use the disk's full sequential bandwidth.  The
      paper's Fig 8 numbers imply the authors' mlock page-in path ran at
      only ~25-45MB/s per slave (2GB fully migrated in a ~10s lead across
      8 servers); setting a cap reproduces that variant — the Fig 8
      harness runs both.
    * ``command_timeout`` / ``command_max_retries`` / ``command_backoff``
      / ``command_backoff_factor`` — robustness of the master→slave
      command channel: an unacknowledged command (slave down, message
      lost) is retried after ``command_timeout`` plus an exponential
      backoff (``command_backoff * command_backoff_factor**attempt``),
      at most ``command_max_retries`` times, before the master falls
      back to re-routing the block's migration to another live replica
      holder (graceful degradation, III-A5).
    * ``migration_tier`` — the destination tier migrations land in by
      default (the paper's design migrates into ``mem``; an SSD capacity
      tier is a preset choice on multi-tier hierarchies).
    * ``tier_buffer_capacities`` — per-destination-tier caps on migrated
      bytes as ``((tier, cap), ...)``; ``None`` applies
      ``buffer_capacity`` to ``migration_tier`` alone, which is exactly
      the paper's single-threshold design.  A slave keeps one ordered
      migration queue (and its own do-not-harm accounting) per tier
      listed here.
    """

    buffer_capacity: float = 16 * GB
    cleanup_threshold: float = 0.9
    rpc_latency: float = 0.002
    policy: str = "smallest-job-first"
    migration_concurrency: int = 1
    do_not_harm: bool = True
    reverse_within_job: bool = True
    replicas_to_migrate: int = 1
    migration_read_rate: Optional[float] = None
    busy_threshold: Optional[int] = None
    busy_poll_interval: float = 0.5
    command_timeout: float = 0.5
    command_max_retries: int = 3
    command_backoff: float = 0.25
    command_backoff_factor: float = 2.0
    migration_tier: str = MEM
    tier_buffer_capacities: Optional[Tuple[Tuple[str, float], ...]] = None

    def destination_tiers(self) -> Tuple[str, ...]:
        """The tiers a slave accepts migrations into, in declared order."""
        if self.tier_buffer_capacities is None:
            return (self.migration_tier,)
        return tuple(tier for tier, _cap in self.tier_buffer_capacities)

    def buffer_capacity_for(self, tier: str) -> float:
        """The migrated-bytes cap for one destination tier."""
        if self.tier_buffer_capacities is None:
            if tier != self.migration_tier:
                raise ValueError(f"{tier!r} is not a migration destination")
            return self.buffer_capacity
        for name, cap in self.tier_buffer_capacities:
            if name == tier:
                return cap
        raise ValueError(f"{tier!r} is not a migration destination")

    def __post_init__(self) -> None:
        if self.buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")
        if not 0 < self.cleanup_threshold <= 1:
            raise ValueError("cleanup_threshold must be in (0, 1]")
        if self.rpc_latency < 0:
            raise ValueError("rpc_latency must be non-negative")
        if self.policy not in available_policies():
            raise ValueError(f"unknown policy {self.policy!r}")
        if not self.migration_tier:
            raise ValueError("migration_tier must be non-empty")
        if self.tier_buffer_capacities is not None:
            if not self.tier_buffer_capacities:
                raise ValueError("tier_buffer_capacities must be None or non-empty")
            tiers = [tier for tier, _cap in self.tier_buffer_capacities]
            if len(set(tiers)) != len(tiers):
                raise ValueError("tier_buffer_capacities has duplicate tiers")
            if self.migration_tier not in tiers:
                raise ValueError(
                    "migration_tier must appear in tier_buffer_capacities"
                )
            for tier, cap in self.tier_buffer_capacities:
                if not tier:
                    raise ValueError("tier names must be non-empty")
                if cap <= 0:
                    raise ValueError(f"tier {tier!r}: capacity must be positive")
        if self.migration_concurrency < 1:
            raise ValueError("migration_concurrency must be >= 1")
        if self.replicas_to_migrate < 1:
            raise ValueError("replicas_to_migrate must be >= 1")
        if self.busy_threshold is not None and self.busy_threshold < 1:
            raise ValueError("busy_threshold must be >= 1 or None")
        if self.busy_poll_interval <= 0:
            raise ValueError("busy_poll_interval must be positive")
        if self.migration_read_rate is not None and self.migration_read_rate <= 0:
            raise ValueError("migration_read_rate must be positive or None")
        if self.command_timeout <= 0:
            raise ValueError("command_timeout must be positive")
        if self.command_max_retries < 0:
            raise ValueError("command_max_retries must be >= 0")
        if self.command_backoff < 0:
            raise ValueError("command_backoff must be non-negative")
        if self.command_backoff_factor < 1:
            raise ValueError("command_backoff_factor must be >= 1")
