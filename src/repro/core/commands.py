"""Wire-level commands between Ignem clients, master, and slaves."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..dfs.blocks import Block
from ..storage.tiers import MEM


@dataclass(slots=True, unsafe_hash=True)
class MigrationWorkItem:
    """One block-migration order queued at a slave.

    Carries everything the slave's priority policy needs: the owning
    job's total input size and submission time (paper III-A1), plus the
    block's position within the job's input (``order_hint``) so policies
    can migrate from the tail of the job's scan order — mappers consume
    from the head, so tail-first migration avoids racing the scan front
    and wasting disk reads on blocks a task is about to read anyway.

    Migrations are tier-addressed: ``dst_tier`` names the tier the block
    moves into (the paper's design is always ``mem``) and ``src_tier``
    optionally pins the tier it must be read from — ``None`` lets the
    slave's DataNode resolve the highest tier below the destination that
    holds the block, which is the paper's disk-to-memory path on the
    default 2-tier hierarchy.
    """

    block: Block
    job_id: str
    job_input_bytes: float
    job_submitted_at: float
    implicit_eviction: bool
    order_hint: int = 0
    dst_tier: str = MEM
    src_tier: Optional[str] = None
    seq: int = field(default_factory=itertools.count().__next__)
    #: Stamped by the receiving slave (sim-time of queue entry) to
    #: measure queue waits; excluded from equality/hash so observability
    #: never changes command identity.
    received_at: float = field(default=0.0, compare=False)

    @property
    def block_id(self) -> str:
        return self.block.block_id


@dataclass(slots=True, unsafe_hash=True)
class MigrateCommand:
    """Master -> slave batch: migrate these blocks for this job."""

    job_id: str
    items: Tuple[MigrationWorkItem, ...]


@dataclass(slots=True, unsafe_hash=True)
class EvictCommand:
    """Master -> slave batch: drop this job's references to these blocks."""

    job_id: str
    block_ids: Tuple[str, ...]
