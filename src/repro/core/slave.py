"""IgnemSlave: per-server migration worker inside the DataNode.

Controls *how* and *when* blocks move into memory (paper Section III-A):

* incoming work queues in priority order (smallest-job-first by default),
  one ordered queue per destination tier (the paper's design is the
  single ``mem`` queue);
* one block migrates at a time per tier, at full sequential bandwidth of
  the tier it reads from;
* migration is work-conserving — pending work never waits behind nothing;
* per-block reference lists of job IDs govern eviction: explicit on job
  completion, implicit on read (opt-in), plus a scheduler liveness sweep
  under memory pressure (III-A4);
* the *Do-not-harm* rule, applied per destination tier: when a tier's
  migration buffer is full, new blocks wait — migrated data is never
  evicted to admit them (III-A3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..dfs.blocks import Block
from ..dfs.datanode import DataNode, DataNodeError
from ..metrics.collector import MetricsCollector
from ..metrics.records import EvictionRecord, MemorySample, MigrationRecord
from ..obs.registry import MetricsRegistry
from ..scheduler.resource_manager import ResourceManager
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.resources import PriorityItem, PriorityStore
from ..transport.messages import Ack, EvictMsg, FailoverMsg, MigrateMsg
from .commands import EvictCommand, MigrateCommand, MigrationWorkItem
from .config import IgnemConfig
from .policy import MigrationPolicy, make_policy


class IgnemSlave:
    """Migration agent co-located with one DataNode."""

    def __init__(
        self,
        env: Environment,
        datanode: DataNode,
        rm: Optional[ResourceManager],
        config: Optional[IgnemConfig] = None,
        collector: Optional[MetricsCollector] = None,
        registry: Optional[MetricsRegistry] = None,
        tier_accumulator: Optional[Dict[str, float]] = None,
    ):
        self.env = env
        self.datanode = datanode
        self.rm = rm
        #: Optional shared per-tier occupancy totals, folded into on every
        #: accounting delta so a cluster-wide snapshot never has to sum
        #: over every slave (O(1) instead of O(nodes) at trace scale).
        self._tier_accumulator = tier_accumulator
        self.config = config or IgnemConfig()
        self.collector = collector or MetricsCollector()
        self.metrics = registry or MetricsRegistry()
        self.policy: MigrationPolicy = make_policy(
            self.config.policy, self.config.reverse_within_job
        )
        self.name = datanode.name

        destinations = self.config.destination_tiers()
        #: One ordered migration queue per destination tier.
        self.tier_queues: Dict[str, PriorityStore] = {
            tier: PriorityStore(env) for tier in destinations
        }
        #: The default destination tier's queue (the paper's single queue).
        self.queue: PriorityStore = self.tier_queues[self.config.migration_tier]
        self._refs: Dict[str, Set[str]] = {}
        self._implicit_jobs: Set[str] = set()
        self._migrated: Dict[str, float] = {}
        self._migrated_tier: Dict[str, str] = {}
        self._migrated_meta: Dict[str, Tuple[float, float]] = {}
        self.migrated_bytes = 0.0
        #: Per-destination-tier migrated-bytes totals.
        self.tier_bytes: Dict[str, float] = {tier: 0.0 for tier in destinations}
        #: (time, migrated_bytes) after every change — Fig 7's raw data.
        self.usage_timeline: List[Tuple[float, float]] = [(env.now, 0.0)]
        #: Per-tier usage timelines (the per-tier buffer-cap oracle's data).
        self.tier_usage_timeline: Dict[str, List[Tuple[float, float]]] = {
            tier: [(env.now, 0.0)] for tier in destinations
        }
        self._space_freed: Dict[str, Event] = {
            tier: env.event() for tier in destinations
        }
        self.alive = True
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

        # Registry instruments (shared across slaves when cluster-built,
        # so ``ignem.slave.*`` are cluster-wide totals).  Counter bumps
        # are pure bookkeeping — they never touch simulation time, so the
        # clean path stays bit-identical.
        metrics = self.metrics
        self._c_refs_added = metrics.counter("ignem.slave.refs_added")
        self._c_refs_removed = metrics.counter("ignem.slave.refs_removed")
        self._c_completed = metrics.counter("ignem.slave.migrations_completed")
        self._c_skipped = metrics.counter("ignem.slave.migrations_skipped")
        self._c_cancelled = metrics.counter("ignem.slave.migrations_cancelled")
        self._c_dnh_waits = metrics.counter("ignem.slave.do_not_harm_waits")
        self._h_queue_wait = metrics.histogram("ignem.slave.queue_wait_seconds")
        self._h_migration = metrics.histogram("ignem.slave.migration_seconds")

        datanode.on_block_read = self._on_block_read
        for tier in destinations:
            # The default tier's workers keep their historical names.
            suffix = "" if tier == self.config.migration_tier else f"-{tier}"
            for index in range(self.config.migration_concurrency):
                env.process(
                    self._worker(tier),
                    name=f"ignem-slave-{self.name}{suffix}-w{index}",
                )

    # -- command intake (from the master) --------------------------------------

    def handle_message(self, msg):
        """The slave's ``slave/<node>`` transport endpoint.

        Translates protocol messages into the historical receive calls;
        the :class:`~repro.transport.messages.Ack` carries the same
        acknowledgement bit the master's retry machinery keys on.
        """
        if isinstance(msg, MigrateMsg):
            return Ack(self.receive_migrate(msg.command))
        if isinstance(msg, EvictMsg):
            return Ack(self.receive_evict(msg.command))
        if isinstance(msg, FailoverMsg):
            # A master change (failover or cold restart): purge reference
            # state to stay consistent with the new master (III-A5).
            self.purge_all(reason="failure")
            return Ack(True)
        raise TypeError(f"slave cannot handle {type(msg).__name__}")

    def receive_migrate(self, command: MigrateCommand) -> bool:
        """Queue a batch of migration work for one job.

        Returns the RPC acknowledgement: ``False`` when the slave is down
        (the command was lost), which drives the master's retry path.
        """
        if not self.alive:
            return False
        now = self.env.now
        for item in command.items:
            queue = self.tier_queues.get(item.dst_tier)
            if queue is None:
                raise ValueError(
                    f"slave {self.name} has no migration queue for tier "
                    f"{item.dst_tier!r} (destinations: "
                    f"{', '.join(self.tier_queues)})"
                )
            refs = self._refs.setdefault(item.block_id, set())
            refs.add(item.job_id)
            self._c_refs_added.inc()
            if item.implicit_eviction:
                self._implicit_jobs.add(item.job_id)
            item.received_at = now
            queue.put_nowait(PriorityItem(self.policy.priority(item), item))
        return True

    def receive_evict(self, command: EvictCommand) -> bool:
        """Drop a completed job's references (explicit eviction).
        Returns the RPC acknowledgement, as :meth:`receive_migrate`."""
        if not self.alive:
            return False
        for block_id in command.block_ids:
            self._remove_ref(block_id, command.job_id, reason="explicit")
        return True

    # -- state queries --------------------------------------------------------------

    def block_migrated(self, block_id: str) -> bool:
        return block_id in self._migrated

    def reference_list(self, block_id: str) -> Set[str]:
        return set(self._refs.get(block_id, ()))

    def reference_count(self) -> int:
        """Total job references across all blocks (leak detector)."""
        return sum(len(refs) for refs in self._refs.values())

    def referenced_blocks(self) -> Dict[str, Set[str]]:
        """Copy of the block -> referencing-jobs map (invariant checks)."""
        return {block_id: set(refs) for block_id, refs in self._refs.items()}

    def resident_bytes(self) -> float:
        """Sum of the sizes of currently migrated blocks; must equal
        :attr:`migrated_bytes` up to float noise (accounting invariant)."""
        return sum(self._migrated.values())

    def migrated_tier(self, block_id: str):
        """The destination tier a migrated block resides in (or None)."""
        return self._migrated_tier.get(block_id)

    @property
    def pending_migrations(self) -> int:
        return sum(len(queue.items) for queue in self.tier_queues.values())

    # -- failure handling --------------------------------------------------------------

    def purge_all(self, reason: str = "failure") -> None:
        """Drop every reference list and migrated block.

        Used when the master fails (slaves reset to match the new
        master's empty state, paper III-A5) and on slave restart.
        """
        for block_id in list(self._migrated.keys()):
            self._release_block(block_id, reason=reason)
        self._refs.clear()
        self._implicit_jobs.clear()
        for queue in self.tier_queues.values():
            queue.remove(lambda _entry: True)

    def fail(self) -> None:
        """Kill the slave process; the OS reclaims all pinned memory."""
        self.alive = False
        self.purge_all(reason="failure")

    def decommission(self) -> None:
        """Graceful shutdown for a node leaving the cluster: stop
        accepting work and release every migrated block (the eviction
        records carry ``reason="decommission"`` so byte accounting can
        tell a drain from a crash)."""
        self.alive = False
        self.purge_all(reason="decommission")

    def restart(self) -> None:
        """Restart on the same server; comes back with empty state."""
        self.alive = True

    # -- migration worker -------------------------------------------------------------

    def _worker(self, tier: str):
        queue = self.tier_queues[tier]
        while True:
            entry = yield queue.get()
            yield from self._handle(entry.item)

    def _handle(self, item: MigrationWorkItem):
        block = item.block
        block_id = item.block_id
        tier = item.dst_tier
        capacity = self.config.buffer_capacity_for(tier)
        enqueued_at = self.env.now
        self._h_queue_wait.observe(max(0.0, enqueued_at - item.received_at))

        refs = self._refs.get(block_id)
        if not refs or item.job_id not in refs:
            # Every interested job finished or already read the block from
            # disk while the work queued — migrating now would be waste.
            self._record_migration(item, enqueued_at, outcome="skipped")
            return

        if block_id in self._migrated:
            return  # another job's command already migrated it

        # Capacity gate (paper III-B2), per destination tier: wait for
        # space, never evict not-yet-read blocks to make room
        # (Do-not-harm, III-A3) — unless the ablation config allows
        # preempting blocks of later jobs.
        while self.tier_bytes[tier] + block.nbytes > capacity:
            self._maybe_cleanup_dead_jobs()
            if self.tier_bytes[tier] + block.nbytes <= capacity:
                break
            if not self.config.do_not_harm and self._evict_victim(item):
                continue
            # Do-not-harm stall (paper III-A3): the tier's buffer is full
            # and migrated data is never evicted to admit new blocks.
            self._c_dnh_waits.inc()
            wait_start = self.env.now
            yield self._wait_for_space(tier)
            if self.obs is not None:
                self.obs.on_do_not_harm_wait(
                    self.name, block_id, item.job_id, wait_start
                )
            refs = self._refs.get(block_id)
            if not refs:
                self._record_migration(item, enqueued_at, outcome="skipped")
                return

        refs = self._refs.get(block_id)
        if not refs:
            self._record_migration(item, enqueued_at, outcome="skipped")
            return
        if block_id in self._migrated:
            return

        # Optional Aqueduct-style throttle: hold off while the source
        # device is already serving many foreground streams, bounding
        # migration's impact on foreground reads (busy_threshold).
        if self.config.busy_threshold is not None:
            while (
                self.datanode.alive
                and self.datanode.migration_source(block_id, tier).active_transfers
                >= self.config.busy_threshold
            ):
                yield self.env.timeout(self.config.busy_poll_interval)
                if not self._refs.get(block_id):
                    self._record_migration(item, enqueued_at, outcome="skipped")
                    return

        start = self.env.now
        if not self.datanode.alive:
            self._record_migration(item, enqueued_at, outcome="cancelled")
            return
        try:
            yield self.datanode.migrate_block_to_tier(
                block, tier, rate_cap=self.config.migration_read_rate
            )
        except DataNodeError:
            # The DataNode died mid-read: the partial pages are gone with
            # the process; the worker survives to serve post-restart work.
            self._record_migration(item, enqueued_at, outcome="cancelled")
            return

        # Reads may have raced with the migration and emptied the list.
        if not self._refs.get(block_id):
            self.datanode.evict_block_from_tier(block_id, tier)
            self._record_migration(item, enqueued_at, outcome="cancelled")
            return

        self._migrated[block_id] = block.nbytes
        self._migrated_tier[block_id] = tier
        self._migrated_meta[block_id] = (
            item.job_input_bytes,
            item.job_submitted_at,
        )
        self._account(block.nbytes, tier)
        self.collector.record_migration(
            MigrationRecord(
                job_id=item.job_id,
                block_id=block_id,
                node=self.name,
                nbytes=block.nbytes,
                enqueued_at=enqueued_at,
                start=start,
                end=self.env.now,
                outcome="completed",
            )
        )
        self._c_completed.inc()
        self._h_migration.observe(self.env.now - start)
        if self.obs is not None:
            self.obs.on_migration(
                self.name,
                item,
                start,
                "completed",
                max(0.0, enqueued_at - item.received_at),
            )

    # -- reference lists & eviction -----------------------------------------------------

    def _on_block_read(self, block: Block, job_id: Optional[str]) -> None:
        """DataNode read-path hook: implicit eviction (paper III-B2)."""
        if job_id is None or job_id not in self._implicit_jobs:
            return
        self._remove_ref(block.block_id, job_id, reason="implicit")

    def _remove_ref(self, block_id: str, job_id: str, reason: str) -> None:
        refs = self._refs.get(block_id)
        if refs is None or job_id not in refs:
            return
        refs.discard(job_id)
        self._c_refs_removed.inc()
        if not refs:
            del self._refs[block_id]
            self._release_block(block_id, reason=reason)

    def _release_block(self, block_id: str, reason: str) -> None:
        nbytes = self._migrated.pop(block_id, None)
        self._migrated_meta.pop(block_id, None)
        if nbytes is None:
            return
        tier = self._migrated_tier.pop(block_id, self.config.migration_tier)
        self.datanode.evict_block_from_tier(block_id, tier)
        self._account(-nbytes, tier)
        self.collector.record_eviction(
            EvictionRecord(
                block_id=block_id,
                node=self.name,
                nbytes=nbytes,
                time=self.env.now,
                reason=reason,
            )
        )
        self.metrics.counter(f"ignem.slave.evictions.{reason}").inc()
        if self.obs is not None:
            self.obs.on_eviction(self.name, block_id, nbytes, reason, tier)
        self._signal_space(tier)

    def cleanup_dead_jobs(self, force: bool = False) -> None:
        """Liveness sweep (paper III-A4): drop references held by jobs the
        scheduler no longer knows.  Normally gated on memory pressure
        (``cleanup_threshold``); ``force=True`` sweeps unconditionally —
        the post-run invariant checker uses it to settle leaked state.
        """
        if self.rm is None:
            return
        if not force:
            # Pressure = the fullest destination tier (identical to the
            # historical single-buffer formula on the default config).
            occupancy = max(
                self.tier_bytes[tier] / self.config.buffer_capacity_for(tier)
                for tier in self.tier_bytes
            )
            if occupancy < self.config.cleanup_threshold:
                return
        dead_jobs = {
            job_id
            for refs in self._refs.values()
            for job_id in refs
            if not self.rm.job_active(job_id)
        }
        for job_id in dead_jobs:
            for block_id in [
                bid for bid, refs in self._refs.items() if job_id in refs
            ]:
                self._remove_ref(block_id, job_id, reason="cleanup")

    def _maybe_cleanup_dead_jobs(self) -> None:
        self.cleanup_dead_jobs(force=False)

    def _evict_victim(self, incoming: MigrationWorkItem) -> bool:
        """Ablation path (do_not_harm=False): evict the migrated block of
        the largest / latest job to admit the incoming block.  Only blocks
        resident in the incoming block's destination tier free the right
        space; never evicts blocks belonging to jobs smaller than the
        incoming one — that would be strictly harmful even under the
        aggressive policy."""
        candidates = [
            (meta, block_id)
            for block_id, meta in self._migrated_meta.items()
            if meta > (incoming.job_input_bytes, incoming.job_submitted_at)
            and self._migrated_tier.get(block_id) == incoming.dst_tier
        ]
        if not candidates:
            return False
        _, victim = max(candidates)
        for job_id in list(self._refs.get(victim, ())):
            self._refs[victim].discard(job_id)
        self._refs.pop(victim, None)
        self._release_block(victim, reason="preempted")
        return True

    def _wait_for_space(self, tier: str) -> Event:
        if self._space_freed[tier].triggered:
            self._space_freed[tier] = self.env.event()
        return self._space_freed[tier]

    def _signal_space(self, tier: str) -> None:
        event = self._space_freed.get(tier)
        if event is not None and not event.triggered:
            event.succeed()

    # -- accounting ----------------------------------------------------------------------

    def _account(self, delta: float, tier: str) -> None:
        self.migrated_bytes += delta
        if self.migrated_bytes < 0:
            # Fractional final blocks make the +/- sums float-inexact;
            # clamp the sub-byte residue but treat real negatives as bugs.
            if self.migrated_bytes < -1.0:
                raise AssertionError(
                    f"negative migrated_bytes on {self.name}: {self.migrated_bytes}"
                )
            self.migrated_bytes = 0.0
        old_per_tier = self.tier_bytes.get(tier, 0.0)
        per_tier = old_per_tier + delta
        if per_tier < 0:
            if per_tier < -1.0:
                raise AssertionError(
                    f"negative tier bytes on {self.name}/{tier}: {per_tier}"
                )
            per_tier = 0.0
        self.tier_bytes[tier] = per_tier
        accumulator = self._tier_accumulator
        if accumulator is not None:
            accumulator[tier] = (
                accumulator.get(tier, 0.0) + per_tier - old_per_tier
            )
        self.usage_timeline.append((self.env.now, self.migrated_bytes))
        self.tier_usage_timeline.setdefault(tier, []).append(
            (self.env.now, per_tier)
        )
        self.collector.record_memory_sample(
            MemorySample(self.name, self.env.now, self.migrated_bytes)
        )

    def _record_migration(
        self, item: MigrationWorkItem, enqueued_at: float, outcome: str
    ) -> None:
        self.collector.record_migration(
            MigrationRecord(
                job_id=item.job_id,
                block_id=item.block_id,
                node=self.name,
                nbytes=item.block.nbytes,
                enqueued_at=enqueued_at,
                start=self.env.now,
                end=self.env.now,
                outcome=outcome,
            )
        )
        (self._c_skipped if outcome == "skipped" else self._c_cancelled).inc()
        if self.obs is not None:
            self.obs.on_migration(
                self.name,
                item,
                self.env.now,
                outcome,
                max(0.0, enqueued_at - item.received_at),
            )

    def __repr__(self) -> str:
        return (
            f"<IgnemSlave {self.name} migrated={len(self._migrated)} "
            f"pending={self.pending_migrations}>"
        )
