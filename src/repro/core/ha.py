"""High-availability master pair (paper Section III-A5).

The paper: "A backup master can also be kept active at all times, and
have its address pre-listed in the configuration file."  This module
implements that option: a primary and a hot standby share the slave
topology; clients talk to the pair through :class:`HighAvailabilityMaster`,
which routes to whichever master is alive.  On failover the slaves purge
their reference lists to stay consistent with the standby's empty state —
the paper's "temporary performance loss, never a correctness loss".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dfs.namenode import NameNode
from ..metrics.collector import MetricsCollector
from ..obs.registry import MetricsRegistry
from ..sim.engine import Environment
from ..sim.rand import RandomSource
from ..transport.messages import FailoverMsg
from .config import IgnemConfig
from .master import IgnemMaster, dispatch_master_message
from .slave import IgnemSlave


class HighAvailabilityMaster:
    """A primary/standby Ignem master pair behind one client-facing API.

    Failover is immediate (the standby's address is pre-listed, so there
    is no configuration broadcast to wait for): the first request after a
    primary failure is served by the standby.  Both masters report into
    one shared :class:`MetricsRegistry`, so ``ignem.master.*`` counters
    are cluster-wide totals across failovers.
    """

    def __init__(
        self,
        env: Environment,
        namenode: NameNode,
        rng: Optional[RandomSource] = None,
        config: Optional[IgnemConfig] = None,
        collector: Optional[MetricsCollector] = None,
        registry: Optional[MetricsRegistry] = None,
        transport=None,
    ):
        rng = rng or RandomSource(0)
        registry = registry or MetricsRegistry()
        self.transport = transport
        self.primary = IgnemMaster(
            env,
            namenode,
            rng=rng.spawn("primary"),
            config=config,
            collector=collector,
            registry=registry,
            transport=transport,
        )
        self.standby = IgnemMaster(
            env,
            namenode,
            rng=rng.spawn("standby"),
            config=config,
            collector=collector,
            registry=registry,
            transport=transport,
        )
        self._failovers = 0

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry shared by both masters."""
        return self.primary.metrics

    @property
    def obs(self):
        """Observability facade, mirrored onto both masters."""
        return self.primary.obs

    @obs.setter
    def obs(self, facade) -> None:
        self.primary.obs = facade
        self.standby.obs = facade

    # -- topology -------------------------------------------------------------

    def attach_slave(self, slave: IgnemSlave) -> None:
        """Register a slave with both masters (shared topology)."""
        self.primary.attach_slave(slave)
        self.standby.attach_slave(slave)

    def slaves(self) -> List[IgnemSlave]:
        return self.active.slaves()

    # -- routing ----------------------------------------------------------------

    @property
    def active(self) -> IgnemMaster:
        """Whichever master currently serves requests."""
        if self.primary.alive:
            return self.primary
        return self.standby

    @property
    def alive(self) -> bool:
        return self.primary.alive or self.standby.alive

    @property
    def failovers(self) -> int:
        return self._failovers

    def request_migration(
        self,
        paths: Sequence[str],
        job_id: str,
        implicit_eviction: bool = False,
        dst_tier: Optional[str] = None,
    ) -> None:
        self.active.request_migration(
            paths, job_id, implicit_eviction=implicit_eviction, dst_tier=dst_tier
        )

    def request_eviction(self, paths: Sequence[str], job_id: str) -> None:
        self.active.request_eviction(paths, job_id)

    def request_block_migration(
        self, blocks, owner: str, dst_tier: Optional[str] = None
    ) -> None:
        self.active.request_block_migration(blocks, owner, dst_tier=dst_tier)

    def request_block_eviction(
        self, block_ids: Sequence[str], owner: str
    ) -> None:
        self.active.request_block_eviction(block_ids, owner)

    def handle_message(self, msg):
        """The ``"master"`` transport endpoint, routed through the pair
        (the first request after a primary failure lands on the standby)."""
        return dispatch_master_message(self, msg)

    # -- fault-injection plumbing ---------------------------------------------------

    @property
    def rpc_fault(self):
        """Per-send fault hook, mirrored onto both masters."""
        return self.primary.rpc_fault

    @rpc_fault.setter
    def rpc_fault(self, hook) -> None:
        self.primary.rpc_fault = hook
        self.standby.rpc_fault = hook

    @property
    def command_tap(self):
        """Command-boundary tap, mirrored onto both masters so the DST
        differential checker sees deliveries across failovers."""
        return self.primary.command_tap

    @command_tap.setter
    def command_tap(self, tap) -> None:
        self.primary.command_tap = tap
        self.standby.command_tap = tap

    @property
    def failure_tap(self):
        """Slave-state-loss tap; mirroring it onto both masters means a
        crash observed by either one releases the migration target (the
        discard is idempotent, so the double fire is harmless)."""
        return self.primary.failure_tap

    @failure_tap.setter
    def failure_tap(self, tap) -> None:
        self.primary.failure_tap = tap
        self.standby.failure_tap = tap

    def handle_slave_failure(self, node: str) -> None:
        """Prune the crashed slave's routing state from both masters."""
        self.primary.handle_slave_failure(node)
        self.standby.handle_slave_failure(node)

    # -- failure handling ----------------------------------------------------------

    def fail_primary(self) -> None:
        """Kill the primary; the standby takes over on the next request.

        Slaves purge their reference lists so they are consistent with
        the standby's empty migration state (paper III-A5) — exactly the
        same rule as a cold master restart, but with zero unavailability
        because the standby is already running.
        """
        if not self.primary.alive:
            return
        self.primary.fail()
        self._failovers += 1
        if self.transport is not None:
            # Announce the failover to every slave as a protocol message;
            # the handler performs the same purge the direct call did.
            announcement = FailoverMsg(
                generation=self._failovers, active="standby"
            )
            for slave in self.standby.slaves():
                self.transport.send(f"slave/{slave.name}", announcement)
        else:
            for slave in self.standby.slaves():
                slave.purge_all(reason="failure")

    def recover_primary(self) -> None:
        """Bring the primary back as the new standby-turned-active pair.

        The recovered process starts empty; since the standby carried the
        live assignment state it simply keeps serving (no purge needed).
        """
        self.primary.alive = True
        if self.standby.alive:
            # Two live masters: the standby keeps its state; the freshly
            # recovered primary must not serve with stale (empty) state,
            # so swap roles — the old standby becomes the primary.
            self.primary, self.standby = self.standby, self.primary
