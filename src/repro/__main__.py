"""Command-line entry point: reproduce the paper's experiments.

Usage::

    python -m repro list
    python -m repro run table1 fig6 --out results/ --seed 0
    python -m repro all --out results/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.report import available_experiments, run_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Ignem: Upward Migration "
            "of Cold Data in Big Data File Systems' (ICDCS 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run selected experiments")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run.add_argument("--out", default="results", help="output directory")
    run.add_argument("--seed", type=int, default=0)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--out", default="results", help="output directory")
    everything.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    names = None if args.command == "all" else args.experiments
    try:
        results = run_experiments(names, out_dir=args.out, seed=args.seed)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    for name, text in results.items():
        print(f"\n=== {name} ===")
        print(text)
    print(f"\nresults written to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
