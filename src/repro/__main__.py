"""Command-line entry point: reproduce the paper's experiments.

Usage::

    python -m repro list
    python -m repro run table1 fig6 --out results/ --seed 0
    python -m repro all --out results/
    python -m repro profile --mode ignem --num-jobs 200 --top 30
    python -m repro chaos --seeds 10
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.report import available_experiments, run_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Ignem: Upward Migration "
            "of Cold Data in Big Data File Systems' (ICDCS 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run selected experiments")
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run.add_argument("--out", default="results", help="output directory")
    run.add_argument("--seed", type=int, default=0)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--out", default="results", help="output directory")
    everything.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile",
        help="cProfile one SWIM run (the perf-tuning entry point)",
        description=(
            "Run run_swim() under cProfile and print the hottest functions. "
            "Wall-clock comparisons against a baseline commit belong to "
            "benchmarks/perf/bench_swim.py; this command answers the "
            "follow-up question of *where* the time goes."
        ),
    )
    profile.add_argument(
        "--mode", default="ignem", choices=("hdfs", "ignem", "ram")
    )
    profile.add_argument("--num-jobs", type=int, default=200)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=30, help="rows to print")
    profile.add_argument(
        "--sort",
        default="tottime",
        choices=("tottime", "cumtime", "ncalls"),
        help="stat to sort by",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault schedules and check invariants",
        description=(
            "Run the SWIM workload under N seeded fault schedules (node "
            "crashes, master failovers, slow disks, message loss) and "
            "verify the paper's invariants after each run.  Exits 1 if "
            "any seed violates an invariant."
        ),
    )
    chaos.add_argument("--seeds", type=int, default=10, help="number of seeds")
    chaos.add_argument("--base-seed", type=int, default=0)
    chaos.add_argument(
        "--num-jobs", type=int, default=40, help="SWIM jobs per seed"
    )
    chaos.add_argument(
        "--no-ha",
        action="store_true",
        help="run a single Ignem master instead of the HA pair",
    )
    chaos.add_argument(
        "--max-node-crashes",
        type=int,
        default=2,
        help="distinct nodes each schedule may crash",
    )
    return parser


def run_profile(args) -> int:
    import cProfile
    import pstats

    from .experiments.swim_runs import clear_cache, run_swim

    # Warm run first: imports and one-time allocations would otherwise
    # dominate the profile and hide the simulation kernel.
    clear_cache()
    run_swim(args.mode, seed=args.seed, num_jobs=args.num_jobs)
    clear_cache()

    profiler = cProfile.Profile()
    profiler.enable()
    run_swim(args.mode, seed=args.seed, num_jobs=args.num_jobs)
    profiler.disable()
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.top)
    return 0


def run_chaos(args) -> int:
    from .faults import ChaosRunner

    runner = ChaosRunner(
        num_jobs=args.num_jobs,
        ha=not args.no_ha,
        max_node_crashes=args.max_node_crashes,
    )
    report = runner.sweep(seeds=args.seeds, base_seed=args.base_seed)
    print(report.format())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0
    if args.command == "profile":
        return run_profile(args)
    if args.command == "chaos":
        return run_chaos(args)

    names = None if args.command == "all" else args.experiments
    try:
        results = run_experiments(names, out_dir=args.out, seed=args.seed)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    for name, text in results.items():
        print(f"\n=== {name} ===")
        print(text)
    print(f"\nresults written to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
