"""Command-line entry point: reproduce the paper's experiments.

Usage::

    python -m repro list
    python -m repro run table1 fig6 --out results/ --seed 0
    python -m repro run table1 --trace results/traces --metrics-out results/metrics
    python -m repro all --out results/
    python -m repro trace swim-ignem --out results/ --num-jobs 40
    python -m repro profile --mode ignem --num-jobs 200 --top 30
    python -m repro profile --workload scale --nodes 1000 --jobs 10000
    python -m repro scale --nodes 10000 --jobs 100000
    python -m repro serve --policy heat --requests 1200
    python -m repro chaos --seeds 10 --elasticity
    python -m repro dst --runs 25 --seed 0
    python -m repro dst --replay tests/dst/corpus
    python -m repro heal --out results/

Every subcommand shares the ``--out``/``--seed`` pair (one parent
parser), and observability is exposed uniformly: ``--trace`` /
``--metrics-out`` on ``run``/``all``, and the dedicated ``trace``
subcommand for a schema-validated traced run of the SWIM workload.

Workload subcommands (``scale``, ``serve``) are *generated* from the
workload registry (:mod:`repro.workloads.base`): each registered
``cli=True`` workload contributes one subparser whose flags come from
its params dataclass metadata.  ``repro list`` shows both experiments
and workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.report import available_experiments, run_experiments
from .workloads import (
    add_workload_arguments,
    cli_workloads,
    get_workload,
    params_from_args,
    workload_registry,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Ignem: Upward Migration "
            "of Cold Data in Big Data File Systems' (ICDCS 2018)."
        ),
    )
    # Shared parent: every subcommand that produces files takes the same
    # --out/--seed pair.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--out", default="results", help="output directory")
    common.add_argument("--seed", type=int, default=0, help="master RNG seed")

    # Shared parent: observability flags on the experiment runners.
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "write Chrome trace_event JSONL traces of the underlying SWIM "
            "workload runs into DIR"
        ),
    )
    observability.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help="write metrics-registry snapshots of the SWIM runs into DIR",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser(
        "run",
        parents=[common, observability],
        help="run selected experiments",
    )
    run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")

    sub.add_parser(
        "all",
        parents=[common, observability],
        help="run every experiment",
    )

    trace = sub.add_parser(
        "trace",
        parents=[common],
        help="run one experiment's SWIM workload with tracing enabled",
        description=(
            "Run the SWIM workload behind EXPERIMENT with structured "
            "tracing and the metrics registry enabled, write one JSONL "
            "trace plus one metrics snapshot per mode into --out, and "
            "validate every trace against the shipped schema.  Exits 1 "
            "if any trace fails validation.  Load the JSONL in "
            "chrome://tracing or Perfetto (after TraceReader.to_chrome)."
        ),
    )
    trace.add_argument("experiment", metavar="EXPERIMENT")
    trace.add_argument(
        "--num-jobs",
        type=int,
        default=40,
        help="SWIM jobs per traced run (short by default; paper uses 200)",
    )
    trace.add_argument(
        "--sim-events",
        action="store_true",
        help="also trace kernel event dispatch (very verbose)",
    )

    profile = sub.add_parser(
        "profile",
        parents=[common],
        help="cProfile one SWIM run (the perf-tuning entry point)",
        description=(
            "Run run_swim() under cProfile and print the hottest functions. "
            "Wall-clock comparisons against a baseline commit belong to "
            "benchmarks/perf/bench_swim.py; this command answers the "
            "follow-up question of *where* the time goes."
        ),
    )
    profile.add_argument(
        "--workload",
        default="swim",
        choices=("swim", "scale", "serve"),
        help=(
            "what to profile: the SWIM run, the trace-scale replay, or "
            "the interactive serving replay"
        ),
    )
    profile.add_argument(
        "--mode", default="ignem", choices=("hdfs", "ignem", "ram")
    )
    profile.add_argument("--num-jobs", type=int, default=200)
    profile.add_argument("--top", type=int, default=30, help="rows to print")
    profile.add_argument(
        "--sort",
        default="tottime",
        choices=("tottime", "cumtime", "ncalls"),
        help="stat to sort by",
    )
    profile.add_argument(
        "--nodes",
        type=int,
        default=1000,
        help="cluster size for --workload scale",
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=10_000,
        help="trace rows for --workload scale",
    )
    profile.add_argument(
        "--requests",
        type=int,
        default=1200,
        help="requests for --workload serve",
    )

    # Workload subcommands are generated from the registry: one
    # subparser per cli=True workload, flags from its params dataclass.
    for workload_cls in cli_workloads():
        workload_parser = sub.add_parser(
            workload_cls.name,
            parents=[common],
            help=workload_cls.summary,
            description=workload_cls.epilog,
        )
        add_workload_arguments(workload_parser, workload_cls.Params)

    chaos = sub.add_parser(
        "chaos",
        parents=[common],
        help="sweep seeded fault schedules and check invariants",
        description=(
            "Run the SWIM workload under N seeded fault schedules (node "
            "crashes, master failovers, slow disks, message loss) and "
            "verify the paper's invariants after each run.  Exits 1 if "
            "any seed violates an invariant."
        ),
    )
    chaos.add_argument("--seeds", type=int, default=10, help="number of seeds")
    chaos.add_argument(
        "--num-jobs", type=int, default=40, help="SWIM jobs per seed"
    )
    chaos.add_argument(
        "--no-ha",
        action="store_true",
        help="run a single Ignem master instead of the HA pair",
    )
    chaos.add_argument(
        "--max-node-crashes",
        type=int,
        default=2,
        help="distinct nodes each schedule may crash",
    )
    chaos.add_argument(
        "--elasticity",
        action="store_true",
        help=(
            "also draw kill/join/decommission events into every schedule "
            "(exercises self-healing replication)"
        ),
    )

    dst = sub.add_parser(
        "dst",
        parents=[common],
        help="deterministic simulation testing: fuzz, shrink, replay",
        description=(
            "Generate seeded random scenarios (cluster config x workload "
            "mix x fault schedule), run each against the real system with "
            "a differential reference model of the Ignem master plus "
            "end-of-run invariant oracles, and on failure shrink the "
            "scenario to a minimal reproducer under --out.  With --replay, "
            "re-judge saved corpus scenarios instead.  Exits 1 on any "
            "violation."
        ),
    )
    dst.add_argument(
        "--runs", type=int, default=25, help="scenarios to generate"
    )
    dst.add_argument(
        "--replay",
        metavar="PATH",
        nargs="+",
        default=None,
        help="replay saved scenario JSON files (or directories of them)",
    )
    dst.add_argument(
        "--sabotage",
        default=None,
        choices=(
            "evict-to-admit",
            "fifo-queue",
            "overcommit-buffer",
            "disable-repair",
        ),
        help="plant a bug in the live system (harness self-test)",
    )
    dst.add_argument(
        "--elasticity",
        action="store_true",
        help="generate kill/join/decommission faults in fuzzed scenarios",
    )
    dst.add_argument(
        "--interactive",
        action="store_true",
        help=(
            "mix interactive serve traffic (Zipfian reads, heat-driven "
            "migration) into fuzzed scenarios"
        ),
    )
    dst.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep the first failing scenario as-is",
    )
    dst.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the dst.* metrics-registry snapshot to FILE",
    )

    heal = sub.add_parser(
        "heal",
        parents=[common],
        help="demo self-healing replication under kill/join/decommission",
        description=(
            "Run the SWIM workload while a scripted elasticity schedule "
            "kills a node mid-flight, joins a fresh one, and decommissions "
            "a third.  The replication monitor repairs under-replicated "
            "blocks over pipelined copy chains; the run ends with the "
            "invariant checker's verdict.  Writes heal.json and heal.txt "
            "under --out.  Exits 1 on any invariant violation."
        ),
    )
    heal.add_argument(
        "--num-jobs", type=int, default=40, help="SWIM jobs to run"
    )
    heal.add_argument(
        "--disable-repair",
        action="store_true",
        help=(
            "contrast mode: turn the replication monitor off and show the "
            "invariant checker convicting the permanent under-replication"
        ),
    )

    real = sub.add_parser(
        "real",
        parents=[common],
        help="boot a real asyncio mini-cluster and run serve+migrate",
        description=(
            "Run master, NameNode, and N DataNodes as asyncio TCP services "
            "on localhost, wired by the same protocol messages the "
            "simulator exchanges.  Writes pipelined block replicas, serves "
            "a Zipf read workload cold, migrates the hot files to RAM, "
            "serves again, and prints per-phase latency/SLO stats.  Writes "
            "real.json and real.txt under --out.  Exits 1 on any lost "
            "block or protocol error."
        ),
    )
    real.add_argument(
        "--nodes", type=int, default=3, help="DataNode services to boot (>= 3)"
    )
    real.add_argument(
        "--files", type=int, default=4, help="files to write and serve"
    )
    real.add_argument(
        "--reads", type=int, default=40, help="reads per serve phase"
    )
    return parser


def run_profile(args) -> int:
    import cProfile
    import pstats

    if args.workload == "scale":
        from .workloads.scale import ScaleConfig, run_scale_replay

        config = ScaleConfig(
            num_nodes=args.nodes, num_jobs=args.jobs, seed=args.seed
        )
        # One warm run would double an already-long replay, so the scale
        # profile goes in cold; import/setup cost is negligible next to
        # millions of dispatched events.
        profiler = cProfile.Profile()
        profiler.enable()
        run_scale_replay(config)
        profiler.disable()
        pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.top)
        return 0

    if args.workload == "serve":
        from .workloads.serve import ServeConfig, run_serve

        serve_config = ServeConfig(
            num_requests=args.requests, seed=args.seed
        )
        profiler = cProfile.Profile()
        profiler.enable()
        run_serve(serve_config)
        profiler.disable()
        pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.top)
        return 0

    from .experiments.swim_runs import clear_cache, run_swim

    # Warm run first: imports and one-time allocations would otherwise
    # dominate the profile and hide the simulation kernel.
    clear_cache()
    run_swim(args.mode, seed=args.seed, num_jobs=args.num_jobs)
    clear_cache()

    profiler = cProfile.Profile()
    profiler.enable()
    run_swim(args.mode, seed=args.seed, num_jobs=args.num_jobs)
    profiler.disable()
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.top)
    return 0


def run_workload_command(args) -> int:
    """Generic driver for registry-generated workload subcommands: run,
    write ``<name>.json``/``<name>.txt`` under ``--out``, print the
    report."""
    import json
    from pathlib import Path

    workload_cls = get_workload(args.command)
    params = params_from_args(workload_cls.Params, args)
    workload = workload_cls(params)
    result = workload.run()
    report = workload.format_result(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{workload.name}.json").write_text(
        json.dumps(workload.result_payload(result), indent=2, sort_keys=True)
        + "\n"
    )
    (out_dir / f"{workload.name}.txt").write_text(report + "\n")
    print(report)
    print(f"\nresults written to {args.out}/{workload.name}.json")
    return workload.exit_code(result)


def run_chaos(args) -> int:
    from .faults import ChaosRunner

    runner = ChaosRunner(
        num_jobs=args.num_jobs,
        ha=not args.no_ha,
        max_node_crashes=args.max_node_crashes,
        elasticity=args.elasticity,
    )
    report = runner.sweep(seeds=args.seeds, base_seed=args.seed)
    print(report.format())
    return 0 if report.ok else 1


def run_dst(args) -> int:
    import json
    from pathlib import Path

    from .dst import DstRunner, corpus_paths

    runner = DstRunner(
        seed=args.seed,
        sabotage=args.sabotage,
        elasticity=args.elasticity,
        interactive=args.interactive,
    )
    if args.replay:
        paths = []
        for entry in args.replay:
            path = Path(entry)
            paths.extend(corpus_paths(path) if path.is_dir() else [path])
        report = runner.replay(paths)
    else:
        report = runner.fuzz(args.runs, shrink=not args.no_shrink)
        runner.write_artifact(report, Path(args.out))
    print(report.format())
    if args.metrics_out:
        snapshot_path = Path(args.metrics_out)
        snapshot_path.parent.mkdir(parents=True, exist_ok=True)
        snapshot_path.write_text(
            json.dumps(runner.registry.snapshot(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"metrics snapshot written to {snapshot_path}")
    return 0 if report.ok else 1


def run_heal(args) -> int:
    import json
    from pathlib import Path

    from .faults.heal import format_heal_result, run_heal_demo

    result = run_heal_demo(
        seed=args.seed,
        num_jobs=args.num_jobs,
        disable_repair=args.disable_repair,
    )
    report = format_heal_result(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "heal.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    (out_dir / "heal.txt").write_text(report + "\n")
    print(report)
    print(f"\nresults written to {args.out}/heal.json")
    return 0 if result.ok else 1


def run_real(args) -> int:
    import json
    from pathlib import Path

    from .transport.real import run_real_demo

    try:
        result = run_real_demo(
            nodes=args.nodes,
            files=args.files,
            reads=args.reads,
            seed=args.seed,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    report = result.summary()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "real.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    (out_dir / "real.txt").write_text(report + "\n")
    print(report)
    print(f"\nresults written to {args.out}/real.json")
    return 0 if result.ok else 1


def run_trace(args) -> int:
    from .experiments.traced import run_traced, traceable_experiments

    try:
        results = run_traced(
            args.experiment,
            out_dir=args.out,
            seed=args.seed,
            num_jobs=args.num_jobs,
            sim_events=args.sim_events,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        print(
            f"traceable experiments: {', '.join(traceable_experiments())}",
            file=sys.stderr,
        )
        return 2
    ok = True
    for result in results:
        print(result.format())
        for message in result.schema_errors:
            print(f"  {message}", file=sys.stderr)
        ok = ok and result.ok
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:")
        for name in available_experiments():
            print(f"  {name}")
        print("\nworkloads:")
        for name, workload_cls in workload_registry().items():
            marker = "*" if workload_cls.cli else " "
            print(f"  {name:<14}{marker} {workload_cls.summary}")
        print("\n(* = has its own subcommand: python -m repro <workload>)")
        return 0
    if args.command == "profile":
        return run_profile(args)
    if args.command in {cls.name for cls in cli_workloads()}:
        return run_workload_command(args)
    if args.command == "chaos":
        return run_chaos(args)
    if args.command == "trace":
        return run_trace(args)
    if args.command == "dst":
        return run_dst(args)
    if args.command == "heal":
        return run_heal(args)
    if args.command == "real":
        return run_real(args)

    names = None if args.command == "all" else args.experiments
    try:
        results = run_experiments(
            names,
            out_dir=args.out,
            seed=args.seed,
            trace_dir=args.trace,
            metrics_dir=args.metrics_out,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    for name, text in results.items():
        print(f"\n=== {name} ===")
        print(text)
    print(f"\nresults written to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
