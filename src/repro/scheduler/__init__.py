"""YARN-like cluster scheduler: ResourceManager + NodeManagers.

Heartbeat-driven slot scheduling with memory-then-disk locality
preference.  The multi-second heartbeat cadence and task queueing are the
sources of lead-time Ignem exploits (paper Section II-C1).
"""

from .containers import TaskRequest
from .node_manager import NodeManager
from .resource_manager import ResourceManager

__all__ = ["NodeManager", "ResourceManager", "TaskRequest"]
