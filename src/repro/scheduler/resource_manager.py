"""ResourceManager: cluster-wide FIFO task scheduling over heartbeats."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from ..sim.engine import Environment
from .containers import TaskRequest
from .node_manager import NodeManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..dfs.memory_index import MemoryLocalityIndex


class _NodeBucket:
    """Per-node scheduling candidates, ordered by queue position.

    A lazy-deletion min-heap over ``(queue_pos, task)`` plus a live
    membership set: adds push a fresh heap entry; removals only touch the
    membership set and stale heap entries are skipped (and popped) when
    they surface at the top.  Queue positions are globally unique, so two
    distinct tasks never compare and heap entries never tie-break on the
    task object itself.
    """

    __slots__ = ("heap", "members")

    def __init__(self) -> None:
        self.heap: list = []
        self.members: Dict[TaskRequest, None] = {}

    def add(self, task: TaskRequest, pos: int) -> None:
        if task in self.members:
            return
        self.members[task] = None
        heappush(self.heap, (pos, task))

    def discard(self, task: TaskRequest) -> None:
        self.members.pop(task, None)


class ResourceManager:
    """Hands queued tasks to nodes when they heartbeat.

    Scheduling policy (per heartbeat, per free slot), in order:

    1. a pending task whose input is *in memory* on this node (the
       migrated-replica locality preference of paper Section III-A2);
    2. a pending task with an on-disk replica on this node (classic HDFS
       data locality);
    3. the oldest pending task (FIFO across jobs).

    Tasks only start at heartbeats — the queueing plus heartbeat latency
    is precisely the lead-time Ignem exploits.

    ``locality_wait`` enables delay scheduling (Zaharia et al.): a task
    that has locality *somewhere* is held back from non-local placement
    until it has waited at least that long, at the cost of slot idling.
    The default of 0 disables it (plain Hadoop FIFO behaviour).

    **Fast path.**  With a memory-locality index attached (see
    :meth:`attach_locality_index`), the RM maintains per-node candidate
    buckets — one memory-local, one disk-local — updated on task
    enqueue/dequeue and on index residency deltas.  Each pick then costs
    O(candidates on this node) instead of three O(pending) scans with an
    O(replicas) cache poll per task, while provably preserving the exact
    pick order of the scan: every bucket lookup returns the minimum queue
    position, which is the first match a FIFO scan would have found.
    Tasks that carry a custom ``memory_nodes_fn`` without an
    ``input_block_id`` fall back to the scan path (with one cached
    ``memory_nodes()`` evaluation per task per scheduling round).
    """

    def __init__(
        self,
        env: Environment,
        locality_wait: float = 0.0,
        max_task_attempts: int = 3,
    ):
        if locality_wait < 0:
            raise ValueError("locality_wait must be non-negative")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        self.env = env
        self.locality_wait = float(locality_wait)
        self.max_task_attempts = max_task_attempts
        self._nodes: Dict[str, NodeManager] = {}
        #: Registration index per node name, fixing the wake order.
        self._node_index: Dict[str, int] = {}
        #: Heartbeat loops currently parked on an idle queue, keyed by
        #: registration index.  Submitting work wakes only these — the
        #: historical notify-everyone loop was O(nodes) per submit, which
        #: dominates at trace scale — in registration order, so the wake
        #: event sequence is identical to notifying every node (waking a
        #: non-parked node was always a no-op).
        self._parked: Dict[int, NodeManager] = {}
        #: FIFO queue: task -> queue position.  Python dicts preserve
        #: insertion order, so iteration order == ascending position.
        self._pending: Dict[TaskRequest, int] = {}
        self._qpos = 0
        self._active_jobs: Set[str] = set()
        #: Optional push-maintained block -> in-RAM-nodes index.
        self._locality_index: Optional["MemoryLocalityIndex"] = None
        #: Per-node candidate buckets (fast path).
        self._mem_buckets: Dict[str, _NodeBucket] = {}
        self._disk_buckets: Dict[str, _NodeBucket] = {}
        #: Reverse map for translating index deltas into bucket updates.
        self._tasks_by_block: Dict[str, Dict[TaskRequest, None]] = {}
        #: Pending tasks the buckets cannot represent (scan fallback).
        self._unindexed = 0
        #: memory_nodes() memoization for the scan path, valid for one
        #: scheduling round (no simulation state changes mid-round).
        self._round_mem_cache: Dict[TaskRequest, FrozenSet[str]] = {}
        self.tasks_launched = 0
        self.tasks_finished = 0
        self.tasks_retried = 0
        self.tasks_abandoned = 0
        #: Observability facade; ``None`` is the zero-overhead clean path.
        self.obs = None

    # -- cluster membership -------------------------------------------------------

    def register_node(self, node: NodeManager) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate NodeManager name {node.name!r}")
        self._node_index[node.name] = len(self._node_index)
        self._nodes[node.name] = node
        node.attach(self)

    def nodes(self) -> List[NodeManager]:
        return list(self._nodes.values())

    def on_node_parked(self, node: NodeManager) -> None:
        """A heartbeat loop went idle; remember it for targeted wakes."""
        self._parked[self._node_index[node.name]] = node

    def _notify_parked(self) -> None:
        """Wake every parked heartbeat loop, in registration order."""
        parked = self._parked
        if not parked:
            return
        self._parked = {}
        if len(parked) == len(self._nodes):
            # Everyone is parked: the registry is already in order.
            for node in self._nodes.values():
                node.notify_work()
            return
        for index in sorted(parked):
            parked[index].notify_work()

    def attach_locality_index(self, index: "MemoryLocalityIndex") -> None:
        """Subscribe to a memory-locality index and enable the indexed
        scheduler fast path.  Must happen before any task is submitted so
        the candidate buckets never miss a delta."""
        if self._locality_index is index:
            return
        if self._locality_index is not None:
            raise ValueError("a locality index is already attached")
        if self._pending:
            raise ValueError("attach the locality index before submitting tasks")
        self._locality_index = index
        index.add_listener(self._on_memory_delta)

    # -- job lifecycle -------------------------------------------------------------

    def register_job(self, job_id: str) -> None:
        """Mark a job live (Ignem's leak cleanup queries this, III-A4)."""
        self._active_jobs.add(job_id)

    def unregister_job(self, job_id: str) -> None:
        self._active_jobs.discard(job_id)
        # Drop any of the job's tasks that never started (job killed).
        for task in [t for t in self._pending if t.job_id == job_id]:
            self._dequeue(task)

    def job_active(self, job_id: str) -> bool:
        """The liveness probe Ignem slaves use to purge leaked references."""
        return job_id in self._active_jobs

    # -- task queueing ---------------------------------------------------------------

    def submit(self, task: TaskRequest) -> None:
        """Queue one task; it will start at some node's future heartbeat."""
        task.submitted_at = self.env.now
        self._enqueue(task)
        self._notify_parked()

    def submit_all(self, tasks: List[TaskRequest]) -> None:
        """Queue a batch of tasks with a single notification round.

        Notifying after each task would wake every node once per task;
        notify_work on an already-woken node is a no-op, so enqueueing
        the whole batch first and notifying once is equivalent.
        """
        now = self.env.now
        for task in tasks:
            task.submitted_at = now
            self._enqueue(task)
        if tasks:
            self._notify_parked()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _enqueue(self, task: TaskRequest) -> None:
        self._qpos += 1
        pos = self._qpos
        self._pending[task] = pos
        index = self._locality_index
        block_id = task.input_block_id
        # Index-tracked unless the task's memory locality comes from an
        # opaque callable the index knows nothing about.
        indexed = index is not None and (
            block_id is not None or task.memory_nodes_fn is None
        )
        task.rm_indexed = indexed
        if not indexed:
            self._unindexed += 1
            return
        for node in task.disk_nodes:
            bucket = self._disk_buckets.get(node)
            if bucket is None:
                bucket = self._disk_buckets[node] = _NodeBucket()
            bucket.add(task, pos)
        if block_id is not None:
            self._tasks_by_block.setdefault(block_id, {})[task] = None
            for node in index.nodes(block_id):
                bucket = self._mem_buckets.get(node)
                if bucket is None:
                    bucket = self._mem_buckets[node] = _NodeBucket()
                bucket.add(task, pos)

    def _dequeue(self, task: TaskRequest) -> None:
        del self._pending[task]
        if not task.rm_indexed:
            self._unindexed -= 1
            return
        for node in task.disk_nodes:
            bucket = self._disk_buckets.get(node)
            if bucket is not None:
                bucket.discard(task)
        block_id = task.input_block_id
        if block_id is not None:
            tasks = self._tasks_by_block.get(block_id)
            if tasks is not None:
                tasks.pop(task, None)
                if not tasks:
                    del self._tasks_by_block[block_id]
            for node in self._locality_index.nodes(block_id):
                bucket = self._mem_buckets.get(node)
                if bucket is not None:
                    bucket.discard(task)

    def _on_memory_delta(self, block_id: str, node: str, resident: bool) -> None:
        """Index listener: keep the memory-local buckets in sync."""
        tasks = self._tasks_by_block.get(block_id)
        if not tasks:
            return
        if resident:
            bucket = self._mem_buckets.get(node)
            if bucket is None:
                bucket = self._mem_buckets[node] = _NodeBucket()
            pending = self._pending
            for task in tasks:
                bucket.add(task, pending[task])
        else:
            bucket = self._mem_buckets.get(node)
            if bucket is not None:
                for task in tasks:
                    bucket.discard(task)

    # -- heartbeat-driven scheduling ---------------------------------------------------

    def on_heartbeat(self, node: NodeManager) -> None:
        if not node.alive:
            return
        if self._round_mem_cache:
            self._round_mem_cache = {}
        while node.free_slots > 0 and self._pending:
            task = self._pick_task(node.name)
            if task is None:
                break
            self._dequeue(task)
            self.tasks_launched += 1
            if self.obs is not None:
                self.obs.on_task_launch(task, node.name)
            node.launch(task)

    def on_task_finished(self, task: TaskRequest, node: NodeManager) -> None:
        self.tasks_finished += 1
        # Work-conserving touch: the freed slot can immediately take more
        # work at this same instant (mimics NM heartbeating on completion,
        # which Hadoop does to reduce slot idling).
        self.on_heartbeat(node)

    def on_task_failed(
        self, task: TaskRequest, node: NodeManager, error: BaseException
    ) -> None:
        """A container died (task crash or node failure): retry the task
        on a different node, up to ``max_task_attempts`` total attempts."""
        task.excluded_nodes.add(node.name)
        if not self.job_active(task.job_id):
            return  # the job was torn down; nothing to retry for
        live_nodes = {n.name for n in self._nodes.values() if n.alive}
        no_home_left = live_nodes <= task.excluded_nodes
        if task.attempts >= self.max_task_attempts or no_home_left:
            self.tasks_abandoned += 1
            if not task.completed.triggered:
                task.completed.fail(error)
            return
        self.tasks_retried += 1
        self._enqueue(task)
        self._notify_parked()
        if node.alive:
            self.on_heartbeat(node)

    # -- task picking -------------------------------------------------------------------

    def _pick_task(self, node_name: str) -> Optional[TaskRequest]:
        if not self._pending:
            return None
        if self._unindexed == 0 and self._locality_index is not None:
            return self._pick_task_indexed(node_name)
        return self._pick_task_scan(node_name)

    def _pick_task_indexed(self, node_name: str) -> Optional[TaskRequest]:
        """Bucket-backed pick: identical order to the scan, O(candidates)."""
        # Pass 1: memory locality (migrated replicas).
        task = self._bucket_min(self._mem_buckets.get(node_name), node_name)
        if task is not None:
            return task
        # Pass 2: disk locality.
        task = self._bucket_min(self._disk_buckets.get(node_name), node_name)
        if task is not None:
            return task
        # Pass 3: FIFO, optionally gated by delay scheduling.
        locality_wait = self.locality_wait
        if locality_wait <= 0:
            for task in self._pending:
                if node_name not in task.excluded_nodes:
                    return task
            return None
        now = self.env.now
        index = self._locality_index
        for task in self._pending:
            if node_name in task.excluded_nodes:
                continue
            block_id = task.input_block_id
            has_locality = bool(task.disk_nodes) or (
                block_id is not None and bool(index.nodes(block_id))
            )
            waited = now - (task.submitted_at or now)
            if has_locality and waited < locality_wait:
                continue
            return task
        return None

    def _bucket_min(
        self, bucket: Optional[_NodeBucket], node_name: str
    ) -> Optional[TaskRequest]:
        """First eligible task in queue order, skipping stale heap entries.

        An entry is stale when the task left the bucket's membership set
        (dequeued, or an eviction delta removed its locality) or was
        re-enqueued under a newer position.  Exclusions are per-node and
        monotone, so excluded tasks are dropped permanently.
        """
        if bucket is None:
            return None
        heap = bucket.heap
        members = bucket.members
        pending = self._pending
        while heap:
            pos, task = heap[0]
            if task not in members or pending.get(task) != pos:
                heappop(heap)
                continue
            if node_name in task.excluded_nodes:
                heappop(heap)
                del members[task]
                continue
            return task
        return None

    def _pick_task_scan(self, node_name: str) -> Optional[TaskRequest]:
        """Reference scan over the FIFO queue (fallback for tasks with
        opaque ``memory_nodes_fn`` locality).  Memory locality is resolved
        once per task per scheduling round via ``_round_mem_cache``."""
        pending = self._pending
        mem_cache = self._round_mem_cache
        index = self._locality_index

        def memory_nodes(task: TaskRequest) -> FrozenSet[str]:
            nodes = mem_cache.get(task)
            if nodes is None:
                block_id = task.input_block_id
                if task.rm_indexed and block_id is not None:
                    nodes = index.nodes(block_id)
                else:
                    nodes = task.memory_nodes()
                mem_cache[task] = nodes
            return nodes

        # Pass 1: memory locality (migrated replicas).
        for task in pending:
            if node_name in task.excluded_nodes:
                continue
            if node_name in memory_nodes(task):
                return task
        # Pass 2: disk locality.
        for task in pending:
            if node_name in task.excluded_nodes:
                continue
            if node_name in task.disk_nodes:
                return task
        # Pass 3: FIFO — but with delay scheduling enabled, a task that
        # has locality somewhere keeps waiting for a local slot until its
        # patience runs out.
        now = self.env.now
        for task in pending:
            if node_name in task.excluded_nodes:
                continue
            if self.locality_wait > 0:
                has_locality = bool(task.disk_nodes) or bool(memory_nodes(task))
                waited = now - (task.submitted_at or now)
                if has_locality and waited < self.locality_wait:
                    continue
            return task
        return None
