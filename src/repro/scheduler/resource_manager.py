"""ResourceManager: cluster-wide FIFO task scheduling over heartbeats."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..sim.engine import Environment
from .containers import TaskRequest
from .node_manager import NodeManager


class ResourceManager:
    """Hands queued tasks to nodes when they heartbeat.

    Scheduling policy (per heartbeat, per free slot), in order:

    1. a pending task whose input is *in memory* on this node (the
       migrated-replica locality preference of paper Section III-A2);
    2. a pending task with an on-disk replica on this node (classic HDFS
       data locality);
    3. the oldest pending task (FIFO across jobs).

    Tasks only start at heartbeats — the queueing plus heartbeat latency
    is precisely the lead-time Ignem exploits.

    ``locality_wait`` enables delay scheduling (Zaharia et al.): a task
    that has locality *somewhere* is held back from non-local placement
    until it has waited at least that long, at the cost of slot idling.
    The default of 0 disables it (plain Hadoop FIFO behaviour).
    """

    def __init__(
        self,
        env: Environment,
        locality_wait: float = 0.0,
        max_task_attempts: int = 3,
    ):
        if locality_wait < 0:
            raise ValueError("locality_wait must be non-negative")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        self.env = env
        self.locality_wait = float(locality_wait)
        self.max_task_attempts = max_task_attempts
        self._nodes: Dict[str, NodeManager] = {}
        self._pending: List[TaskRequest] = []
        self._active_jobs: Set[str] = set()
        self.tasks_launched = 0
        self.tasks_finished = 0
        self.tasks_retried = 0
        self.tasks_abandoned = 0

    # -- cluster membership -------------------------------------------------------

    def register_node(self, node: NodeManager) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate NodeManager name {node.name!r}")
        self._nodes[node.name] = node
        node.attach(self)

    def nodes(self) -> List[NodeManager]:
        return list(self._nodes.values())

    # -- job lifecycle -------------------------------------------------------------

    def register_job(self, job_id: str) -> None:
        """Mark a job live (Ignem's leak cleanup queries this, III-A4)."""
        self._active_jobs.add(job_id)

    def unregister_job(self, job_id: str) -> None:
        self._active_jobs.discard(job_id)
        # Drop any of the job's tasks that never started (job killed).
        self._pending = [t for t in self._pending if t.job_id != job_id]

    def job_active(self, job_id: str) -> bool:
        """The liveness probe Ignem slaves use to purge leaked references."""
        return job_id in self._active_jobs

    # -- task queueing ---------------------------------------------------------------

    def submit(self, task: TaskRequest) -> None:
        """Queue one task; it will start at some node's future heartbeat."""
        task.submitted_at = self.env.now
        self._pending.append(task)
        for node in self._nodes.values():
            node.notify_work()

    def submit_all(self, tasks: List[TaskRequest]) -> None:
        for task in tasks:
            self.submit(task)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- heartbeat-driven scheduling ---------------------------------------------------

    def on_heartbeat(self, node: NodeManager) -> None:
        if not node.alive:
            return
        while node.free_slots > 0 and self._pending:
            task = self._pick_task(node.name)
            if task is None:
                break
            self._pending.remove(task)
            self.tasks_launched += 1
            node.launch(task)

    def on_task_finished(self, task: TaskRequest, node: NodeManager) -> None:
        self.tasks_finished += 1
        # Work-conserving touch: the freed slot can immediately take more
        # work at this same instant (mimics NM heartbeating on completion,
        # which Hadoop does to reduce slot idling).
        self.on_heartbeat(node)

    def on_task_failed(
        self, task: TaskRequest, node: NodeManager, error: BaseException
    ) -> None:
        """A container died (task crash or node failure): retry the task
        on a different node, up to ``max_task_attempts`` total attempts."""
        task.excluded_nodes.add(node.name)
        if not self.job_active(task.job_id):
            return  # the job was torn down; nothing to retry for
        live_nodes = {n.name for n in self._nodes.values() if n.alive}
        no_home_left = live_nodes <= task.excluded_nodes
        if task.attempts >= self.max_task_attempts or no_home_left:
            self.tasks_abandoned += 1
            if not task.completed.triggered:
                task.completed.fail(error)
            return
        self.tasks_retried += 1
        self._pending.append(task)
        for other in self._nodes.values():
            other.notify_work()
        if node.alive:
            self.on_heartbeat(node)

    def _pick_task(self, node_name: str) -> Optional[TaskRequest]:
        if not self._pending:
            return None
        # Pass 1: memory locality (migrated replicas).
        for task in self._pending:
            if node_name in task.excluded_nodes:
                continue
            if node_name in task.memory_nodes():
                return task
        # Pass 2: disk locality.
        for task in self._pending:
            if node_name in task.excluded_nodes:
                continue
            if node_name in task.disk_nodes:
                return task
        # Pass 3: FIFO — but with delay scheduling enabled, a task that
        # has locality somewhere keeps waiting for a local slot until its
        # patience runs out.
        now = self.env.now
        for task in self._pending:
            if node_name in task.excluded_nodes:
                continue
            if self.locality_wait > 0:
                has_locality = bool(task.disk_nodes) or bool(task.memory_nodes())
                waited = now - (task.submitted_at or now)
                if has_locality and waited < self.locality_wait:
                    continue
            return task
        return None
