"""NodeManager: per-server container execution and heartbeating."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..sim.engine import Environment
from ..sim.events import Event
from .containers import TaskRequest

if TYPE_CHECKING:  # pragma: no cover
    from .resource_manager import ResourceManager


class NodeManager:
    """Runs task containers on one server and heartbeats to the RM.

    The heartbeat is the only moment the RM can hand this node work —
    exactly the scalability-driven design whose multi-second cadence gives
    Ignem its lead-time (paper Section II-C1).  Heartbeats stay on a fixed
    absolute grid (``offset + k * interval``); while the cluster has no
    pending work the loop parks so a finished simulation can drain, but
    waking never shifts the grid, so queueing delays are unaffected.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        slots: int,
        heartbeat_interval: float = 3.0,
        heartbeat_offset: float = 0.0,
    ):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat interval must be positive, got {heartbeat_interval}"
            )
        self.env = env
        self.name = name
        self.slots = slots
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_offset = float(heartbeat_offset)
        self.free_slots = slots
        self.alive = True
        self._rm: Optional["ResourceManager"] = None
        self._wake: Optional[Event] = None
        self._next_beat = 0  # index k of the next heartbeat on the grid
        self._running: dict = {}  # task_id -> inner task Process
        #: Heartbeat-loop generation: bumped on restart so a parked
        #: pre-failure loop can never double-beat alongside the new one.
        self._hb_generation = 0

    def attach(self, rm: "ResourceManager") -> None:
        """Register with the RM and start heartbeating."""
        self._rm = rm
        self.env.process(self._heartbeat_loop(), name=f"nm-{self.name}-heartbeat")

    def notify_work(self) -> None:
        """Un-park the heartbeat loop (called by the RM on task submit)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def launch(self, task: TaskRequest) -> None:
        """Start a container for ``task`` (called by the RM at heartbeat)."""
        if self.free_slots <= 0:
            raise RuntimeError(f"{self.name} has no free slots")
        if not self.alive:
            raise RuntimeError(f"{self.name} is dead")
        self.free_slots -= 1
        task.assigned_node = self.name
        task.started_at = self.env.now
        task.attempts += 1
        self.env.process(self._container(task), name=f"container-{task.task_id}")

    def fail(self) -> None:
        """Stop heartbeating and kill every running container; their
        tasks fail and the RM retries them elsewhere."""
        self.alive = False
        for process in list(self._running.values()):
            if process.is_alive:
                process.interrupt(cause=f"node {self.name} failed")
        self.notify_work()

    def restart(self) -> None:
        """Restart the NodeManager on the same server, all slots free."""
        if self.alive:
            return
        self.alive = True
        self.free_slots = self.slots
        self._running.clear()
        self._hb_generation += 1
        self.env.process(
            self._heartbeat_loop(self._hb_generation),
            name=f"nm-{self.name}-heartbeat",
        )

    def _container(self, task: TaskRequest):
        # The task body runs inside the container process itself
        # (``yield from``) rather than in a second wrapped process: one
        # Process and one Initialize event per task is pure overhead, and
        # interrupts delivered to the container reach the delegated task
        # frame exactly as they reached the worker process before.
        self._running[task.task_id] = self.env.active_process
        error: Optional[BaseException] = None
        try:
            yield from task.execute(self.name)
        except BaseException as raised:  # task crashed or was interrupted
            error = raised
        finally:
            self._running.pop(task.task_id, None)
            # Clamped: a container dying across a fail()/restart() cycle
            # must not push the freshly reset slot count past capacity.
            self.free_slots = min(self.slots, self.free_slots + 1)
        if self._rm is None:
            if error is None and not task.completed.triggered:
                task.completed.succeed(None)
            return
        if error is None:
            if not task.completed.triggered:
                task.completed.succeed(None)
            self._rm.on_task_finished(task, self)
        else:
            self._rm.on_task_failed(task, self, error)

    def _heartbeat_loop(self, generation: int = 0):
        while self.alive and generation == self._hb_generation:
            if self._rm is None or self._rm.pending_count == 0:
                self._wake = Event(self.env)
                if self._rm is not None:
                    self._rm.on_node_parked(self)
                yield self._wake
                self._wake = None
                continue
            when = self._next_heartbeat_time()
            if when > self.env.now:
                yield self.env.pooled_timeout(when - self.env.now)
            if not self.alive:
                break
            self._rm.on_heartbeat(self)

    def _next_heartbeat_time(self) -> float:
        """Next grid point ``offset + k * interval`` not before now, with a
        monotone beat index so repeated beats at one instant cannot occur."""
        now = self.env.now
        if now > self.heartbeat_offset:
            due = math.ceil(
                (now - self.heartbeat_offset) / self.heartbeat_interval - 1e-9
            )
        else:
            due = 0
        k = max(self._next_beat, due)
        self._next_beat = k + 1
        return self.heartbeat_offset + k * self.heartbeat_interval

    def __repr__(self) -> str:
        return f"<NodeManager {self.name} free={self.free_slots}/{self.slots}>"
