"""Task requests: the unit of work the cluster scheduler places on nodes."""

from __future__ import annotations

import itertools
from typing import Callable, FrozenSet, Generator, Iterable, Optional

from ..sim.engine import Environment
from ..sim.events import Event

#: Shared empty result for tasks with no memory-locality source; avoids
#: allocating a fresh frozenset on every scheduling probe.
NO_MEMORY_NODES: FrozenSet[str] = frozenset()


class TaskRequest:
    """One schedulable task.

    Parameters
    ----------
    env:
        Simulation environment.
    job_id, task_id, kind:
        Identity; ``kind`` is ``"map"`` or ``"reduce"``.
    execute:
        ``execute(node_name)`` returns the generator that performs the
        task's work once a container on ``node_name`` starts it.
    disk_nodes:
        Nodes holding an on-disk replica of this task's input (static).
    memory_nodes_fn:
        Callable returning the nodes that currently hold the input in
        memory — evaluated at scheduling time because migration state
        changes while the task queues (paper Section III-A2's migrated-
        locality preference).
    input_block_id:
        The DFS block this task reads, when it reads exactly one.  Lets a
        ResourceManager with an attached memory-locality index track the
        task's memory locality via push deltas (O(1) per update) instead
        of calling ``memory_nodes_fn`` per scheduling probe; the index
        takes precedence over ``memory_nodes_fn`` when both are present.
    """

    _seq = itertools.count()

    def __init__(
        self,
        env: Environment,
        job_id: str,
        task_id: str,
        kind: str,
        execute: Callable[[str], Generator],
        disk_nodes: Iterable[str] = (),
        memory_nodes_fn: Optional[Callable[[], Iterable[str]]] = None,
        input_block_id: Optional[str] = None,
    ):
        if kind not in ("map", "reduce"):
            raise ValueError(f"kind must be 'map' or 'reduce', got {kind!r}")
        self.env = env
        self.job_id = job_id
        self.task_id = task_id
        self.kind = kind
        self.execute = execute
        self.disk_nodes: FrozenSet[str] = frozenset(disk_nodes)
        self.memory_nodes_fn = memory_nodes_fn
        self.input_block_id = input_block_id
        #: Whether the owning ResourceManager tracks this task through its
        #: locality-index candidate buckets (set at enqueue time).
        self.rm_indexed = False

        #: Monotone sequence used for FIFO ordering across jobs.
        self.seq = next(TaskRequest._seq)
        #: When the scheduler first saw the task.
        self.submitted_at: Optional[float] = None
        #: When a container started executing it.
        self.started_at: Optional[float] = None
        #: Node it ran on.
        self.assigned_node: Optional[str] = None
        #: How many attempts have been launched so far.
        self.attempts = 0
        #: Nodes where an attempt failed; the scheduler avoids them.
        self.excluded_nodes: set = set()
        #: Triggers when the task finishes (fails after the scheduler
        #: gives up retrying).
        self.completed: Event = env.event()

    def memory_nodes(self) -> FrozenSet[str]:
        if self.memory_nodes_fn is None:
            return NO_MEMORY_NODES
        return frozenset(self.memory_nodes_fn())

    def __repr__(self) -> str:
        return f"<TaskRequest {self.task_id} ({self.kind}) of {self.job_id}>"
