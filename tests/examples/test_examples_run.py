"""Smoke tests: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they did"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "log_analytics_pipeline",
        "hive_dashboard",
        "failure_drill",
        "swim_replay",
        "chaos_day",
    } <= names


def test_swim_replay_accepts_job_count():
    script = EXAMPLES_DIR / "swim_replay.py"
    result = subprocess.run(
        [sys.executable, str(script), "40"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "40 SWIM jobs" in result.stdout
