"""Seed-coupling audit: all randomness flows through seeded sources.

Byte-identical replays (``repro serve --seed 0`` twice, DST corpus
replay, golden experiment outputs) only hold if no code path consults
an unseeded or ambient RNG.  The repo's rule: :mod:`repro.sim.rand`
wraps the stdlib generator behind explicit seeds and named child
streams, and everything else takes a :class:`RandomSource` (or a seed)
as a parameter.  This test convicts regressions statically.
"""

import pathlib
import re

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The one module allowed to touch the stdlib generator.
RNG_MODULE = SRC / "sim" / "rand.py"

#: Ambient-randomness patterns that break replay determinism.
FORBIDDEN = (
    re.compile(r"^\s*import random\b"),
    re.compile(r"^\s*from random import\b"),
    re.compile(r"\brandom\.(random|seed|randint|choice|shuffle|uniform)\("),
    re.compile(r"np\.random\."),
    re.compile(r"\bos\.urandom\b"),
    re.compile(r"\buuid\.uuid4\b"),
)


def _source_files():
    return sorted(
        path for path in SRC.rglob("*.py") if path != RNG_MODULE
    )


def test_rand_module_is_the_only_stdlib_rng_user():
    offenders = []
    for path in _source_files():
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if any(pattern.search(line) for pattern in FORBIDDEN):
                offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
    assert not offenders, (
        "ambient RNG use outside repro.sim.rand breaks seeded replay:\n"
        + "\n".join(offenders)
    )


def test_random_source_requires_explicit_seed():
    """RandomSource takes its seed positionally — there is no ambient
    default that silently varies between runs."""
    from repro.sim.rand import RandomSource

    a = RandomSource(42).uniform(0, 1)
    b = RandomSource(42).uniform(0, 1)
    assert a == b


@pytest.mark.parametrize("seed", [0, 7])
def test_spawned_streams_are_stable(seed):
    from repro.sim.rand import RandomSource

    a = RandomSource(seed).spawn("serve").uniform(0, 1)
    b = RandomSource(seed).spawn("serve").uniform(0, 1)
    c = RandomSource(seed).spawn("other").uniform(0, 1)
    assert a == b
    assert a != c
