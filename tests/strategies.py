"""Shared Hypothesis strategies for the property and DST test suites.

Every suite used to define its own composites inline; the generators
below are the single home so new property tests (and DST-adjacent
fuzzing) sample the same shapes: migration work items, migrate/evict
scripts, device transfer plans, scheduler workloads, and fault events.
"""

from hypothesis import strategies as st

from repro.core.commands import MigrationWorkItem
from repro.dfs.blocks import Block
from repro.faults import FaultEvent
from repro.faults.schedule import FAULT_KINDS
from repro.storage import MB

#: The block sizes the paper testbed (and the DST generator) uses.
BLOCK_SIZES = (32 * MB, 64 * MB, 128 * MB)

block_sizes = st.sampled_from(BLOCK_SIZES)


@st.composite
def work_items(draw):
    """A random migration work item over a handful of jobs."""
    job = draw(st.integers(min_value=0, max_value=5))
    return MigrationWorkItem(
        block=Block(f"b{draw(st.integers(0, 100))}", "/f", 0, 64 * MB),
        job_id=f"j{job}",
        job_input_bytes=draw(st.floats(min_value=1.0, max_value=1e12)),
        job_submitted_at=draw(st.floats(min_value=0.0, max_value=1e6)),
        implicit_eviction=draw(st.booleans()),
        order_hint=draw(st.integers(min_value=0, max_value=1000)),
    )


@st.composite
def migration_scripts(draw):
    """A random interleaving of migrate/evict requests over a few files."""
    steps = []
    num_files = draw(st.integers(min_value=1, max_value=4))
    for step in range(draw(st.integers(min_value=1, max_value=10))):
        file_index = draw(st.integers(min_value=0, max_value=num_files - 1))
        action = draw(st.sampled_from(["migrate", "evict", "wait"]))
        steps.append((action, file_index, draw(st.floats(0.1, 20.0))))
    return num_files, steps


@st.composite
def transfer_plans(draw):
    """A list of (start_delay, nbytes) transfer requests."""
    count = draw(st.integers(min_value=1, max_value=8))
    plan = []
    for _ in range(count):
        delay = draw(st.floats(min_value=0.0, max_value=5.0))
        nbytes = draw(st.floats(min_value=1.0, max_value=512.0)) * MB
        plan.append((delay, nbytes))
    return plan


#: Tier rosters the tier-index property suite samples from.
TIER_ROSTERS = (("mem",), ("mem", "ssd"), ("mem", "ssd", "flash"))


@st.composite
def tier_deltas(draw, tiers=None, num_nodes=3, num_blocks=6, max_steps=40):
    """A random residency-delta script for the tier locality index.

    Returns ``(tiers, steps)`` where each step is either
    ``("update", node, tier, block, resident)`` or ``("purge", node)``.
    """
    roster = tuple(tiers) if tiers is not None else draw(
        st.sampled_from(TIER_ROSTERS)
    )
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_steps))):
        if draw(st.integers(0, 9)) == 0:
            steps.append(
                ("purge", f"node{draw(st.integers(0, num_nodes - 1))}")
            )
            continue
        steps.append(
            (
                "update",
                f"node{draw(st.integers(0, num_nodes - 1))}",
                draw(st.sampled_from(roster)),
                f"blk{draw(st.integers(0, num_blocks - 1))}",
                draw(st.booleans()),
            )
        )
    return roster, steps


@st.composite
def scheduler_workloads(draw):
    """Random (nodes, slots, tasks) scheduling scenarios."""
    num_nodes = draw(st.integers(min_value=1, max_value=4))
    slots = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    for index in range(draw(st.integers(min_value=1, max_value=12))):
        tasks.append(
            {
                "submit_at": draw(st.floats(min_value=0.0, max_value=20.0)),
                "duration": draw(st.floats(min_value=0.1, max_value=8.0)),
                "fails_first": draw(st.booleans()),
            }
        )
    return num_nodes, slots, tasks


@st.composite
def fault_events(draw, num_nodes=4, horizon=60.0):
    """One well-formed fault event aimed at a node0..nodeN cluster."""
    kind = draw(st.sampled_from(FAULT_KINDS))
    target = None
    param = None
    if kind in ("crash", "restart", "slow_disk_start", "slow_disk_end"):
        target = f"node{draw(st.integers(0, num_nodes - 1))}"
    if kind == "slow_disk_start":
        param = draw(st.floats(min_value=0.05, max_value=0.9))
    elif kind == "net_loss_start":
        param = draw(st.floats(min_value=0.1, max_value=1.0))
    return FaultEvent(
        time=draw(st.floats(min_value=0.0, max_value=horizon)),
        kind=kind,
        target=target,
        param=param,
    )
