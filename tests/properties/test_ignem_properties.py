"""Property-based tests for Ignem's core invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import IgnemConfig, build_paper_testbed
from repro.core.commands import MigrationWorkItem
from repro.core.policy import FifoOrder, SmallestJobFirst
from repro.storage import GB, MB
from tests.strategies import migration_scripts, work_items


class TestPolicyProperties:
    @given(st.lists(work_items(), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_smallest_job_first_is_total_order_on_job_size(self, items):
        policy = SmallestJobFirst()
        ordered = sorted(items, key=policy.priority)
        sizes = [item.job_input_bytes for item in ordered]
        assert sizes == sorted(sizes)

    @given(st.lists(work_items(), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_priorities_are_deterministic(self, items):
        policy = SmallestJobFirst()
        assert [policy.priority(i) for i in items] == [
            policy.priority(i) for i in items
        ]

    @given(work_items(), work_items())
    @settings(max_examples=60, deadline=None)
    def test_fifo_ignores_job_size(self, a, b):
        policy = FifoOrder()
        # FIFO ordering depends only on submit time / order / arrival,
        # never on size: flipping sizes cannot flip the order.
        first = policy.priority(a) < policy.priority(b)
        swapped_a = MigrationWorkItem(
            block=a.block,
            job_id=a.job_id,
            job_input_bytes=b.job_input_bytes,
            job_submitted_at=a.job_submitted_at,
            implicit_eviction=a.implicit_eviction,
            order_hint=a.order_hint,
            seq=a.seq,
        )
        assert (policy.priority(swapped_a) < policy.priority(b)) == first


class TestEndToEndInvariants:
    @given(migration_scripts())
    @settings(max_examples=25, deadline=None)
    def test_migrated_bytes_match_pinned_cache_bytes(self, script):
        """At every quiescent point, each slave's accounting agrees with
        the DataNode cache's pinned bytes."""
        num_files, steps = script
        cluster = build_paper_testbed(
            seed=1, ignem=True, ignem_config=IgnemConfig(buffer_capacity=1 * GB)
        )
        for index in range(num_files):
            cluster.client.create_file(f"/f{index}", 128 * MB)
            cluster.rm.register_job(f"job-{index}")

        def driver(env):
            for action, file_index, delay in steps:
                if action == "migrate":
                    cluster.client.migrate([f"/f{file_index}"], f"job-{file_index}")
                elif action == "evict":
                    cluster.client.evict([f"/f{file_index}"], f"job-{file_index}")
                yield env.timeout(delay)

        cluster.env.process(driver(cluster.env), name="driver")
        cluster.run()

        for slave in cluster.ignem_master.slaves():
            assert slave.migrated_bytes == pytest.approx(
                slave.datanode.cache.pinned_bytes, abs=1.0
            )
            assert slave.migrated_bytes <= 1 * GB + 1e-6

    @given(migration_scripts())
    @settings(max_examples=25, deadline=None)
    def test_evicting_everything_releases_everything(self, script):
        num_files, steps = script
        cluster = build_paper_testbed(seed=2, ignem=True)
        for index in range(num_files):
            cluster.client.create_file(f"/f{index}", 128 * MB)
            cluster.rm.register_job(f"job-{index}")

        def driver(env):
            for action, file_index, delay in steps:
                if action == "migrate":
                    cluster.client.migrate([f"/f{file_index}"], f"job-{file_index}")
                yield env.timeout(delay)

        cluster.env.process(driver(cluster.env), name="driver")
        cluster.run()
        for index in range(num_files):
            cluster.client.evict([f"/f{index}"], f"job-{index}")
        cluster.run()
        assert all(s.migrated_bytes == 0 for s in cluster.ignem_master.slaves())
        assert all(s.reference_count() == 0 for s in cluster.ignem_master.slaves())
