"""Property-based tests for self-healing replication (hypothesis).

The headline property: after *any* interleaving of permanent kills,
fresh joins, and the repairs they trigger, a fully drained cluster ends
with every surviving block (at least one live replica) holding exactly
``min(replication, live_nodes)`` live replicas, no two of which share a
node.  Blocks that lose every replica to overlapping kills are data
loss, exempted here and judged by the data-loss invariant's own rules.
"""

from hypothesis import given, settings, strategies as st

from tests.fixtures import make_dfs_cluster
from repro.storage import MB


@st.composite
def elasticity_scripts(draw):
    """A random cluster shape, file set, and kill/join interleaving.

    Ops carry raw draws (delay, kind, victim index); the runner resolves
    the index against the membership at fire time, so every generated
    script is applicable to whatever topology the earlier ops produced.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    replication = draw(st.integers(min_value=1, max_value=min(3, num_nodes)))
    files = [
        (f"/prop/file-{i}", draw(st.integers(1, 3)) * 64 * MB)
        for i in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        ops.append(
            (
                draw(st.floats(min_value=0.5, max_value=30.0)),
                draw(st.sampled_from(("kill", "join"))),
                draw(st.integers(min_value=0, max_value=7)),
            )
        )
    return num_nodes, replication, files, ops


def _apply_script(cluster, ops):
    """Fire the ops at their drawn times from inside the simulation."""

    def driver():
        now = 0.0
        for delay, kind, index in ops:
            at = now + delay
            yield cluster.env.timeout(at - now)
            now = at
            if kind == "join":
                cluster.add_datanode()
                continue
            victims = [
                name
                for name in sorted(cluster.datanodes)
                if cluster.datanodes[name].alive
                and name not in cluster.released_nodes
            ]
            # Never kill the last node standing: an empty cluster has
            # nothing left to assert about.
            if len(victims) >= 2:
                cluster.fail_node(victims[index % len(victims)])

    cluster.env.process(driver(), name="elasticity-script")


class TestReplicationConvergence:
    @given(elasticity_scripts())
    @settings(max_examples=30, deadline=None)
    def test_surviving_blocks_converge_to_min_rep_live(self, script):
        num_nodes, replication, files, ops = script
        cluster = make_dfs_cluster(
            num_nodes=num_nodes, replication=replication
        )
        for path, nbytes in files:
            cluster.client.create_file(path, nbytes)
        _apply_script(cluster, ops)
        cluster.run()  # full drain: every repair chain settles

        namenode = cluster.namenode
        live_nodes = len(namenode.live_datanodes())
        for path in namenode.list_files():
            metadata = namenode.get_file(path)
            target = min(metadata.replication, live_nodes)
            for block in metadata.blocks:
                holders = namenode.block_replicas(block.block_id)
                assert len(holders) == len(set(holders)), (
                    f"{block.block_id} lists a holder twice: {holders}"
                )
                live = namenode.get_block_locations(block.block_id)
                if not live:
                    continue  # lost to overlapping kills: data loss,
                    # exempt here (judged by data_loss_violations)
                assert len(live) == target, (
                    f"{block.block_id} ended with {len(live)} live "
                    f"replica(s), want {target} "
                    f"(rep={metadata.replication}, {live_nodes} live)"
                )

    @given(elasticity_scripts())
    @settings(max_examples=15, deadline=None)
    def test_interleaving_replays_deterministically(self, script):
        num_nodes, replication, files, ops = script

        def run():
            cluster = make_dfs_cluster(
                num_nodes=num_nodes, replication=replication
            )
            for path, nbytes in files:
                cluster.client.create_file(path, nbytes)
            _apply_script(cluster, ops)
            cluster.run()
            namenode = cluster.namenode
            return (
                cluster.env.now,
                cluster.replication_monitor.copies_completed,
                {
                    block.block_id: sorted(
                        namenode.get_block_locations(block.block_id)
                    )
                    for path in namenode.list_files()
                    for block in namenode.get_file(path).blocks
                },
            )

        assert run() == run()
