"""Index-vs-brute-force equivalence under a live SWIM workload.

The memory-locality index claims an invariant (see
``repro.dfs.memory_index``): at every point in simulated time, for every
block, ``locality_index.nodes(block_id)`` equals the brute-force
recomputation obtained by probing each replica holder's buffer cache.
This test drives a small Ignem SWIM run — migrations pinning blocks in,
reads caching them, implicit and explicit evictions dropping them — and
checks the invariant at fixed wall-of-simulated-time checkpoints and
again after the workload drains.
"""

from repro.cluster import build_paper_testbed
from repro.core.config import IgnemConfig
from repro.mapreduce.spec import EngineConfig
from repro.storage.device import GB
from repro.workloads import swim


def _assert_index_matches_brute_force(namenode):
    index = namenode.locality_index
    seen = index.blocks()
    for block_id, nodes in namenode._locations.items():
        expected = {
            node
            for node in nodes
            if node in namenode._datanodes
            and namenode.datanode(node).block_in_memory(block_id)
        }
        assert index.nodes(block_id) == expected, block_id
        if not expected:
            assert block_id not in seen
    # No phantom entries for blocks the namespace does not know about.
    for block_id in seen:
        assert block_id in namenode._locations


def test_index_equals_brute_force_throughout_a_swim_run():
    cluster = build_paper_testbed(
        seed=3, engine_config=EngineConfig(output_replication=1)
    )
    cluster.enable_ignem(IgnemConfig(buffer_capacity=4 * GB))
    jobs = swim.SwimGenerator(seed=3).generate(num_jobs=12)
    swim.materialize(cluster, jobs)
    specs, arrivals = swim.to_specs(jobs)
    done = cluster.engine.run_workload(specs, arrivals, implicit_eviction=True)

    env = cluster.env
    checkpoints = 0
    while not done.processed and env.peek() != float("inf"):
        env.run(until=env.now + 10.0)
        _assert_index_matches_brute_force(cluster.namenode)
        checkpoints += 1
        assert checkpoints < 10_000, "workload failed to finish"

    assert done.processed
    # The run must actually have been observed mid-flight, not just at
    # the end (otherwise the invariant check would be vacuous).
    assert checkpoints >= 5
    _assert_index_matches_brute_force(cluster.namenode)
