"""Property-based tests for buffer-cache invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.storage import MB, BufferCache

CAPACITY = 100 * MB

op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(min_value=0, max_value=12),
        st.floats(min_value=1.0, max_value=40.0),
        st.booleans(),
    ),
    st.tuples(st.just("evict"), st.integers(min_value=0, max_value=12)),
    st.tuples(st.just("pin"), st.integers(min_value=0, max_value=12)),
    st.tuples(st.just("unpin"), st.integers(min_value=0, max_value=12)),
    st.tuples(st.just("touch"), st.integers(min_value=0, max_value=12)),
)


def apply(cache, operation):
    kind = operation[0]
    if kind == "insert":
        _, key, size_mb, pinned = operation
        cache.insert(f"k{key}", size_mb * MB, pinned=pinned)
    elif kind == "evict":
        cache.evict(f"k{operation[1]}")
    elif kind == "pin":
        cache.pin(f"k{operation[1]}")
    elif kind == "unpin":
        cache.unpin(f"k{operation[1]}")
    elif kind == "touch":
        cache.contains(f"k{operation[1]}")


class TestCacheInvariants:
    @given(st.lists(op, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_capacity_never_exceeded(self, operations):
        cache = BufferCache(Environment(), capacity=CAPACITY)
        for operation in operations:
            apply(cache, operation)
            assert cache.used_bytes <= CAPACITY + 1.0

    @given(st.lists(op, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_pinned_bytes_bounded_by_used(self, operations):
        cache = BufferCache(Environment(), capacity=CAPACITY)
        for operation in operations:
            apply(cache, operation)
            assert -1.0 <= cache.pinned_bytes <= cache.used_bytes + 1.0

    @given(st.lists(op, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_used_bytes_matches_resident_set(self, operations):
        cache = BufferCache(Environment(), capacity=CAPACITY)
        sizes = {}
        for operation in operations:
            if operation[0] == "insert":
                _, key, size_mb, _ = operation
                if (
                    cache.insert(f"k{key}", size_mb * MB, pinned=operation[3])
                    and f"k{key}" not in sizes
                ):
                    sizes[f"k{key}"] = size_mb * MB
            else:
                apply(cache, operation)
            resident = cache.resident_keys()
            # Entries evicted (explicitly or by pressure) may re-enter
            # later with a different size; keep the oracle in sync with
            # what is actually resident.
            sizes = {k: v for k, v in sizes.items() if k in resident}
            expected = sum(sizes.values())
            assert cache.used_bytes == pytest.approx(expected, abs=1.0)

    @given(st.lists(op, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_flush_all_resets_everything(self, operations):
        cache = BufferCache(Environment(), capacity=CAPACITY)
        for operation in operations:
            apply(cache, operation)
        cache.flush_all()
        assert cache.used_bytes == 0
        assert cache.pinned_bytes == 0
        assert cache.resident_keys() == set()

    @given(st.lists(op, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_pinned_entries_survive_pressure(self, operations):
        cache = BufferCache(Environment(), capacity=CAPACITY)
        cache.insert("protected", 20 * MB, pinned=True)
        # Generated operations only ever touch keys k0..k12, so any loss
        # of "protected" could only come from (forbidden) pressure-driven
        # eviction of a pinned entry.
        for operation in operations:
            apply(cache, operation)
        assert cache.peek("protected")
        assert cache.is_pinned("protected")
