"""Property suite for the tier-aware block-location index.

Three guarantees the PR 5 tier refactor must hold:

1. a replica is indexed in at most ONE tier of a node at any time (a
   block moving up retracts from the tier it left);
2. inserting a fresh replica and then evicting it restores the exact
   prior occupancy — across every tier, not just the touched one;
3. with a single upper tier the tier index is observationally
   equivalent to the plain :class:`MemoryLocalityIndex` it generalizes,
   including the listener delta stream the PR 1 scheduler fast path
   consumes.
"""

from hypothesis import given, settings

from repro.dfs.memory_index import MemoryLocalityIndex
from repro.dfs.tier_index import TierLocalityIndex

from tests.strategies import tier_deltas


def _apply(index: TierLocalityIndex, step) -> None:
    if step[0] == "purge":
        index.purge_node(step[1])
    else:
        _, node, tier, block, resident = step
        index.update(node, tier, block, resident)


def _occupancy(index: TierLocalityIndex, tiers) -> dict:
    """Full observable state: tier -> {block -> frozenset(nodes)}."""
    return {tier: index.tier(tier).blocks() for tier in tiers}


class TestOneTierPerReplica:
    @given(tier_deltas())
    @settings(max_examples=200, deadline=None)
    def test_replica_never_indexed_in_two_tiers_of_one_node(self, script):
        tiers, steps = script
        index = TierLocalityIndex()
        for step in steps:
            _apply(index, step)
            for block in {s[3] for s in steps if s[0] == "update"}:
                for node in {s[1] for s in steps}:
                    holding = [
                        tier
                        for tier in tiers
                        if node in index.nodes(tier, block)
                    ]
                    assert len(holding) <= 1, (block, node, holding)
                    if holding:
                        assert index.tier_of(block, node) == holding[0]
                    else:
                        assert index.tier_of(block, node) is None


class TestEvictionRestoresOccupancy:
    @given(tier_deltas(num_blocks=4))
    @settings(max_examples=200, deadline=None)
    def test_insert_then_evict_fresh_replica_is_identity(self, script):
        tiers, steps = script
        index = TierLocalityIndex()
        for step in steps:
            _apply(index, step)
        before = _occupancy(index, tiers)

        # A replica no step ever touched is fresh by construction.
        node, block = "nodeX", "blk-fresh"
        for tier in tiers:
            index.update(node, tier, block, True)
            assert node in index.nodes(tier, block)
            index.update(node, tier, block, False)
            assert _occupancy(index, tiers) == before, tier


class TestTwoTierEquivalence:
    @given(tier_deltas(tiers=("mem",)))
    @settings(max_examples=200, deadline=None)
    def test_single_tier_index_matches_memory_index(self, script):
        _, steps = script
        tier_index = TierLocalityIndex()
        plain = MemoryLocalityIndex()
        tier_stream, plain_stream = [], []
        tier_index.tier("mem").add_listener(
            lambda block, node, resident: tier_stream.append(
                (block, node, resident)
            )
        )
        plain.add_listener(
            lambda block, node, resident: plain_stream.append(
                (block, node, resident)
            )
        )

        for step in steps:
            if step[0] == "purge":
                tier_index.purge_node(step[1])
                plain.purge_node(step[1])
            else:
                _, node, tier, block, resident = step
                tier_index.update(node, tier, block, resident)
                plain.update(node, block, resident)
            assert tier_index.tier("mem").blocks() == plain.blocks()
            assert tier_stream == plain_stream
        assert len(tier_index.tier("mem")) == len(plain)
