"""Property-based tests for scheduler and network invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Network
from repro.scheduler import NodeManager, ResourceManager, TaskRequest
from repro.sim import Environment
from repro.storage import MB
from tests.strategies import scheduler_workloads


class TestSchedulerInvariants:
    @given(scheduler_workloads())
    @settings(max_examples=40, deadline=None)
    def test_slots_never_oversubscribed_and_all_tasks_finish(self, scenario):
        num_nodes, slots, specs = scenario
        env = Environment()
        rm = ResourceManager(env)
        nodes = []
        for index in range(num_nodes):
            node = NodeManager(
                env, f"n{index}", slots=slots, heartbeat_interval=1.0,
                heartbeat_offset=index * 0.1,
            )
            rm.register_node(node)
            nodes.append(node)
        rm.register_job("j")

        finished = []
        observed_free = []

        def make_execute(spec, state):
            def execute(node):
                observed_free.extend(n.free_slots for n in nodes)
                yield env.timeout(spec["duration"])
                if spec["fails_first"] and not state["failed"]:
                    state["failed"] = True
                    raise RuntimeError("first attempt dies")
                finished.append(node)

            return execute

        tasks = []
        for index, spec in enumerate(specs):
            state = {"failed": False}
            task = TaskRequest(env, "j", f"t{index}", "map", make_execute(spec, state))

            def submitter(env, task=task, at=spec["submit_at"]):
                yield env.timeout(at)
                rm.submit(task)

            env.process(submitter(env))
            tasks.append(task)

        outcomes = []

        def waiter(env, task):
            try:
                yield task.completed
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("abandoned")

        for task in tasks:
            env.process(waiter(env, task))
        env.run()
        # Every task reached a terminal state: success, or abandonment
        # when its exclusions covered every live node.
        assert len(outcomes) == len(tasks)
        for task in tasks:
            assert task.completed.triggered
        # Slots were never oversubscribed (free_slots always in range).
        assert all(0 <= free <= slots for free in observed_free)
        # Launch accounting is consistent.
        assert rm.tasks_launched == sum(t.attempts for t in tasks)

    @given(scheduler_workloads())
    @settings(max_examples=30, deadline=None)
    def test_no_task_starts_before_submission(self, scenario):
        num_nodes, slots, specs = scenario
        env = Environment()
        rm = ResourceManager(env)
        for index in range(num_nodes):
            rm.register_node(
                NodeManager(env, f"n{index}", slots=slots, heartbeat_interval=1.0)
            )
        rm.register_job("j")
        tasks = []
        def quick(node):
            yield env.timeout(0.1)

        for index, spec in enumerate(specs):
            task = TaskRequest(env, "j", f"t{index}", "map", quick)

            def submitter(env, task=task, at=spec["submit_at"]):
                yield env.timeout(at)
                rm.submit(task)

            env.process(submitter(env))
            tasks.append(task)
        env.run()
        for task in tasks:
            assert task.started_at is not None
            assert task.started_at >= task.submitted_at


class TestNetworkInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # src
                st.integers(min_value=0, max_value=3),  # dst
                st.floats(min_value=1.0, max_value=256.0),  # MB
                st.floats(min_value=0.0, max_value=5.0),  # start
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_nic_byte_conservation(self, flows):
        env = Environment()
        network = Network(env, bandwidth=100 * MB)
        for index in range(4):
            network.add_node(f"n{index}")

        def flow(env, src, dst, nbytes, start):
            yield env.timeout(start)
            yield network.transfer(src, dst, nbytes)

        expected = 0.0
        for src_i, dst_i, size_mb, start in flows:
            src, dst = f"n{src_i}", f"n{dst_i}"
            if src != dst:
                expected += 2 * size_mb * MB  # egress + ingress NIC
            env.process(flow(env, src, dst, size_mb * MB, start))
        env.run()
        moved = sum(network.nic(f"n{i}").bytes_moved for i in range(4))
        assert moved == pytest.approx(expected, rel=1e-6)

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=128.0),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_shared_nic_never_beats_line_rate(self, sizes_mb):
        env = Environment()
        bandwidth = 100 * MB
        network = Network(env, bandwidth=bandwidth)
        network.add_node("src")
        network.add_node("dst")

        def flow(env, nbytes):
            yield network.transfer("src", "dst", nbytes)

        for size_mb in sizes_mb:
            env.process(flow(env, size_mb * MB))
        env.run()
        total = sum(sizes_mb) * MB
        assert env.now >= total / bandwidth - 1e-6
