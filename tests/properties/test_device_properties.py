"""Property-based tests for the transfer-device model (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.storage import MB, TransferDevice, seek_thrash_penalty
from tests.strategies import transfer_plans


def run_plan(plan, bandwidth=100 * MB, alpha=0.0, caps=None):
    env = Environment()
    device = TransferDevice(
        env, "d", bandwidth=bandwidth, penalty=seek_thrash_penalty(alpha)
    )
    completions = {}

    def issuer(env, index, delay, nbytes, cap):
        yield env.timeout(delay)
        start = env.now
        yield device.transfer(nbytes, rate_cap=cap)
        completions[index] = (start, env.now, nbytes)

    for index, (delay, nbytes) in enumerate(plan):
        cap = caps[index] if caps else None
        env.process(issuer(env, index, delay, nbytes, cap))
    env.run()
    return env, device, completions


class TestConservation:
    @given(transfer_plans())
    @settings(max_examples=60, deadline=None)
    def test_all_bytes_eventually_moved(self, plan):
        _, device, completions = run_plan(plan)
        assert len(completions) == len(plan)
        total = sum(nbytes for _, nbytes in plan)
        assert device.bytes_moved == pytest.approx(total, rel=1e-6)

    @given(transfer_plans(), st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_conservation_holds_under_any_penalty(self, plan, alpha):
        _, device, completions = run_plan(plan, alpha=alpha)
        total = sum(nbytes for _, nbytes in plan)
        assert device.bytes_moved == pytest.approx(total, rel=1e-6)


class TestTimingBounds:
    @given(transfer_plans())
    @settings(max_examples=60, deadline=None)
    def test_no_transfer_beats_dedicated_bandwidth(self, plan):
        """A transfer can never finish faster than having the whole
        device to itself."""
        bandwidth = 100 * MB
        _, _, completions = run_plan(plan, bandwidth=bandwidth)
        for start, end, nbytes in completions.values():
            assert end - start >= nbytes / bandwidth - 1e-6

    @given(transfer_plans(), st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_serial_time_at_full_speed(self, plan, alpha):
        bandwidth = 100 * MB
        env, _, _ = run_plan(plan, bandwidth=bandwidth, alpha=alpha)
        first_start = min(delay for delay, _ in plan)
        total = sum(nbytes for _, nbytes in plan)
        assert env.now >= first_start + total / bandwidth - 1e-6

    @given(transfer_plans())
    @settings(max_examples=40, deadline=None)
    def test_rate_caps_only_slow_things_down(self, plan):
        _, _, uncapped = run_plan(plan)
        caps = [10 * MB] * len(plan)
        _, _, capped = run_plan(plan, caps=caps)
        for index in uncapped:
            assert capped[index][1] >= uncapped[index][1] - 1e-6

    @given(transfer_plans())
    @settings(max_examples=40, deadline=None)
    def test_busy_time_bounded_by_makespan(self, plan):
        env, device, _ = run_plan(plan)
        assert 0 <= device.busy_time <= env.now + 1e-9


class TestPenaltyMonotonicity:
    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregate_efficiency_never_exceeds_one(self, alpha, streams):
        penalty = seek_thrash_penalty(alpha)
        assert 0 < penalty(streams) <= 1.0

    @given(st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_efficiency_decreases_with_concurrency(self, alpha):
        penalty = seek_thrash_penalty(alpha)
        values = [penalty(n) for n in range(1, 20)]
        assert all(a >= b for a, b in zip(values, values[1:]))
