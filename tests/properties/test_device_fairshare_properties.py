"""Property tests: device fair-share fast paths vs a naive reference.

``TransferDevice._recompute_rates`` special-cases the layouts that
dominate real runs — a lone stream, an all-uncapped set, exactly one
capped stream, and an already-ascending cap sequence — to skip the full
stable sort.  Each fast path claims to reproduce the sort-everything
water-fill *bit for bit* (same grant order, same float operations); the
vectorized path above 64 streams is the one place ulp-level drift is
allowed.  These properties pin both claims with hypothesis-generated
cap layouts and staggered transfer plans.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.storage import MB, TransferDevice, seek_thrash_penalty

BANDWIDTH = 100 * MB


def naive_rates(caps, bandwidth, alpha):
    """Sort-everything water-fill: the reference the fast paths must match.

    Stable-sorts every stream by cap (uncapped last) and grants shares in
    that order with a running budget — the pre-fast-path algorithm,
    with no layout special cases.
    """
    count = len(caps)
    budget = bandwidth * seek_thrash_penalty(alpha)(count)
    inf = float("inf")
    order = sorted(
        range(count), key=lambda i: inf if caps[i] is None else caps[i]
    )
    rates = [0.0] * count
    remaining = count
    for index in order:
        fair = budget / remaining
        cap = caps[index]
        rate = fair if cap is None else min(cap, fair)
        rates[index] = rate
        budget -= rate
        remaining -= 1
    return rates


class NaiveDevice(TransferDevice):
    """A :class:`TransferDevice` with every reshare doing the full sort."""

    def _vec_enter(self):
        """The reference stays scalar at any stream count."""

    def _recompute_rates(self):
        active = self._active
        inf = float("inf")
        pending = sorted(
            active,
            key=lambda t: inf if t.rate_cap is None else t.rate_cap,
        )
        budget = self.bandwidth * self.penalty(len(active))
        count = len(active)
        for record in pending:
            fair = budget / count
            cap = record.rate_cap
            rate = fair if cap is None else min(cap, fair)
            record.rate = rate
            budget -= rate
            count -= 1
        return pending


def device_rates(caps, alpha):
    """Rates the real device assigns to streams admitted in ``caps`` order."""
    env = Environment()
    device = TransferDevice(
        env, "d", bandwidth=BANDWIDTH, penalty=seek_thrash_penalty(alpha)
    )
    for cap in caps:
        device.transfer(1024 * MB, rate_cap=cap)
    return [record.rate for record in device._active]


# A cap either binds hard (below any fair share), sits mid-range, or is
# absent; mixing all three exercises every branch of the water-fill.
cap_values = st.one_of(
    st.none(),
    st.floats(min_value=0.1 * MB, max_value=200 * MB),
)
alphas = st.floats(min_value=0.0, max_value=2.0)


class TestFastPathsMatchReference:
    """Each scalar fast path must be bit-identical to the naive sort."""

    @given(cap_values, alphas)
    @settings(max_examples=60, deadline=None)
    def test_lone_stream(self, cap, alpha):
        assert device_rates([cap], alpha) == naive_rates(
            [cap], BANDWIDTH, alpha
        )

    @given(st.integers(min_value=2, max_value=40), alphas)
    @settings(max_examples=60, deadline=None)
    def test_all_uncapped(self, streams, alpha):
        caps = [None] * streams
        assert device_rates(caps, alpha) == naive_rates(
            caps, BANDWIDTH, alpha
        )

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=29),
        st.floats(min_value=0.1 * MB, max_value=200 * MB),
        alphas,
    )
    @settings(max_examples=80, deadline=None)
    def test_one_capped_any_position(self, streams, position, cap, alpha):
        caps = [None] * streams
        caps[position % streams] = cap
        assert device_rates(caps, alpha) == naive_rates(
            caps, BANDWIDTH, alpha
        )

    @given(
        st.lists(
            st.floats(min_value=0.1 * MB, max_value=200 * MB),
            min_size=2,
            max_size=30,
        ),
        alphas,
    )
    @settings(max_examples=60, deadline=None)
    def test_ascending_caps_skip_the_sort(self, raw_caps, alpha):
        caps = sorted(raw_caps)
        assert device_rates(caps, alpha) == naive_rates(
            caps, BANDWIDTH, alpha
        )

    @given(st.lists(cap_values, min_size=1, max_size=30), alphas)
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_layouts(self, caps, alpha):
        assert device_rates(caps, alpha) == naive_rates(
            caps, BANDWIDTH, alpha
        )

    @given(st.lists(cap_values, min_size=1, max_size=30), alphas)
    @settings(max_examples=60, deadline=None)
    def test_rates_respect_caps_and_budget(self, caps, alpha):
        rates = device_rates(caps, alpha)
        budget = BANDWIDTH * seek_thrash_penalty(alpha)(len(caps))
        for rate, cap in zip(rates, caps):
            assert rate >= 0.0
            if cap is not None:
                assert rate <= cap
        assert sum(rates) <= budget * (1 + 1e-12)


# Staggered plans: (delay, megabytes, cap) per stream.  Delays overlap
# transfers so the devices reshare, settle, and reschedule many times.
transfer_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.1, max_value=64.0),
        cap_values,
    ),
    min_size=1,
    max_size=16,
)


def run_plan(device_class, plan, alpha):
    """Replay ``plan`` on a fresh device; returns completion times."""
    env = Environment()
    device = device_class(
        env, "d", bandwidth=BANDWIDTH, penalty=seek_thrash_penalty(alpha)
    )
    completions = {}

    def issuer(env, index, delay, megabytes, cap):
        yield env.timeout(delay)
        yield device.transfer(megabytes * MB, rate_cap=cap)
        completions[index] = env.now

    for index, (delay, megabytes, cap) in enumerate(plan):
        env.process(issuer(env, index, delay, megabytes, cap))
    env.run()
    return completions, device.bytes_moved


class TestIncrementalSettleMatchesReference:
    """Full trajectories — reshare points, settle accounting, completion
    times — must be bit-identical with the fast paths on and off."""

    @given(transfer_plans, alphas)
    @settings(max_examples=60, deadline=None)
    def test_completion_times_bit_identical(self, plan, alpha):
        fast, fast_moved = run_plan(TransferDevice, plan, alpha)
        naive, naive_moved = run_plan(NaiveDevice, plan, alpha)
        assert fast == naive
        assert fast_moved == naive_moved


class TestVectorPath:
    """Above 64 streams the numpy water-fill takes over: ulp drift from
    the scalar loop is allowed, nondeterminism and unfairness are not."""

    def _wide_plan(self, streams, capped_every):
        plan = []
        for index in range(streams):
            cap = 2 * MB if index % capped_every == 0 else None
            plan.append((0.001 * index, 8.0 + (index % 7), cap))
        return plan

    @pytest.mark.parametrize("streams", [80, 100])
    def test_vector_replay_is_deterministic(self, streams):
        plan = self._wide_plan(streams, capped_every=5)
        first, first_moved = run_plan(TransferDevice, plan, alpha=0.1)
        second, second_moved = run_plan(TransferDevice, plan, alpha=0.1)
        assert first == second
        assert first_moved == second_moved

    @pytest.mark.parametrize("streams", [80, 100])
    def test_vector_path_tracks_reference_closely(self, streams):
        plan = self._wide_plan(streams, capped_every=5)
        fast, fast_moved = run_plan(TransferDevice, plan, alpha=0.1)
        naive, naive_moved = run_plan(NaiveDevice, plan, alpha=0.1)
        assert fast_moved == pytest.approx(naive_moved, rel=1e-9)
        assert set(fast) == set(naive)
        for index in naive:
            assert fast[index] == pytest.approx(naive[index], rel=1e-9)
