"""Property-based tests for simulation-kernel invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, PriorityItem, PriorityStore
from repro.dfs.blocks import split_into_blocks
from repro.storage import MB


class TestClockMonotonicity:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_events_observe_nondecreasing_time(self, delays):
        env = Environment()
        observed = []

        def proc(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for delay in delays:
            env.process(proc(env, delay))
        env.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)
        assert env.now == pytest.approx(max(delays))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nested_waits_preserve_causality(self, pairs):
        env = Environment()
        log = []

        def child(env, duration, index):
            yield env.timeout(duration)
            return index

        def parent(env, start_delay, duration, index):
            yield env.timeout(start_delay)
            spawn_time = env.now
            value = yield env.process(child(env, duration, index))
            assert value == index
            log.append((spawn_time, env.now))

        for index, (start, duration) in enumerate(pairs):
            env.process(parent(env, start, duration, index))
        env.run()
        assert len(log) == len(pairs)
        for spawn_time, finish_time in log:
            assert finish_time >= spawn_time


class TestPriorityStoreOrdering:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_items_leave_in_priority_order(self, priorities):
        env = Environment()
        store = PriorityStore(env)
        drained = []

        def producer(env):
            for index, priority in enumerate(priorities):
                yield store.put(PriorityItem(priority, index))

        def consumer(env):
            yield env.timeout(1)
            for _ in priorities:
                item = yield store.get()
                drained.append(item.priority)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert drained == sorted(priorities)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_equal_priorities_preserve_fifo(self, priorities):
        env = Environment()
        store = PriorityStore(env)
        drained = []

        def producer(env):
            for index, priority in enumerate(priorities):
                yield store.put(PriorityItem(priority, index))

        def consumer(env):
            yield env.timeout(1)
            for _ in priorities:
                item = yield store.get()
                drained.append((item.priority, item.item))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        for (pa, ia), (pb, ib) in zip(drained, drained[1:]):
            if pa == pb:
                assert ia < ib


class TestBlockSplitting:
    # Keep nbytes/block_size bounded so splits stay at sane block counts.
    @given(
        st.floats(min_value=0.0, max_value=1e10),
        st.floats(min_value=1e6, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_blocks_conserve_bytes(self, nbytes, block_size):
        blocks = split_into_blocks("/f", nbytes, block_size)
        assert sum(b.nbytes for b in blocks) == pytest.approx(nbytes, rel=1e-9)

    @given(
        st.floats(min_value=1.0, max_value=1e10),
        st.floats(min_value=1e6, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_all_blocks_within_block_size(self, nbytes, block_size):
        blocks = split_into_blocks("/f", nbytes, block_size)
        for block in blocks:
            assert 0 < block.nbytes <= block_size + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1e10),
        st.floats(min_value=1e6, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_indices_dense_and_ids_unique(self, nbytes, block_size):
        blocks = split_into_blocks("/f", nbytes, block_size)
        assert [b.index for b in blocks] == list(range(len(blocks)))
        assert len({b.block_id for b in blocks}) == len(blocks)
