"""Property-based tests for the heat estimator and promotion planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heat import (
    HeatEstimator,
    PromotionCandidate,
    plan_promotions,
)
from repro.dfs.blocks import Block
from repro.storage import MB


def _block(index, nbytes=64 * MB):
    return Block(
        block_id=f"/p/data#blk{index}",
        path="/p/data",
        index=index,
        nbytes=nbytes,
    )


#: One read event: (block index, tenant index, time).
read_events = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


def _feed(estimator, events):
    for block_index, tenant_index, when in events:
        estimator.record(_block(block_index), f"t{tenant_index}", when)


class TestEstimatorProperties:
    @given(
        st.lists(read_events, min_size=1, max_size=40),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_decay_is_monotone_in_time(self, events, t_a, t_b):
        """With no new reads, heat never increases as time passes."""
        estimator = HeatEstimator(half_life=10.0)
        _feed(estimator, events)
        last = max(when for _b, _t, when in events)
        earlier, later = sorted((last + t_a, last + t_b))
        for block_index in range(6):
            block_id = _block(block_index).block_id
            assert (
                estimator.heat(block_id, later)
                <= estimator.heat(block_id, earlier) + 1e-12
            )

    @given(
        st.lists(read_events, min_size=1, max_size=30),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_promotion_set_invariant_under_reordering(self, events, rnd):
        """The heat state is a pure function of the event multiset: any
        arrival order yields the same heats (up to float noise) and the
        exact same set of promotion-qualified blocks."""
        in_order = HeatEstimator(half_life=10.0)
        _feed(in_order, events)
        shuffled = list(events)
        rnd.shuffle(shuffled)
        reordered = HeatEstimator(half_life=10.0)
        _feed(reordered, shuffled)

        now = max(when for _b, _t, when in events) + 1.0
        threshold = 2.0
        qualified_a, qualified_b = set(), set()
        for block_index in range(6):
            block_id = _block(block_index).block_id
            heat_a = in_order.heat(block_id, now)
            heat_b = reordered.heat(block_id, now)
            assert heat_a == pytest.approx(heat_b, rel=1e-9, abs=1e-9)
            if heat_a >= threshold:
                qualified_a.add(block_id)
            if heat_b >= threshold:
                qualified_b.add(block_id)
        assert qualified_a == qualified_b

    @given(st.lists(read_events, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_tenant_counts_order_independent(self, events):
        estimator = HeatEstimator(half_life=10.0)
        _feed(estimator, events)
        reordered = HeatEstimator(half_life=10.0)
        _feed(reordered, list(reversed(events)))
        for block_index in range(6):
            block_id = _block(block_index).block_id
            assert estimator.dominant_tenant(
                block_id
            ) == reordered.dominant_tenant(block_id)


#: One promotion candidate: (block index, tenant index, size in MB).
candidate_draws = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=1.0, max_value=600.0, allow_nan=False),
)


def _candidates(draws):
    return [
        PromotionCandidate(
            Block(
                block_id=f"/p/data#blk{index}-{i}",
                path="/p/data",
                index=i,
                nbytes=size_mb * MB,
            ),
            f"t{tenant}",
        )
        for i, (index, tenant, size_mb) in enumerate(draws)
    ]


class TestPlannerProperties:
    @given(
        st.lists(candidate_draws, min_size=0, max_size=30),
        st.floats(min_value=1.0, max_value=1024.0),
        st.floats(min_value=1.0, max_value=4096.0),
        st.floats(min_value=0.0, max_value=2048.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_caps_never_exceeded(
        self, draws, tenant_cap_mb, admit_cap_mb, outstanding_mb
    ):
        candidates = _candidates(draws)
        tenant_cap = tenant_cap_mb * MB
        admit_cap = admit_cap_mb * MB
        outstanding = outstanding_mb * MB
        granted, spend, overflow = plan_promotions(
            candidates, tenant_cap, admit_cap, outstanding
        )
        # Per-tenant fairness: no tenant is granted more than the cap.
        for tenant, granted_bytes in spend.items():
            assert granted_bytes <= tenant_cap
        # Admission: grants never push the in-flight total above the
        # budget (already-over-budget outstanding just blocks grants).
        if granted:
            assert outstanding + sum(c.nbytes for c in granted) <= admit_cap
        # Conservation: every candidate is granted or explained.
        assert len(granted) + len(overflow) == len(candidates)
        assert {id(c) for c in granted}.isdisjoint(
            id(c) for c, _reason in overflow
        )
        # Spend is exactly the granted bytes, by tenant.
        by_tenant = {}
        for candidate in granted:
            by_tenant[candidate.tenant] = (
                by_tenant.get(candidate.tenant, 0.0) + candidate.nbytes
            )
        assert by_tenant == spend

    @given(st.lists(candidate_draws, min_size=0, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_unbounded_caps_grant_everything(self, draws):
        candidates = _candidates(draws)
        granted, _spend, overflow = plan_promotions(
            candidates, float("inf"), float("inf"), 0.0
        )
        assert granted == candidates
        assert not overflow
