"""Tests for speculative execution and delay scheduling."""

import pytest

from repro import JobSpec, build_paper_testbed
from repro.mapreduce import EngineConfig
from repro.storage import GB, MB


def spec_cluster(**engine_kwargs):
    engine = EngineConfig(speculative_execution=True, **engine_kwargs)
    return build_paper_testbed(
        num_nodes=4, replication=2, seed=11, engine_config=engine
    )


class TestSpeculativeExecution:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(speculative_slowdown=1.0)
        with pytest.raises(ValueError):
            EngineConfig(speculative_min_completed=1.5)
        with pytest.raises(ValueError):
            EngineConfig(speculative_poll_interval=0)

    def test_no_speculation_without_stragglers(self):
        """A uniform job on pinned inputs has no stragglers to speculate."""
        cluster = spec_cluster()
        cluster.client.create_file("/in", 512 * MB)
        cluster.pin_all_inputs()
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        assert job.speculative_attempts == 0

    def test_straggler_triggers_duplicate_attempt(self):
        """One deliberately slow node makes its maps straggle."""
        cluster = spec_cluster(speculative_slowdown=1.3)
        cluster.client.create_file("/in", 2 * GB, replication=2)
        # Cripple one node's disk so its locally-scheduled maps crawl;
        # duplicates run against the healthy replica holders.
        slow = cluster.datanodes["node0"].disk
        slow.bandwidth = slow.bandwidth / 100
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        assert job.speculative_attempts > 0
        # Duplicate attempts show up as extra -a1 task records.
        attempts = [
            t for t in cluster.collector.tasks if t.task_id.endswith("-a1")
        ]
        assert len(attempts) == job.speculative_attempts
        assert job.finished_at is not None

    def test_speculation_beats_waiting_for_straggler(self):
        def run(speculative):
            engine = EngineConfig(
                speculative_execution=speculative, speculative_slowdown=1.3
            )
            cluster = build_paper_testbed(
                num_nodes=4, replication=2, seed=11, engine_config=engine
            )
            cluster.client.create_file("/in", 2 * GB, replication=2)
            slow = cluster.datanodes["node0"].disk
            slow.bandwidth = slow.bandwidth / 100
            job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
            cluster.run()
            return job.duration

        assert run(speculative=True) < run(speculative=False)

    def test_winner_only_counts_toward_shuffle(self):
        cluster = spec_cluster(speculative_slowdown=1.3)
        cluster.client.create_file("/in", 1 * GB, replication=2)
        slow = cluster.datanodes["node0"].disk
        slow.bandwidth = slow.bandwidth / 100
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=160 * MB, num_reduces=2)
        )
        cluster.run()
        total_shuffle = sum(job._map_output_by_node.values())
        assert total_shuffle == pytest.approx(160 * MB, rel=1e-6)


class TestDelayScheduling:
    def test_negative_wait_rejected(self):
        from repro.scheduler import ResourceManager
        from repro.sim import Environment

        with pytest.raises(ValueError):
            ResourceManager(Environment(), locality_wait=-1)

    def test_patient_scheduler_achieves_more_locality(self):
        def local_fraction(locality_wait):
            cluster = build_paper_testbed(
                num_nodes=8, replication=1, seed=2, locality_wait=locality_wait
            )
            cluster.client.create_file("/in", 2 * GB)
            job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
            cluster.run()
            reads = cluster.collector.block_reads_for_job(job.job_id)
            tasks = {
                t.task_id: t.node
                for t in cluster.collector.tasks_for_job(job.job_id, "map")
            }
            local = sum(1 for r in reads if tasks.get(r.task_id) == r.node)
            return local / len(reads)

        # With replication 1, non-local placement is common when impatient;
        # waiting must not reduce locality.
        assert local_fraction(6.0) >= local_fraction(0.0)

    def test_tasks_eventually_run_despite_waiting(self):
        cluster = build_paper_testbed(
            num_nodes=4, replication=1, seed=2, locality_wait=2.0
        )
        cluster.client.create_file("/in", 512 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        assert job.finished_at is not None
        assert len(cluster.collector.tasks_for_job(job.job_id, "map")) == 8


class TestSpeculationBudget:
    def test_max_fraction_caps_duplicates(self):
        engine = EngineConfig(
            speculative_execution=True,
            speculative_slowdown=1.1,
            speculative_max_fraction=0.1,
        )
        cluster = build_paper_testbed(
            num_nodes=4, replication=2, seed=11, engine_config=engine
        )
        cluster.client.create_file("/in", 2 * GB, replication=2)
        slow = cluster.datanodes["node0"].disk
        slow.bandwidth = slow.bandwidth / 100
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        assert job.speculative_attempts <= max(1, int(0.1 * job.num_maps))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(speculative_max_fraction=0)
        with pytest.raises(ValueError):
            EngineConfig(speculative_max_fraction=1.5)
