"""Edge cases in the MapReduce engine."""

import pytest

from repro import JobSpec, build_paper_testbed
from repro.storage import GB, MB


def cluster4(**kw):
    kw.setdefault("num_nodes", 4)
    kw.setdefault("replication", 2)
    return build_paper_testbed(**kw)


class TestDegenerateInputs:
    def test_empty_input_file_still_runs_one_map(self):
        cluster = cluster4()
        cluster.client.create_file("/empty", 0)
        job = cluster.engine.submit_job(JobSpec("j", ("/empty",)))
        cluster.run()
        assert job.num_maps == 1
        assert job.finished_at is not None

    def test_tiny_file_single_block(self):
        cluster = cluster4()
        cluster.client.create_file("/tiny", 1)
        job = cluster.engine.submit_job(JobSpec("j", ("/tiny",)))
        cluster.run()
        assert job.num_maps == 1

    def test_map_only_job_skips_reduce_stage(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=0, output_bytes=0, num_reduces=4)
        )
        cluster.run()
        assert job.num_reduces == 0
        assert not cluster.collector.reduce_tasks()

    def test_output_without_shuffle_still_reduces(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=0, output_bytes=32 * MB,
                    num_reduces=2)
        )
        cluster.run()
        assert job.num_reduces == 2
        assert cluster.namenode.exists(f"/out/{job.job_id}/part-0000")

    def test_zero_cpu_factor_job(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 128 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), map_cpu_factor=0.0, reduce_cpu_factor=0.0)
        )
        cluster.run()
        assert job.finished_at is not None

    def test_more_reduces_than_cluster_slots(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=64 * MB, num_reduces=100)
        )
        cluster.run()
        assert len(cluster.collector.reduce_tasks()) == 100


class TestConfigPlumb:
    def test_output_replication_respected(self):
        from repro.mapreduce import EngineConfig

        cluster = cluster4(engine_config=EngineConfig(output_replication=2))
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=32 * MB, output_bytes=32 * MB,
                    num_reduces=1)
        )
        cluster.run()
        part = f"/out/{job.job_id}/part-0000"
        block = cluster.namenode.file_blocks(part)[0]
        assert len(cluster.namenode.get_block_locations(block.block_id)) == 2

    def test_use_ignem_defaults_to_master_presence(self):
        cluster = cluster4(ignem=True)
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        assert job.use_ignem
        cluster.run()
        assert cluster.ignem_master.metrics.value("ignem.master.migration_requests") == 1

    def test_use_ignem_false_suppresses_migration(self):
        cluster = cluster4(ignem=True)
        cluster.client.create_file("/in", 64 * MB)
        cluster.engine.submit_job(JobSpec("j", ("/in",)), use_ignem=False)
        cluster.run()
        assert cluster.ignem_master.metrics.value("ignem.master.migration_requests") == 0


class TestMetricsConsistency:
    def test_every_map_produces_exactly_one_block_read(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 320 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        maps = cluster.collector.tasks_for_job(job.job_id, "map")
        reads = cluster.collector.block_reads_for_job(job.job_id)
        assert len(maps) == len(reads) == 5
        assert {r.task_id for r in reads} == {t.task_id for t in maps}

    def test_job_record_lead_time_matches_first_task(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 128 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        record = cluster.collector.job(job.job_id)
        first_start = min(
            t.start for t in cluster.collector.tasks_for_job(job.job_id)
        )
        assert record.first_task_start == pytest.approx(first_start)
        assert record.lead_time == pytest.approx(first_start - record.submitted_at)

    def test_task_record_input_bytes_sum_to_job_input(self):
        cluster = cluster4()
        cluster.client.create_file("/in", 200 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        maps = cluster.collector.tasks_for_job(job.job_id, "map")
        assert sum(t.input_bytes for t in maps) == pytest.approx(200 * MB)
