"""Tests for the MapReduce engine and job lifecycle."""

import pytest

from repro import JobSpec, build_paper_testbed
from repro.mapreduce import EngineConfig
from repro.storage import GB, MB


def small_cluster(**kwargs):
    kwargs.setdefault("num_nodes", 4)
    kwargs.setdefault("replication", 2)
    return build_paper_testbed(**kwargs)


class TestJobSpecValidation:
    def test_requires_input_paths(self):
        with pytest.raises(ValueError):
            JobSpec("empty", ())

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            JobSpec("bad", ("/f",), shuffle_bytes=-1)
        with pytest.raises(ValueError):
            JobSpec("bad", ("/f",), output_bytes=-1)

    def test_rejects_negative_reduces(self):
        with pytest.raises(ValueError):
            JobSpec("bad", ("/f",), num_reduces=-1)

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(task_startup_overhead=-1)
        with pytest.raises(ValueError):
            EngineConfig(map_cpu_bytes_per_sec=0)
        with pytest.raises(ValueError):
            EngineConfig(output_replication=0)


class TestJobExecution:
    def test_map_only_job_completes(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 128 * MB)
        job = cluster.engine.submit_job(
            JobSpec("maponly", ("/in",), num_reduces=0)
        )
        cluster.run()
        assert job.finished_at is not None
        assert job.num_maps == 2
        assert job.num_reduces == 0
        assert len(cluster.collector.tasks_for_job(job.job_id, "map")) == 2
        assert not cluster.collector.tasks_for_job(job.job_id, "reduce")

    def test_one_map_task_per_block(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 320 * MB)  # 5 blocks
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        assert job.num_maps == 5
        assert len(cluster.collector.block_reads_for_job(job.job_id)) == 5

    def test_multiple_input_files(self):
        cluster = small_cluster()
        cluster.client.create_file("/a", 64 * MB)
        cluster.client.create_file("/b", 128 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/a", "/b")))
        cluster.run()
        assert job.num_maps == 3
        assert job.input_bytes == 192 * MB

    def test_reduces_start_after_all_maps(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 256 * MB)
        job = cluster.engine.submit_job(
            JobSpec("j", ("/in",), shuffle_bytes=64 * MB, num_reduces=2)
        )
        cluster.run()
        maps = cluster.collector.tasks_for_job(job.job_id, "map")
        reduces = cluster.collector.tasks_for_job(job.job_id, "reduce")
        assert len(reduces) == 2
        last_map_end = max(t.end for t in maps)
        first_reduce_start = min(t.start for t in reduces)
        assert first_reduce_start >= last_map_end

    def test_job_record_written(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(JobSpec("named", ("/in",)))
        cluster.run()
        record = cluster.collector.job(job.job_id)
        assert record is not None
        assert record.name == "named"
        assert record.duration == pytest.approx(job.duration)
        assert record.lead_time > 0

    def test_job_output_files_created(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(
            JobSpec(
                "j", ("/in",), shuffle_bytes=32 * MB, output_bytes=16 * MB,
                num_reduces=2,
            )
        )
        cluster.run()
        for index in range(2):
            path = f"/out/{job.job_id}/part-{index:04d}"
            assert cluster.namenode.exists(path)
            assert cluster.namenode.get_file(path).nbytes == 8 * MB

    def test_duration_before_finish_raises(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 64 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        with pytest.raises(RuntimeError):
            _ = job.duration

    def test_unknown_input_path_raises(self):
        cluster = small_cluster()
        from repro.dfs import NameNodeError

        with pytest.raises(NameNodeError):
            cluster.engine.submit_job(JobSpec("j", ("/ghost",)))

    def test_extra_lead_time_counted_in_duration(self):
        base = small_cluster(seed=5)
        base.client.create_file("/in", 64 * MB)
        job_a = base.engine.submit_job(JobSpec("j", ("/in",)), extra_lead_time=0.0)
        base.run()

        delayed = small_cluster(seed=5)
        delayed.client.create_file("/in", 64 * MB)
        job_b = delayed.engine.submit_job(
            JobSpec("j", ("/in",)), extra_lead_time=10.0
        )
        delayed.run()
        assert job_b.duration >= job_a.duration + 5.0


class TestStorageEffects:
    def test_pinned_inputs_make_maps_faster(self):
        def run(pin):
            cluster = small_cluster(seed=3)
            cluster.client.create_file("/in", 640 * MB)
            if pin:
                cluster.pin_all_inputs()
            cluster.engine.submit_job(JobSpec("j", ("/in",)))
            cluster.run()
            return cluster.collector.mean_task_duration("map")

        assert run(pin=True) < run(pin=False) / 3

    def test_block_read_sources_reported(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 128 * MB)
        cluster.pin_all_inputs()
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        reads = cluster.collector.block_reads_for_job(job.job_id)
        assert all(r.source == "ram" for r in reads)

    def test_cold_reads_come_from_disk(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 128 * MB)
        job = cluster.engine.submit_job(JobSpec("j", ("/in",)))
        cluster.run()
        reads = cluster.collector.block_reads_for_job(job.job_id)
        assert all(r.source == "hdd" for r in reads)


class TestWorkload:
    def test_run_workload_submits_at_arrival_times(self):
        cluster = small_cluster()
        for index in range(3):
            cluster.client.create_file(f"/in{index}", 64 * MB)
        specs = [JobSpec(f"j{i}", (f"/in{i}",)) for i in range(3)]
        done = cluster.engine.run_workload(specs, [0.0, 5.0, 10.0])
        cluster.run(until=done)
        jobs = sorted(cluster.collector.jobs, key=lambda j: j.submitted_at)
        assert [j.submitted_at for j in jobs] == [0.0, 5.0, 10.0]

    def test_run_workload_length_mismatch_raises(self):
        cluster = small_cluster()
        cluster.client.create_file("/in", 64 * MB)
        with pytest.raises(ValueError):
            cluster.engine.run_workload([JobSpec("j", ("/in",))], [0.0, 1.0])

    def test_concurrent_jobs_all_complete(self):
        cluster = small_cluster()
        specs = []
        for index in range(5):
            cluster.client.create_file(f"/in{index}", 128 * MB)
            specs.append(JobSpec(f"j{i}" if False else f"j{index}", (f"/in{index}",)))
        done = cluster.engine.run_workload(specs, [0.0] * 5)
        cluster.run(until=done)
        assert len(cluster.collector.jobs) == 5
