"""Tests for the Hive layer: catalog, planner, hook, query execution."""

import pytest

from repro import build_paper_testbed
from repro.hive import (
    TPCDS_QUERIES,
    TPCDS_TABLES,
    HiveQuery,
    HiveSession,
    QueryStage,
    get_query,
    ignem_migration_hook,
    query_input_bytes,
)
from repro.storage import GB


class TestCatalog:
    def test_paper_named_queries_present(self):
        ids = {q.query_id for q in TPCDS_QUERIES}
        assert {"q3", "q82", "q25", "q29"} <= ids

    def test_queries_sorted_by_input_size(self):
        sizes = [query_input_bytes(q) for q in TPCDS_QUERIES]
        assert sizes == sorted(sizes)

    def test_q3_smallest_q29_largest(self):
        sizes = {q.query_id: query_input_bytes(q) for q in TPCDS_QUERIES}
        assert min(sizes, key=sizes.get) == "q3"
        assert max(sizes, key=sizes.get) == "q29"

    def test_get_query(self):
        assert get_query("q3").query_id == "q3"
        with pytest.raises(KeyError):
            get_query("q999")

    def test_every_query_references_known_tables(self):
        for query in TPCDS_QUERIES:
            for table in query.tables:
                assert table in TPCDS_TABLES

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            QueryStage(selectivity=0)
        with pytest.raises(ValueError):
            QueryStage(selectivity=0.5, shuffle_fraction=2)
        with pytest.raises(ValueError):
            QueryStage(selectivity=0.5, num_reduces=0)

    def test_query_validation(self):
        with pytest.raises(ValueError):
            HiveQuery("q", (), (QueryStage(selectivity=0.5),))
        with pytest.raises(ValueError):
            HiveQuery("q", ("t",), ())


class TestSession:
    def test_create_tables_idempotent(self):
        cluster = build_paper_testbed()
        session = HiveSession(cluster)
        session.create_tables(["date_dim"])
        session.create_tables(["date_dim"])  # no duplicate-create error
        assert cluster.namenode.exists("/tpcds/date_dim")

    def test_query_runs_all_stages(self):
        cluster = build_paper_testbed()
        session = HiveSession(cluster)
        query = get_query("q3")
        session.create_tables(query.tables)
        done = session.run_query(query)
        result = cluster.run(until=done)
        assert result.query_id == "q3"
        assert result.duration > 0
        # One MR job per stage.
        assert len(cluster.engine.jobs) == len(query.stages)

    def test_later_stages_read_intermediates(self):
        cluster = build_paper_testbed()
        session = HiveSession(cluster)
        query = get_query("q3")
        session.create_tables(query.tables)
        done = session.run_query(query)
        cluster.run(until=done)
        second_stage = cluster.engine.jobs[1]
        assert all(p.startswith("/out/") for p in second_stage.spec.input_paths)

    def test_compile_time_counted(self):
        cluster = build_paper_testbed()
        session = HiveSession(cluster, compile_time=5.0)
        query = get_query("q3")
        session.create_tables(query.tables)
        done = session.run_query(query)
        result = cluster.run(until=done)
        assert result.duration >= 5.0

    def test_negative_compile_time_rejected(self):
        cluster = build_paper_testbed()
        with pytest.raises(ValueError):
            HiveSession(cluster, compile_time=-1)

    def test_results_accumulate(self):
        cluster = build_paper_testbed()
        session = HiveSession(cluster)
        session.create_tables()

        def analyst():
            yield session.run_query(get_query("q3"))
            yield session.run_query(get_query("q7"))

        cluster.env.process(analyst(), name="analyst")
        cluster.run()
        assert [r.query_id for r in session.results] == ["q3", "q7"]


class TestIgnemHook:
    def test_hook_triggers_migration(self):
        cluster = build_paper_testbed(ignem=True)
        session = HiveSession(cluster, hook=ignem_migration_hook)
        query = get_query("q3")
        session.create_tables(query.tables)
        done = session.run_query(query)
        cluster.run(until=done)
        assert cluster.ignem_master.metrics.value("ignem.master.migration_requests") == 1
        assert cluster.collector.completed_migrations()

    def test_hook_accelerates_query(self):
        def run(with_hook):
            cluster = build_paper_testbed(seed=2, ignem=with_hook)
            session = HiveSession(
                cluster, hook=ignem_migration_hook if with_hook else None
            )
            query = get_query("q3")
            session.create_tables(query.tables)
            done = session.run_query(query)
            return cluster.run(until=done).duration

        assert run(with_hook=True) < run(with_hook=False)

    def test_explicit_evict_after_query(self):
        cluster = build_paper_testbed(ignem=True)
        session = HiveSession(cluster, hook=ignem_migration_hook)
        query = get_query("q3")
        session.create_tables(query.tables)
        done = session.run_query(query)
        cluster.run(until=done)
        cluster.run()
        # All migrated bytes released after the query's evict call.
        assert sum(s.migrated_bytes for s in cluster.ignem_master.slaves()) == 0
