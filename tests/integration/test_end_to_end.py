"""End-to-end integration tests across the whole stack."""

import pytest

from repro import IgnemConfig, JobSpec, build_paper_testbed
from repro.storage import GB, MB


class TestThreeConfigurations:
    """The paper's core comparison holds end-to-end on a fresh cluster."""

    def run(self, mode, seed=17, nbytes=1 * GB):
        cluster = build_paper_testbed(seed=seed, ignem=(mode == "ignem"))
        cluster.client.create_file("/in", nbytes)
        if mode == "ram":
            cluster.pin_all_inputs()
        job = cluster.engine.submit_job(
            JobSpec("scan", ("/in",), shuffle_bytes=32 * MB, num_reduces=2)
        )
        cluster.run()
        return job.duration, cluster

    def test_ordering_hdfs_ignem_ram(self):
        hdfs, _ = self.run("hdfs")
        ignem, _ = self.run("ignem")
        ram, _ = self.run("ram")
        assert hdfs > ignem
        assert ignem >= ram * 0.95

    def test_ignem_memory_is_clean_after_run(self):
        _, cluster = self.run("ignem")
        cluster.run()
        assert sum(s.migrated_bytes for s in cluster.ignem_master.slaves()) == 0
        assert all(
            s.reference_count() == 0 for s in cluster.ignem_master.slaves()
        )

    def test_determinism_across_identical_runs(self):
        first, _ = self.run("ignem", seed=5)
        second, _ = self.run("ignem", seed=5)
        assert first == second

    def test_seed_changes_placement(self):
        _, first = self.run("ignem", seed=5)
        _, second = self.run("ignem", seed=6)
        placement = lambda cluster: [
            tuple(cluster.namenode.get_block_locations(b.block_id))
            for b in cluster.namenode.file_blocks("/in")
        ]
        assert placement(first) != placement(second)


class TestConcurrentJobMix:
    def test_small_jobs_not_starved_by_large_ones(self):
        cluster = build_paper_testbed(seed=9, ignem=True)
        cluster.client.create_file("/big", 6 * GB)
        cluster.client.create_file("/small", 64 * MB)
        big = cluster.engine.submit_job(JobSpec("big", ("/big",), num_reduces=4))
        small = cluster.engine.submit_job(JobSpec("small", ("/small",)))
        cluster.run()
        assert small.duration < big.duration

    def test_smallest_job_first_migrates_small_job_fully(self):
        cluster = build_paper_testbed(seed=9, ignem=True)
        cluster.client.create_file("/big", 6 * GB)
        cluster.client.create_file("/small", 64 * MB)
        cluster.engine.submit_job(JobSpec("big", ("/big",), num_reduces=4))
        small = cluster.engine.submit_job(JobSpec("small", ("/small",)))
        cluster.run()
        small_reads = cluster.collector.block_reads_for_job(small.job_id)
        assert all(r.source == "ram" for r in small_reads)


class TestFailureInjection:
    def test_node_failure_mid_job_retries_tasks_elsewhere(self):
        """A whole-server failure mid-job: running containers die, the RM
        retries their tasks on surviving nodes, and the job completes."""
        # Plain HDFS so the maps are slow disk reads, guaranteed to
        # still be running when the server dies at t=8s.
        cluster = build_paper_testbed(seed=4)
        cluster.client.create_file("/in", 2 * GB)
        job = cluster.engine.submit_job(JobSpec("scan", ("/in",)))

        def killer(env):
            yield env.timeout(8.0)
            cluster.fail_node("node3")

        cluster.env.process(killer(cluster.env), name="killer")
        cluster.run()
        assert job.finished_at is not None
        assert cluster.rm.tasks_retried > 0
        # Retried attempts never land back on the dead node.
        late_tasks = [
            t for t in cluster.collector.tasks if t.start > 8.0
        ]
        assert all(t.node != "node3" for t in late_tasks)

    def test_master_failure_mid_workload_only_costs_performance(self):
        cluster = build_paper_testbed(seed=4, ignem=True)
        for index in range(4):
            cluster.client.create_file(f"/in{index}", 512 * MB)

        def chaos(env):
            yield env.timeout(6.0)
            cluster.ignem_master.fail()
            yield env.timeout(4.0)
            cluster.ignem_master.restart()

        cluster.env.process(chaos(cluster.env), name="chaos")
        jobs = [
            cluster.engine.submit_job(JobSpec(f"j{index}", (f"/in{index}",)))
            for index in range(4)
        ]
        cluster.run()
        for job in jobs:
            assert job.finished_at is not None

    def test_slave_restart_accepts_work_after_failure(self):
        cluster = build_paper_testbed(seed=4, ignem=True)
        cluster.client.create_file("/in", 512 * MB)
        slave = cluster.ignem_slaves["node0"]
        slave.fail()
        slave.datanode.restart()
        slave.restart()
        job = cluster.engine.submit_job(JobSpec("scan", ("/in",)))
        cluster.run()
        assert job.finished_at is not None


class TestBufferPressure:
    def test_tiny_buffer_still_completes_everything(self):
        cluster = build_paper_testbed(
            seed=4, ignem=True, ignem_config=IgnemConfig(buffer_capacity=128 * MB)
        )
        for index in range(3):
            cluster.client.create_file(f"/in{index}", 1 * GB)
        jobs = [
            cluster.engine.submit_job(JobSpec(f"j{index}", (f"/in{index}",)))
            for index in range(3)
        ]
        cluster.run()
        for job in jobs:
            assert job.finished_at is not None
        for slave in cluster.ignem_slaves.values():
            assert slave.migrated_bytes <= 128 * MB

    def test_do_not_harm_never_preempts_under_pressure(self):
        cluster = build_paper_testbed(
            seed=4, ignem=True, ignem_config=IgnemConfig(buffer_capacity=128 * MB)
        )
        for index in range(3):
            cluster.client.create_file(f"/in{index}", 1 * GB)
        for index in range(3):
            cluster.engine.submit_job(JobSpec(f"j{index}", (f"/in{index}",)))
        cluster.run()
        assert not any(
            e.reason == "preempted" for e in cluster.collector.evictions
        )


class TestSsdCluster:
    def test_ignem_harmless_and_active_on_ssd(self):
        """The paper argues migration matters on SSD too (Fig 1b): the
        RAM gap is smaller (7x instead of 160x) so gains shrink, but
        migration must at least do no meaningful harm and still run."""

        def run(mode):
            cluster = build_paper_testbed(
                seed=8, disk_kind="ssd", ignem=(mode == "ignem")
            )
            cluster.client.create_file("/in", 2 * GB)
            job = cluster.engine.submit_job(
                JobSpec("scan", ("/in",), map_cpu_factor=2.0)
            )
            cluster.run()
            return job.duration, cluster

        ignem_duration, ignem_cluster = run("ignem")
        hdfs_duration, _ = run("hdfs")
        assert ignem_duration <= hdfs_duration * 1.02
        assert ignem_cluster.collector.completed_migrations()
