"""Tests for cluster assembly and configuration."""

import pytest

from repro import Cluster, ClusterConfig, IgnemConfig, build_paper_testbed
from repro.storage import GB, MB


class TestClusterConfig:
    def test_defaults_mirror_the_paper_testbed(self):
        config = ClusterConfig()
        assert config.num_nodes == 8
        assert config.heartbeat_interval == 3.0
        assert config.block_size == 64 * MB
        assert config.replication == 3
        assert config.ram_capacity == 128 * GB

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(disk_kind="tape")

    def test_cluster_has_one_of_everything_per_node(self):
        cluster = Cluster(ClusterConfig(num_nodes=3))
        assert len(cluster.datanodes) == 3
        assert len(cluster.rm.nodes()) == 3
        assert cluster.node_names() == ["node0", "node1", "node2"]
        for name in cluster.node_names():
            assert cluster.network.has_node(name)

    def test_heartbeats_staggered_across_nodes(self):
        cluster = Cluster(ClusterConfig(num_nodes=4))
        offsets = [nm.heartbeat_offset for nm in cluster.rm.nodes()]
        assert len(set(offsets)) == 4

    def test_ssd_cluster_uses_ssd_devices(self):
        cluster = Cluster(ClusterConfig(num_nodes=2, disk_kind="ssd"))
        for datanode in cluster.datanodes.values():
            assert "ssd" in datanode.disk.name


class TestIgnemWiring:
    def test_enable_ignem_attaches_master_and_slaves(self):
        cluster = build_paper_testbed(num_nodes=3)
        master = cluster.enable_ignem()
        assert cluster.ignem_master is master
        assert cluster.client.ignem_master is master
        assert set(cluster.ignem_slaves) == set(cluster.node_names())
        assert len(master.slaves()) == 3

    def test_enable_ignem_twice_rejected(self):
        cluster = build_paper_testbed(num_nodes=2, ignem=True)
        with pytest.raises(RuntimeError):
            cluster.enable_ignem()

    def test_custom_ignem_config_propagates(self):
        config = IgnemConfig(buffer_capacity=1 * GB, policy="fifo")
        cluster = build_paper_testbed(num_nodes=2)
        cluster.enable_ignem(config)
        for slave in cluster.ignem_slaves.values():
            assert slave.config.buffer_capacity == 1 * GB
            assert slave.policy.name == "fifo"


class TestBaselineHelpers:
    def test_pin_all_inputs_pins_every_replica(self):
        cluster = build_paper_testbed(num_nodes=3, replication=2)
        cluster.client.create_file("/f", 128 * MB)
        cluster.pin_all_inputs()
        for block in cluster.namenode.file_blocks("/f"):
            for node in cluster.namenode.get_block_locations(block.block_id):
                assert cluster.datanodes[node].cache.is_pinned(block.block_id)

    def test_pin_selected_paths_only(self):
        cluster = build_paper_testbed(num_nodes=3, replication=2)
        cluster.client.create_file("/a", 64 * MB)
        cluster.client.create_file("/b", 64 * MB)
        cluster.pin_all_inputs(["/a"])
        block_a = cluster.namenode.file_blocks("/a")[0]
        block_b = cluster.namenode.file_blocks("/b")[0]
        pinned_a = any(
            dn.cache.is_pinned(block_a.block_id)
            for dn in cluster.datanodes.values()
        )
        pinned_b = any(
            dn.cache.is_pinned(block_b.block_id)
            for dn in cluster.datanodes.values()
        )
        assert pinned_a and not pinned_b

    def test_flush_caches_clears_pins(self):
        cluster = build_paper_testbed(num_nodes=2)
        cluster.client.create_file("/f", 64 * MB)
        cluster.pin_all_inputs()
        cluster.flush_caches()
        for datanode in cluster.datanodes.values():
            assert datanode.cache.used_bytes == 0


class TestSeeding:
    def test_same_seed_builds_identical_placement(self):
        def placements(seed):
            cluster = build_paper_testbed(seed=seed)
            cluster.client.create_file("/f", 640 * MB)
            return [
                tuple(cluster.namenode.get_block_locations(b.block_id))
                for b in cluster.namenode.file_blocks("/f")
            ]

        assert placements(3) == placements(3)
        assert placements(3) != placements(4)

    def test_subsystem_rngs_are_independent(self):
        cluster = build_paper_testbed(seed=3)
        assert cluster.rng.spawn("a").py.random() != cluster.rng.spawn(
            "b"
        ).py.random()
