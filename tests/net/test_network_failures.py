"""Failure semantics of the network: dead nodes fail fast, never hang."""

import pytest

from repro.net.network import Network, NetworkError
from repro.sim import Environment
from repro.storage import MB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    net = Network(env, bandwidth=100 * MB)
    for index in range(3):
        net.add_node(f"node{index}")
    return net


class TestMidTransferFailure:
    def test_failing_a_node_mid_transfer_fails_the_waiter(self, env, network):
        """Regression: a transfer whose endpoint dies must fail at the
        kill instant with NetworkError — not hang and not complete."""
        outcomes = []

        def reader(env):
            start = env.now
            try:
                # 100 MB at 100 MB/s: would finish at t=1.0.
                yield network.transfer("node0", "node1", 100 * MB)
                outcomes.append(("completed", env.now - start))
            except NetworkError:
                outcomes.append(("failed", env.now - start))

        def killer(env):
            yield env.timeout(0.25)
            network.fail_node("node1")

        env.process(reader(env), name="reader")
        env.process(killer(env), name="killer")
        env.run()

        assert outcomes == [("failed", 0.25)]
        assert network.transfers_failed >= 1

    def test_failing_the_source_also_fails_the_transfer(self, env, network):
        outcomes = []

        def reader(env):
            try:
                yield network.transfer("node0", "node1", 100 * MB)
                outcomes.append("completed")
            except NetworkError:
                outcomes.append("failed")

        def killer(env):
            yield env.timeout(0.25)
            network.fail_node("node0")

        env.process(reader(env), name="reader")
        env.process(killer(env), name="killer")
        env.run()
        assert outcomes == ["failed"]


class TestDownNodeRefusal:
    def test_new_transfer_to_down_node_fails_deterministically(self, env, network):
        network.fail_node("node2")
        outcomes = []

        def reader(env):
            start = env.now
            try:
                yield network.transfer("node0", "node2", 1 * MB)
            except NetworkError:
                outcomes.append(env.now - start)

        env.process(reader(env), name="reader")
        env.run()
        # Refused on the spot: no timeout, no hang.
        assert outcomes == [0.0]

    def test_restore_brings_the_node_back(self, env, network):
        network.fail_node("node2")
        network.restore_node("node2")
        assert not network.node_is_down("node2")
        outcomes = []

        def reader(env):
            yield network.transfer("node0", "node2", 1 * MB)
            outcomes.append(env.now)

        env.process(reader(env), name="reader")
        env.run()
        assert outcomes == [pytest.approx(1 * MB / (100 * MB))]


class TestFaultHook:
    def test_dropped_message_fails_after_detection_timeout(self, env, network):
        network.fault_hook = lambda src, dst, nbytes: (True, 0.0)
        outcomes = []

        def reader(env):
            try:
                yield network.transfer("node0", "node1", 1 * MB)
            except NetworkError:
                outcomes.append(env.now)

        env.process(reader(env), name="reader")
        env.run()
        assert outcomes == [pytest.approx(network.loss_detect_timeout)]

    def test_extra_delay_slows_but_delivers(self, env, network):
        network.fault_hook = lambda src, dst, nbytes: (False, 0.5)
        outcomes = []

        def reader(env):
            yield network.transfer("node0", "node1", 1 * MB)
            outcomes.append(env.now)

        env.process(reader(env), name="reader")
        env.run()
        assert outcomes == [pytest.approx(0.5 + 1 * MB / (100 * MB))]

    def test_clean_path_without_hook_is_undisturbed(self, env, network):
        outcomes = []

        def reader(env):
            yield network.transfer("node0", "node1", 1 * MB)
            outcomes.append(env.now)

        env.process(reader(env), name="reader")
        env.run()
        assert outcomes == [pytest.approx(1 * MB / (100 * MB))]
