"""Tests for the datacenter network model."""

import pytest

from repro.net import Network
from repro.net.network import TEN_GBPS
from repro.sim import Environment
from repro.storage import MB


def run_transfer(env, network, src, dst, nbytes):
    times = {}

    def proc(env):
        times["start"] = env.now
        yield network.transfer(src, dst, nbytes)
        times["end"] = env.now

    env.process(proc(env))
    env.run()
    return times["end"] - times["start"]


class TestTransfers:
    def test_duration_matches_nic_bandwidth(self):
        env = Environment()
        network = Network(env, bandwidth=100 * MB)
        network.add_node("a")
        network.add_node("b")
        assert run_transfer(env, network, "a", "b", 100 * MB) == pytest.approx(1.0)

    def test_loopback_is_free(self):
        env = Environment()
        network = Network(env)
        network.add_node("a")
        assert run_transfer(env, network, "a", "a", 1000 * MB) == 0.0
        assert network.nic("a").bytes_moved == 0.0

    def test_concurrent_flows_share_nic(self):
        env = Environment()
        network = Network(env, bandwidth=100 * MB)
        for name in ("a", "b", "c"):
            network.add_node(name)
        ends = {}

        def flow(env, dst):
            yield network.transfer("a", dst, 100 * MB)
            ends[dst] = env.now

        env.process(flow(env, "b"))
        env.process(flow(env, "c"))
        env.run()
        # Two flows share node a's egress NIC: each takes ~2s.
        assert ends["b"] == pytest.approx(2.0)
        assert ends["c"] == pytest.approx(2.0)

    def test_independent_pairs_do_not_interfere(self):
        env = Environment()
        network = Network(env, bandwidth=100 * MB)
        for name in ("a", "b", "c", "d"):
            network.add_node(name)
        ends = {}

        def flow(env, src, dst):
            yield network.transfer(src, dst, 100 * MB)
            ends[(src, dst)] = env.now

        env.process(flow(env, "a", "b"))
        env.process(flow(env, "c", "d"))
        env.run()
        assert ends[("a", "b")] == pytest.approx(1.0)
        assert ends[("c", "d")] == pytest.approx(1.0)

    def test_default_bandwidth_is_10gbps(self):
        env = Environment()
        network = Network(env)
        network.add_node("a")
        network.add_node("b")
        elapsed = run_transfer(env, network, "a", "b", TEN_GBPS)
        assert elapsed == pytest.approx(1.0)


class TestTopology:
    def test_unknown_node_raises(self):
        env = Environment()
        network = Network(env)
        with pytest.raises(KeyError):
            network.nic("ghost")
        network.add_node("a")
        with pytest.raises(KeyError):
            network.transfer("a", "ghost", 1)

    def test_add_node_idempotent(self):
        env = Environment()
        network = Network(env)
        first = network.add_node("a")
        second = network.add_node("a")
        assert first is second

    def test_has_node(self):
        env = Environment()
        network = Network(env)
        network.add_node("a")
        assert network.has_node("a")
        assert not network.has_node("b")

    def test_invalid_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Network(env, bandwidth=0)

    def test_negative_bytes_rejected(self):
        env = Environment()
        network = Network(env)
        network.add_node("a")
        network.add_node("b")
        with pytest.raises(ValueError):
            network.transfer("a", "b", -1)
