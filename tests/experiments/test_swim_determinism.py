"""Seeded SWIM runs must be bit-for-bit repeatable in one process.

Every figure and table is derived from `run_swim` outputs, so any hidden
global state (RNG reuse, iteration-order dependence, leftover module
state) would silently skew the reproduced numbers.  Running the same
seeded configuration twice in-process and comparing per-job outcomes
catches that class of bug.  Job ids are excluded from the comparison on
purpose: `MRJob._ids` is a process-global counter, so ids differ between
in-process runs while the physics must not.
"""

from repro.experiments.swim_runs import clear_cache, run_swim


def _signature(run):
    jobs = run.cluster.collector.jobs
    return [
        (
            record.name,
            record.submitted_at,
            record.first_task_start,
            record.end,
            record.num_maps,
            record.num_reduces,
        )
        for record in jobs
    ]


def test_seeded_swim_run_is_deterministic():
    clear_cache()
    try:
        first = run_swim("ignem", num_jobs=30)
        first_signature = _signature(first)
        first_reads = len(first.cluster.collector.block_reads)
        clear_cache()
        second = run_swim("ignem", num_jobs=30)
        assert _signature(second) == first_signature
        assert len(second.cluster.collector.block_reads) == first_reads
    finally:
        # Leave no 30-job entries behind for other tests sharing the cache.
        clear_cache()
