"""Tests for the batch report runner and the CLI."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.experiments import clear_cache
from repro.experiments.report import available_experiments, run_experiments


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestReportRunner:
    def test_available_experiments_cover_all_tables_and_figures(self):
        names = available_experiments()
        for expected in (
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table1",
            "table2",
            "table3",
            "ablation-priority",
        ):
            assert expected in names

    def test_run_writes_txt_json_and_series(self, tmp_path):
        results = run_experiments(["fig3"], out_dir=tmp_path)
        assert "fig3" in results
        assert (tmp_path / "fig3.txt").exists()
        payload = json.loads((tmp_path / "fig3.json").read_text())
        assert payload["sufficient_fraction"] == pytest.approx(0.81, abs=0.03)
        series = (tmp_path / "fig3_series.csv").read_text().splitlines()
        assert series[0] == "read_over_lead_ratio,cdf"
        assert len(series) > 10

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_fig1_fig2_share_one_run(self, tmp_path):
        results = run_experiments(["fig1", "fig2"], out_dir=tmp_path)
        # The shared runner executes once and reports under the first name.
        assert list(results) == ["fig1"]
        assert (tmp_path / "fig1_fig2.txt").exists()
        assert (tmp_path / "fig2_series.csv").exists()


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig8" in out

    def test_run_command_writes_results(self, tmp_path, capsys):
        code = main(["run", "fig3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert (tmp_path / "fig3.json").exists()

    def test_run_unknown_experiment_fails_cleanly(self, tmp_path, capsys):
        code = main(["run", "fig99", "--out", str(tmp_path)])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_command_prints_hot_functions(self, capsys):
        from repro.experiments.swim_runs import clear_cache

        code = main(["profile", "--num-jobs", "5", "--top", "5"])
        clear_cache()  # drop the 5-job entry so other tests never see it
        assert code == 0
        out = capsys.readouterr().out
        assert "function calls" in out
        assert "tottime" in out

    def test_shared_parent_parser_covers_out_and_seed(self):
        parser = build_parser()
        for argv in (
            ["run", "fig3", "--out", "o", "--seed", "7"],
            ["all", "--out", "o", "--seed", "7"],
            ["trace", "swim-ignem", "--out", "o", "--seed", "7"],
            ["profile", "--out", "o", "--seed", "7"],
            ["chaos", "--out", "o", "--seed", "7"],
        ):
            args = parser.parse_args(argv)
            assert args.out == "o"
            assert args.seed == 7

    def test_trace_command_writes_validated_trace(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "swim-ignem",
                "--out",
                str(tmp_path),
                "--num-jobs",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out
        trace = tmp_path / "swim-ignem_ignem.trace.jsonl"
        assert trace.exists()
        assert (tmp_path / "swim-ignem_ignem.metrics.json").exists()
        from repro.obs import validate_trace

        assert validate_trace(trace) == []

    def test_trace_unknown_experiment_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace", "fig99", "--out", str(tmp_path)])
        assert code == 2
        assert "not traceable" in capsys.readouterr().err

    def test_run_with_trace_flags_writes_swim_traces(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "fig7",
                "--out",
                str(tmp_path / "out"),
                "--trace",
                str(tmp_path / "traces"),
                "--metrics-out",
                str(tmp_path / "metrics"),
            ]
        )
        assert code == 0
        traces = list((tmp_path / "traces").glob("*.trace.jsonl"))
        metrics = list((tmp_path / "metrics").glob("*.metrics.json"))
        assert traces and metrics
        from repro.experiments import swim_runs
        from repro.obs import validate_trace

        assert swim_runs._OBS_FACTORY is None  # restored after the run
        for trace in traces:
            assert validate_trace(trace) == []
