"""Tests for the experiment runners (small-scale smoke + shape checks)."""

import pytest

from repro.experiments import (
    ablation_priority,
    clear_cache,
    fig5_size_bins,
    fig6_block_read_cdf,
    fig7_memory_footprint,
    fig8_wordcount_sweep,
    fig9_hive_study,
    make_comparison,
    run_block_read_study,
    run_leadtime_study,
    run_query_once,
    run_sort_once,
    run_swim,
    run_utilization_study,
    run_wordcount_point,
    table1_job_duration,
    table2_task_duration,
)
from repro.experiments.common import MODES
from repro.hive import get_query
from repro.storage import GB


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestComparisonTable:
    def test_speedups_computed_against_hdfs(self):
        table = make_comparison(
            "t", "s", {"hdfs": 10.0, "ignem": 8.0, "ram": 5.0}
        )
        assert table.speedup("hdfs") == 0.0
        assert table.speedup("ignem") == pytest.approx(0.2)
        assert table.speedup("ram") == pytest.approx(0.5)
        assert table.fraction_of_upper_bound() == pytest.approx(0.4)

    def test_format_contains_paper_column(self):
        table = make_comparison(
            "Title", "s", {"hdfs": 10.0, "ignem": 8.0, "ram": 5.0},
            paper_values={"hdfs": 14.4},
        )
        text = table.format()
        assert "Title" in text
        assert "Paper" in text
        assert "14.40" in text

    def test_unknown_mode_raises(self):
        table = make_comparison("t", "s", {"hdfs": 10.0, "ignem": 8.0})
        with pytest.raises(KeyError):
            table.value("ssd")


class TestSwimExperimentsSmall:
    """Small SWIM runs (40 jobs) exercising every runner quickly."""

    NUM_JOBS = 40

    def test_run_swim_caches(self):
        first = run_swim("hdfs", seed=0, num_jobs=self.NUM_JOBS)
        second = run_swim("hdfs", seed=0, num_jobs=self.NUM_JOBS)
        assert first is second

    def test_run_swim_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_swim("gpu", num_jobs=self.NUM_JOBS)

    def test_table1_ordering(self):
        table = table1_job_duration(seed=0, num_jobs=self.NUM_JOBS)
        assert table.value("hdfs") >= table.value("ignem") >= table.value("ram")

    def test_table2_ordering(self):
        table = table2_task_duration(seed=0, num_jobs=self.NUM_JOBS)
        assert table.value("hdfs") > table.value("ignem") > table.value("ram")

    def test_fig5_bins_have_jobs(self):
        bins = fig5_size_bins(seed=0, num_jobs=self.NUM_JOBS)
        assert bins
        assert sum(b.num_jobs for b in bins) == self.NUM_JOBS

    def test_fig6_fractions_valid(self):
        result = fig6_block_read_cdf(seed=0, num_jobs=self.NUM_JOBS)
        assert 0 <= result.migrated_fraction <= 1
        assert len(result.hdfs_durations) == len(result.ignem_durations)

    def test_fig7_footprints_positive(self):
        result = fig7_memory_footprint(seed=0, num_jobs=self.NUM_JOBS)
        assert result.ignem_mean_bytes > 0
        assert result.hypothetical_mean_bytes > 0

    def test_ablation_priority_runs(self):
        result = ablation_priority(seed=0, num_jobs=self.NUM_JOBS)
        assert result.hdfs_mean > 0
        assert result.priority_mean > 0
        assert result.fifo_mean > 0


class TestStandaloneExperiments:
    def test_sort_modes_ordered(self):
        durations = {
            mode: run_sort_once(mode, seed=0, input_bytes=4 * GB) for mode in MODES
        }
        assert durations["hdfs"] > durations["ram"]
        assert durations["ignem"] < durations["hdfs"]

    def test_sort_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_sort_once("tape", input_bytes=1 * GB)

    def test_wordcount_point_variants(self):
        hdfs = run_wordcount_point("hdfs", 1, seed=0)
        ignem = run_wordcount_point("ignem", 1, seed=0)
        plus10 = run_wordcount_point("ignem+10s", 1, seed=0)
        assert ignem < hdfs
        assert plus10 > ignem  # the sleep dominates at 1GB

    def test_wordcount_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            run_wordcount_point("ignem+99s", 1)

    def test_fig8_sweep_small(self):
        sweep = fig8_wordcount_sweep(seed=0, sizes_gb=(1, 2))
        assert sweep.sizes() == [1.0, 2.0]
        assert sweep.relative(1.0, "hdfs") == 1.0
        with pytest.raises(KeyError):
            sweep.duration(99, "hdfs")


class TestHiveExperiment:
    def test_single_query_modes(self):
        query = get_query("q3")
        hdfs, map_frac = run_query_once(query, "hdfs", seed=0)
        ignem, _ = run_query_once(query, "ignem", seed=0)
        assert ignem < hdfs
        assert 0.5 <= map_frac <= 1.0

    def test_study_subset(self):
        study = fig9_hive_study(
            seed=0,
            queries=[get_query("q3"), get_query("q12")],
            modes=("hdfs", "ignem"),
        )
        assert len(study.queries) == 2
        assert study.mean_ignem_speedup() > 0
        assert study.by_input_size()[0].query_id == "q3"

    def test_run_query_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_query_once(get_query("q3"), "floppy")


class TestSectionTwoStudies:
    def test_leadtime_study_small(self):
        study = run_leadtime_study(seed=0, num_jobs=2000)
        assert 0.7 <= study.sufficient_fraction <= 0.9
        assert "Fig 3" in study.format()

    def test_utilization_study_small(self):
        study = run_utilization_study(seed=0, num_servers=5, duration=6 * 3600)
        assert 0.0 < study.overall_mean < 0.15
        assert "Fig 4" in study.format()

    def test_block_read_study_small(self):
        study = run_block_read_study(seed=0, num_jobs=15)
        assert study.read_ratio("hdd") > study.read_ratio("ssd") > 1
        assert "Fig 1/2" in study.format()
