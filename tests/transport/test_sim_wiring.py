"""The cluster's SimTransport wiring: endpoints, routing, determinism.

The refactor's contract in one suite: every cross-node interaction is
addressable as a transport endpoint, client requests travel as protocol
messages, and none of it changes what the simulator computes — the
commands slaves receive are the *original* objects (identity, not a
codec copy), the DST command tap still fires, and the ``transport.*``
metrics stay completely absent until explicitly enabled.
"""

from repro import IgnemConfig, ObservabilityConfig, build_paper_testbed
from repro.storage import MB
from repro.transport.messages import EvictFilesRequest, MigrateFilesRequest

from tests.fixtures import make_ignem_cluster


def _recording_transport(cluster):
    """Wrap ``transport.request`` to log (endpoint, message) pairs."""
    calls = []
    original = cluster.transport.request

    def recording(endpoint, message):
        calls.append((endpoint, message))
        return original(endpoint, message)

    cluster.transport.request = recording
    return calls


class TestEndpointRegistration:
    def test_dfs_endpoints_registered_at_construction(self):
        cluster = build_paper_testbed(num_nodes=3, seed=0)
        endpoints = cluster.transport.endpoints()
        assert "namenode" in endpoints
        for name in cluster.node_names():
            assert f"datanode/{name}" in endpoints

    def test_ignem_endpoints_registered_on_enable(self):
        cluster = make_ignem_cluster(num_nodes=3)
        endpoints = cluster.transport.endpoints()
        assert "master" in endpoints
        for name in cluster.node_names():
            assert f"slave/{name}" in endpoints

    def test_added_datanode_gets_endpoints(self):
        cluster = make_ignem_cluster(num_nodes=3)
        name = cluster.add_datanode().name
        endpoints = cluster.transport.endpoints()
        assert f"datanode/{name}" in endpoints
        assert f"slave/{name}" in endpoints


class TestClientRouting:
    def test_migrate_travels_as_protocol_message(self):
        cluster = make_ignem_cluster(num_nodes=3)
        calls = _recording_transport(cluster)
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.client.migrate(["/f"], "j1")
        cluster.client.evict(["/f"], "j1")
        kinds = [(ep, type(msg).__name__) for ep, msg in calls]
        assert ("master", "MigrateFilesRequest") in kinds
        assert ("master", "EvictFilesRequest") in kinds
        migrate = next(m for _, m in calls if isinstance(m, MigrateFilesRequest))
        assert migrate.paths == ("/f",) and migrate.job_id == "j1"
        evict = next(m for _, m in calls if isinstance(m, EvictFilesRequest))
        assert evict.paths == ("/f",)

    def test_migration_still_completes_end_to_end(self):
        cluster = make_ignem_cluster(num_nodes=3)
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.client.migrate(["/f"], "j1")
        cluster.run()
        total = sum(s.migrated_bytes for s in cluster.ignem_master.slaves())
        assert total == 128 * MB

    def test_master_shim_bypasses_transport(self):
        """Experiments swap ``client.ignem_master`` for a routing shim
        (e.g. the tier3 demo's size router); the client must call the
        shim directly, not tunnel past it to the real master."""
        cluster = make_ignem_cluster(num_nodes=3)
        calls = _recording_transport(cluster)

        class Shim:
            def __init__(self):
                self.migrations = []

            def request_migration(self, paths, job_id, implicit_eviction=False):
                self.migrations.append((tuple(paths), job_id))

            def request_eviction(self, paths, job_id):
                pass

        shim = cluster.client.ignem_master = Shim()
        cluster.client.migrate(["/f"], "j1")
        assert shim.migrations == [(("/f",), "j1")]
        assert calls == []


class TestDeliveryIdentity:
    def test_slaves_receive_original_command_objects(self):
        """SimTransport must hand over the very objects the master
        built: work-item ``seq`` comes from a global counter, so a
        codec round-trip would consume counter values and perturb
        priority tie-breaks across the whole run."""
        tapped = []
        cluster = make_ignem_cluster(num_nodes=3)
        cluster.ignem_master.command_tap = (
            lambda node, kind, command, slave: tapped.append((kind, command))
        )
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.client.migrate(["/f"], "j1")
        assert tapped and all(kind == "migrate" for kind, _ in tapped)
        queued = [
            entry.item.item
            for slave in cluster.ignem_master.slaves()
            for queue in slave.tier_queues.values()
            for entry in queue.items
            if entry.alive
        ]
        assert queued
        tapped_items = [
            item for _, command in tapped for item in command.items
        ]
        for queued_item in queued:
            assert any(queued_item is item for item in tapped_items)


class TestTransportMetrics:
    def _run_once(self, transport_metrics):
        cluster = build_paper_testbed(
            num_nodes=3,
            seed=0,
            observability=ObservabilityConfig(
                transport_metrics=transport_metrics
            ),
        )
        cluster.enable_ignem(IgnemConfig(rpc_latency=0.0))
        cluster.client.create_file("/f", 128 * MB)
        cluster.rm.register_job("j1")
        cluster.client.migrate(["/f"], "j1")
        cluster.run()
        return cluster

    def test_counters_absent_by_default(self):
        cluster = self._run_once(transport_metrics=False)
        assert not cluster.transport.instrumented
        assert not any(
            name.startswith("transport.") for name in cluster.obs.registry.names()
        )

    def test_counters_present_when_enabled(self):
        cluster = self._run_once(transport_metrics=True)
        assert cluster.transport.instrumented
        counters = cluster.obs.registry.snapshot()["counters"]
        assert counters["transport.messages_sent"] > 0
        assert counters["transport.bytes_total"] > 0

    def test_instrumentation_does_not_change_results(self):
        plain = self._run_once(transport_metrics=False)
        counted = self._run_once(transport_metrics=True)
        total = lambda c: sum(  # noqa: E731
            s.migrated_bytes for s in c.ignem_master.slaves()
        )
        assert total(plain) == total(counted)
        assert plain.env.now == counted.env.now
