"""Transport conformance: both backends honor the same contract.

Each test runs against :class:`SimTransport` (direct calls) and
:class:`AsyncioTransport` (real TCP on localhost) through a thin sync
harness, asserting the guarantees callers rely on: per-caller delivery
order, request/reply matching, one-way sends, endpoint lifecycle, and
``NetworkError`` for anything unreachable.
"""

import asyncio
import threading

import pytest

from repro.net import NetworkError
from repro.transport import AsyncioTransport, SimTransport
from repro.transport.messages import (
    Ack,
    BlockReadReply,
    BlockReadRequest,
    BlockWriteReply,
    BlockWriteRequest,
    HeartbeatMsg,
)


class SimHarness:
    """SimTransport behind the common sync facade."""

    name = "sim"

    def __init__(self):
        self.transport = SimTransport()

    def serve(self, name, handler):
        self.transport.register(name, handler)

    def stop(self, name):
        self.transport.deregister(name)

    def request(self, endpoint, message):
        return self.transport.request(endpoint, message)

    def send(self, endpoint, message):
        self.transport.send(endpoint, message)

    def close(self):
        pass


class AioHarness:
    """AsyncioTransport driven from a background event loop thread."""

    name = "aio"

    def __init__(self):
        self.transport = AsyncioTransport(reply_timeout=10.0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout=30
        )

    def serve(self, name, handler):
        self._call(self.transport.serve(name, handler))

    def stop(self, name):
        self._call(self.transport.stop(name))

    def request(self, endpoint, message):
        return self._call(self.transport.request(endpoint, message))

    def send(self, endpoint, message):
        self._call(self.transport.send(endpoint, message))

    def close(self):
        self._call(self.transport.close())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5)


@pytest.fixture(params=[SimHarness, AioHarness], ids=["sim", "aio"])
def harness(request):
    h = request.param()
    yield h
    h.close()


class TestRequestReply:
    def test_reply_reaches_the_right_caller(self, harness):
        harness.serve(
            "echo", lambda msg: BlockReadReply(ok=True, data=msg.block_id.encode())
        )
        for block_id in ("blk-a", "blk-b", "blk-ü"):
            reply = harness.request("echo", BlockReadRequest(block_id))
            assert reply.data.decode() == block_id

    def test_typed_messages_cross_intact(self, harness):
        received = []

        def handler(msg):
            received.append(msg)
            return BlockWriteReply(ok=True, stored=("n1",))

        harness.serve("dn", handler)
        request = BlockWriteRequest(
            block_id="blk-0", path="/f", index=0, data=b"\x00\xffpayload",
            pipeline=("n2", "n3"),
        )
        reply = harness.request("dn", request)
        assert reply == BlockWriteReply(ok=True, stored=("n1",))
        assert received == [request]
        assert isinstance(received[0].pipeline, tuple)

    def test_distinct_endpoints_are_independent(self, harness):
        harness.serve("a", lambda msg: Ack(True))
        harness.serve("b", lambda msg: Ack(False))
        assert harness.request("a", BlockReadRequest("x")).ok is True
        assert harness.request("b", BlockReadRequest("x")).ok is False


class TestOrdering:
    def test_sends_from_one_caller_arrive_in_order(self, harness):
        seen = []

        def handler(msg):
            if isinstance(msg, HeartbeatMsg):
                seen.append(msg.seq)
                return None
            return Ack(True)

        harness.serve("nn", handler)
        for seq in range(20):
            harness.send("nn", HeartbeatMsg(node="n1", seq=seq, tier_blocks={}))
        # Per-connection FIFO: the probe's reply means every earlier
        # one-way send on this connection has been handled.
        harness.request("nn", BlockReadRequest("probe"))
        assert seen == list(range(20))

    def test_send_then_request_ordered(self, harness):
        """A request issued after one-way sends observes their effects
        (per-connection FIFO)."""
        seen = []

        def handler(msg):
            if isinstance(msg, HeartbeatMsg):
                seen.append(msg.seq)
                return None
            return Ack(len(seen) == 3)

        harness.serve("nn", handler)
        for seq in range(3):
            harness.send("nn", HeartbeatMsg(node="n1", seq=seq, tier_blocks={}))
        assert harness.request("nn", BlockReadRequest("probe")).ok


class TestEndpointLifecycle:
    def test_unknown_endpoint_raises_network_error(self, harness):
        with pytest.raises(NetworkError, match="not registered"):
            harness.request("nowhere", BlockReadRequest("x"))

    def test_stopped_endpoint_raises_network_error(self, harness):
        harness.serve("dn", lambda msg: Ack(True))
        assert harness.request("dn", BlockReadRequest("x")).ok
        harness.stop("dn")
        with pytest.raises(NetworkError):
            harness.request("dn", BlockReadRequest("x"))

    def test_reregistered_endpoint_serves_again(self, harness):
        harness.serve("dn", lambda msg: Ack(True))
        harness.stop("dn")
        harness.serve("dn", lambda msg: Ack(False))
        assert harness.request("dn", BlockReadRequest("x")).ok is False

    def test_empty_endpoint_name_rejected(self, harness):
        with pytest.raises(ValueError):
            harness.transport.register("", lambda msg: None)


class TestAsyncioSpecifics:
    """Contract points only the socket backend can exhibit."""

    def test_concurrent_requests_match_replies_by_mid(self):
        harness = AioHarness()
        try:

            async def handler(msg):
                # Slow replies finish last: forces out-of-order completion
                # so mid-matching (not arrival order) must pair them up.
                await asyncio.sleep(0.05 if msg.block_id == "slow" else 0)
                return BlockReadReply(ok=True, data=msg.block_id.encode())

            harness.serve("dn2", handler)

            async def fan_out():
                return await asyncio.gather(
                    *(
                        harness.transport.request(
                            "dn2", BlockReadRequest(block_id)
                        )
                        for block_id in ("slow", "fast-1", "fast-2")
                    )
                )

            replies = harness._call(fan_out())
            assert [r.data.decode() for r in replies] == [
                "slow",
                "fast-1",
                "fast-2",
            ]
        finally:
            harness.close()

    def test_handler_crash_surfaces_as_network_error(self):
        harness = AioHarness()
        try:

            def handler(msg):
                raise RuntimeError("boom")

            harness.serve("dn3", handler)
            with pytest.raises(NetworkError, match="boom"):
                harness.request("dn3", BlockReadRequest("x"))
            # The connection survives a handler error.
            harness.transport.register(
                "dn3", lambda msg: Ack(True),
            )
        finally:
            harness.close()

    def test_directory_lists_served_endpoints(self):
        harness = AioHarness()
        try:
            harness.serve("dn4", lambda msg: Ack(True))
            host, port = harness.transport.directory["dn4"]
            assert host == "127.0.0.1" and port > 0
        finally:
            harness.close()
