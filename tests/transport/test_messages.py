"""Property suite for the wire codec: every message type round-trips.

``decode(encode(msg)) == msg`` is the codec's whole contract — the
asyncio backend and the sim/real differential both lean on it.  The
strategies deliberately stress the awkward corners: unicode block ids
and paths, non-ASCII tenant labels, binary block payloads, empty
tuples, nested commands carrying explicit ``seq`` values.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.commands import EvictCommand, MigrateCommand, MigrationWorkItem
from repro.dfs.blocks import Block
from repro.transport.messages import (
    PROTOCOL_VERSION,
    Ack,
    BlockPlacement,
    BlockReadReply,
    BlockReadRequest,
    BlockWriteReply,
    BlockWriteRequest,
    CodecError,
    CreateFileReply,
    CreateFileRequest,
    DemoteBlocksRequest,
    EvictFilesRequest,
    EvictMsg,
    FailoverMsg,
    FileInfoReply,
    FileInfoRequest,
    HeartbeatMsg,
    LocationsReply,
    LocationsRequest,
    MESSAGE_TYPES,
    MigrateFilesRequest,
    MigrateMsg,
    PromoteBlocksRequest,
    ReplicaPipelineMsg,
    decode,
    encode,
)

# -- strategies --------------------------------------------------------------------

#: Identifiers exercise the full unicode plane minus surrogates (JSON
#: cannot carry lone surrogates).
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1,
    max_size=24,
)
_tiers = st.sampled_from(["mem", "ssd", "hdd", "disk", "память"])
_tenants = st.one_of(st.just("default"), _text)
_sizes = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)
_times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
_names = st.lists(_text, max_size=4).map(tuple)
_payloads = st.binary(max_size=256)


@st.composite
def blocks(draw):
    return Block(
        block_id=draw(_text),
        path="/" + draw(_text),
        index=draw(st.integers(0, 64)),
        nbytes=draw(_sizes),
    )


@st.composite
def work_items(draw):
    # seq passed explicitly: drawing from the strategy must never
    # consume the global sequence counter (same rule as the decoder).
    return MigrationWorkItem(
        block=draw(blocks()),
        job_id=draw(_text),
        job_input_bytes=draw(_sizes),
        job_submitted_at=draw(_times),
        implicit_eviction=draw(st.booleans()),
        order_hint=draw(st.integers(0, 1000)),
        dst_tier=draw(_tiers),
        src_tier=draw(st.none() | _tiers),
        seq=draw(st.integers(0, 10**9)),
        received_at=draw(_times),
    )


def _placements():
    return st.builds(
        BlockPlacement,
        block_id=_text,
        index=st.integers(0, 64),
        nbytes=_sizes,
        nodes=_names,
    )


#: One strategy per message type; the suite fails if a new message type
#: is added without one (see test_every_message_type_covered).
MESSAGE_STRATEGIES = {
    Ack: st.builds(Ack, ok=st.booleans()),
    MigrateMsg: st.builds(
        MigrateMsg,
        command=st.builds(
            MigrateCommand,
            job_id=_text,
            items=st.lists(work_items(), max_size=3).map(tuple),
        ),
    ),
    EvictMsg: st.builds(
        EvictMsg,
        command=st.builds(
            EvictCommand,
            job_id=_text,
            block_ids=_names,
        ),
    ),
    MigrateFilesRequest: st.builds(
        MigrateFilesRequest,
        paths=_names,
        job_id=_text,
        implicit_eviction=st.booleans(),
        dst_tier=st.none() | _tiers,
    ),
    EvictFilesRequest: st.builds(
        EvictFilesRequest, paths=_names, job_id=_text
    ),
    PromoteBlocksRequest: st.builds(
        PromoteBlocksRequest,
        blocks=st.lists(blocks(), max_size=3).map(tuple),
        owner=_tenants,
        dst_tier=st.none() | _tiers,
    ),
    DemoteBlocksRequest: st.builds(
        DemoteBlocksRequest, block_ids=_names, owner=_tenants
    ),
    HeartbeatMsg: st.builds(
        HeartbeatMsg,
        node=_text,
        seq=st.integers(0, 10**9),
        tier_blocks=st.dictionaries(_tiers, _names, max_size=3),
    ),
    BlockReadRequest: st.builds(
        BlockReadRequest, block_id=_text, prefer_tier=st.none() | _tiers
    ),
    BlockReadReply: st.builds(
        BlockReadReply,
        ok=st.booleans(),
        tier=st.none() | _tiers,
        nbytes=_sizes,
        data=_payloads,
    ),
    BlockWriteRequest: st.builds(
        BlockWriteRequest,
        block_id=_text,
        path=_text,
        index=st.integers(0, 64),
        data=_payloads,
        pipeline=_names,
    ),
    BlockWriteReply: st.builds(
        BlockWriteReply, ok=st.booleans(), stored=_names
    ),
    ReplicaPipelineMsg: st.builds(
        ReplicaPipelineMsg,
        block_id=_text,
        source=_text,
        targets=_names,
        reason=st.sampled_from(["repair", "rebalance", "decommission"]),
    ),
    FailoverMsg: st.builds(
        FailoverMsg, generation=st.integers(0, 100), active=_text
    ),
    CreateFileRequest: st.builds(
        CreateFileRequest,
        path=_text,
        nbytes=_sizes,
        replication=st.none() | st.integers(1, 5),
    ),
    BlockPlacement: _placements(),
    CreateFileReply: st.builds(
        CreateFileReply,
        ok=st.booleans(),
        blocks=st.lists(_placements(), max_size=3).map(tuple),
    ),
    LocationsRequest: st.builds(LocationsRequest, block_id=_text),
    LocationsReply: st.builds(
        LocationsReply, nodes=_names, memory_nodes=_names
    ),
    FileInfoRequest: st.builds(FileInfoRequest, path=_text),
    FileInfoReply: st.builds(
        FileInfoReply,
        exists=st.booleans(),
        blocks=st.lists(_placements(), max_size=3).map(tuple),
    ),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


# -- round-trip properties ---------------------------------------------------------


def test_every_message_type_covered():
    assert set(MESSAGE_STRATEGIES) == set(MESSAGE_TYPES)


@settings(max_examples=200)
@given(any_message)
def test_round_trip_identity(message):
    decoded = decode(encode(message))
    assert type(decoded) is type(message)
    assert decoded == message


@given(any_message)
def test_wire_form_is_canonical_json(message):
    payload = encode(message)
    envelope = json.loads(payload.decode("utf-8"))
    assert envelope["v"] == PROTOCOL_VERSION
    assert envelope["kind"] == type(message).__name__
    # Canonical: re-encoding the decoded message reproduces the bytes.
    assert encode(decode(payload)) == payload


@given(work_items())
def test_work_item_seq_and_timestamps_survive(item):
    """``seq`` is excluded from the priority-order contract only if the
    wire preserves it exactly (``received_at`` is ``compare=False``, so
    ``==`` would not catch a regression — check the fields directly)."""
    msg = MigrateMsg(MigrateCommand(job_id="j", items=(item,)))
    round_tripped = decode(encode(msg)).command.items[0]
    assert round_tripped.seq == item.seq
    assert round_tripped.received_at == item.received_at
    assert round_tripped.dst_tier == item.dst_tier


@given(st.lists(_text, min_size=1, max_size=4).map(tuple))
def test_tuples_stay_tuples(paths):
    decoded = decode(encode(MigrateFilesRequest(paths, "job")))
    assert isinstance(decoded.paths, tuple)
    assert decoded.paths == paths


@given(_payloads)
def test_binary_payloads_survive(data):
    decoded = decode(encode(BlockReadReply(ok=True, data=data)))
    assert decoded.data == data
    assert isinstance(decoded.data, bytes)


# -- malformed input ---------------------------------------------------------------


def test_wrong_protocol_version_rejected():
    envelope = json.loads(encode(Ack()).decode())
    envelope["v"] = PROTOCOL_VERSION + 1
    with pytest.raises(CodecError, match="protocol version"):
        decode(json.dumps(envelope).encode())


def test_unknown_kind_rejected():
    payload = json.dumps(
        {"v": PROTOCOL_VERSION, "kind": "NoSuchMessage", "body": {}}
    ).encode()
    with pytest.raises(CodecError, match="malformed envelope"):
        decode(payload)


def test_malformed_body_rejected():
    payload = json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "kind": "HeartbeatMsg",
            "body": {"node": "n1"},  # missing seq / tier_blocks
        }
    ).encode()
    with pytest.raises(CodecError, match="malformed HeartbeatMsg"):
        decode(payload)


def test_non_json_payload_rejected():
    with pytest.raises(CodecError, match="undecodable"):
        decode(b"\xff\xfe not json")


def test_unregistered_type_rejected():
    @dataclasses.dataclass
    class Rogue:
        x: int

    with pytest.raises(CodecError, match="unknown message type"):
        encode(Rogue(1))
