"""The asyncio mini-cluster end-to-end (real sockets, no simulator).

Small configs keep this in CI-smoke territory: three DataNodes, a few
multi-block files, enough reads per phase to exercise the Zipf head.
"""

import pytest

from repro.transport.real import block_payload, run_real_demo


class TestRealDemo:
    def test_demo_completes_with_migration_benefit(self):
        result = run_real_demo(nodes=3, files=4, reads=30, seed=0)
        assert result.ok, result.errors
        assert result.blocks_lost == 0
        assert result.nodes == 3 and result.files == 4
        assert result.blocks == result.files * 2
        # Phase 1 runs all-disk; the migration moves the hot half up.
        assert result.phase1_ram_reads == 0
        assert result.phase2_ram_reads > 0

    def test_demo_is_reproducible_in_shape(self):
        first = run_real_demo(nodes=3, files=3, reads=20, seed=7)
        second = run_real_demo(nodes=3, files=3, reads=20, seed=7)
        # Wall-clock latencies differ; placement and routing must not.
        assert first.ok and second.ok
        assert first.blocks == second.blocks
        assert first.phase2_ram_reads == second.phase2_ram_reads

    def test_replication_pipeline_observed(self):
        result = run_real_demo(nodes=4, files=3, reads=12, seed=1)
        assert result.ok, result.errors
        # Replication 2: every block write crosses one store-and-forward
        # hop, counted on whichever node forwarded it.
        assert sum(result.pipeline_depth) == result.blocks

    def test_summary_mentions_slo_stats(self):
        result = run_real_demo(nodes=3, files=3, reads=16, seed=3)
        text = result.summary()
        assert "p99" in text and "ram_reads" in text
        payload = result.to_dict()
        assert payload["blocks_lost"] == 0
        assert payload["phase2"]["ram_reads"] == result.phase2_ram_reads

    def test_fewer_than_three_nodes_rejected(self):
        with pytest.raises(ValueError, match="3"):
            run_real_demo(nodes=2)


class TestBlockPayload:
    def test_payload_is_deterministic(self):
        assert block_payload("blk-1", 64) == block_payload("blk-1", 64)
        assert block_payload("blk-1", 64) != block_payload("blk-2", 64)

    def test_payload_length_matches(self):
        for nbytes in (1, 31, 32, 33, 1000):
            assert len(block_payload("b", nbytes)) == nbytes
