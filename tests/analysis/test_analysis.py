"""Tests for the Section II analyses (lead-time, utilization, memory)."""

import pytest

from repro.analysis import (
    analyze_lead_time,
    mean_utilization_timeline,
    overall_mean_utilization,
    ratio_cdf,
    server_utilization,
    worst_case_memory,
)
from repro.storage import GB, MB
from repro.workloads.google_trace import GoogleTraceJob, TaskUsageInterval


def make_job(job_id, queue_delay, io_times):
    return GoogleTraceJob(
        job_id=job_id,
        submit_time=float(job_id),
        queue_delay=queue_delay,
        task_io_times=tuple(io_times),
    )


class TestLeadTime:
    def test_sufficient_fraction_counts_correctly(self):
        jobs = [
            make_job(0, queue_delay=10, io_times=[1, 2]),  # sufficient
            make_job(1, queue_delay=1, io_times=[5]),  # insufficient
            make_job(2, queue_delay=4, io_times=[1, 1, 1]),  # sufficient
            make_job(3, queue_delay=2, io_times=[2, 1]),  # insufficient
        ]
        analysis = analyze_lead_time(jobs)
        assert analysis.sufficient_fraction == 0.5

    def test_ratios_are_read_over_lead(self):
        jobs = [make_job(0, queue_delay=4, io_times=[2])]
        analysis = analyze_lead_time(jobs)
        assert analysis.ratios == (0.5,)

    def test_zero_lead_time_is_infinite_ratio(self):
        jobs = [make_job(0, queue_delay=0, io_times=[1])]
        analysis = analyze_lead_time(jobs)
        assert analysis.ratios[0] == float("inf")
        assert analysis.sufficient_fraction == 0.0

    def test_mean_and_median(self):
        jobs = [
            make_job(0, queue_delay=1, io_times=[1]),
            make_job(1, queue_delay=3, io_times=[1]),
            make_job(2, queue_delay=8, io_times=[1]),
        ]
        analysis = analyze_lead_time(jobs)
        assert analysis.mean_lead_time == pytest.approx(4.0)
        assert analysis.median_lead_time == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_lead_time([])

    def test_cdf_excludes_infinite_but_keeps_denominator(self):
        jobs = [
            make_job(0, queue_delay=0, io_times=[1]),
            make_job(1, queue_delay=2, io_times=[1]),
        ]
        ratios, fractions = ratio_cdf(analyze_lead_time(jobs))
        assert ratios == [0.5]
        assert fractions == [0.5]


class TestDiskUtilization:
    def test_uniform_interval_spreads_io_evenly(self):
        rows = [TaskUsageInterval(server=0, start=0, end=100, io_time=50)]
        timelines = server_utilization(rows, duration=100, window=50)
        util = timelines[0].utilization
        assert util == (pytest.approx(0.5), pytest.approx(0.5))

    def test_concurrent_tasks_sum(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=100, io_time=30),
            TaskUsageInterval(server=0, start=0, end=100, io_time=20),
        ]
        timelines = server_utilization(rows, duration=100, window=100)
        assert timelines[0].utilization[0] == pytest.approx(0.5)

    def test_utilization_clipped_at_one(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=10, io_time=10),
            TaskUsageInterval(server=0, start=0, end=10, io_time=10),
        ]
        timelines = server_utilization(rows, duration=10, window=10)
        assert timelines[0].utilization[0] <= 1.0

    def test_servers_kept_separate(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=10, io_time=10),
            TaskUsageInterval(server=1, start=0, end=10, io_time=0),
        ]
        timelines = server_utilization(rows, duration=10, window=10)
        assert timelines[0].utilization[0] > timelines[1].utilization[0]

    def test_mean_timeline_averages_servers(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=10, io_time=10),
            TaskUsageInterval(server=1, start=0, end=10, io_time=0),
        ]
        timelines = server_utilization(rows, duration=10, window=10)
        mean_line = mean_utilization_timeline(timelines)
        assert mean_line.utilization[0] == pytest.approx(0.5)

    def test_overall_mean(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=10, io_time=5),
            TaskUsageInterval(server=0, start=10, end=20, io_time=0),
        ]
        timelines = server_utilization(rows, duration=20, window=10)
        assert overall_mean_utilization(timelines) == pytest.approx(0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            server_utilization([], duration=0)
        with pytest.raises(ValueError):
            mean_utilization_timeline({})
        with pytest.raises(ValueError):
            overall_mean_utilization({})

    def test_peak_property(self):
        rows = [
            TaskUsageInterval(server=0, start=0, end=10, io_time=8),
            TaskUsageInterval(server=0, start=10, end=20, io_time=1),
        ]
        timelines = server_utilization(rows, duration=20, window=10)
        assert timelines[0].peak == pytest.approx(0.8)


class TestMemorySufficiency:
    def test_paper_worst_case_is_12_5_gb(self):
        result = worst_case_memory()
        assert result.worst_case_bytes == pytest.approx(12.5 * GB)
        assert result.sufficient

    def test_ram_fraction(self):
        result = worst_case_memory(
            concurrent_tasks=10, block_size=256 * MB, server_ram=10 * GB
        )
        assert result.ram_fraction == pytest.approx(0.25)

    def test_insufficient_detected(self):
        result = worst_case_memory(
            concurrent_tasks=100, block_size=1 * GB, server_ram=10 * GB
        )
        assert not result.sufficient

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_memory(concurrent_tasks=0)
        with pytest.raises(ValueError):
            worst_case_memory(block_size=0)
