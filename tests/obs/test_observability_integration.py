"""End-to-end observability: determinism, zero overhead, counter truth."""

import collections
import json

import pytest

from repro import IgnemConfig, ObservabilityConfig, build_paper_testbed
from repro.experiments.swim_runs import prepare_swim_cluster
from repro.obs import validate_trace
from repro.storage import GB, MB


def _run_swim_traced(tmp_path, label, num_jobs=6, seed=3):
    """One small traced SWIM run; returns (cluster, trace path)."""
    trace_path = tmp_path / f"{label}.jsonl"
    config = ObservabilityConfig(enabled=True, trace_path=str(trace_path))
    cluster, _, specs, arrivals = prepare_swim_cluster(
        "ignem", seed=seed, num_jobs=num_jobs, observability=config
    )
    done = cluster.engine.run_workload(specs, arrivals, implicit_eviction=True)
    cluster.run(until=done)
    return cluster, trace_path


def _job_outcomes(cluster):
    return [
        (record.job_id, record.submitted_at, record.end)
        for record in cluster.collector.jobs
    ]


class TestTraceDeterminism:
    def test_same_seed_emits_byte_identical_jsonl(self, tmp_path):
        _, first = _run_swim_traced(tmp_path, "first")
        _, second = _run_swim_traced(tmp_path, "second")
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0

    def test_emitted_trace_validates_against_schema(self, tmp_path):
        _, path = _run_swim_traced(tmp_path, "validated")
        assert validate_trace(path) == []


class TestZeroOverheadWhenDisabled:
    def test_disabled_by_default_and_writes_nothing(self, tmp_path):
        cluster = build_paper_testbed(seed=3)
        assert cluster.config.observability.enabled is False
        assert cluster.obs.active is False
        cluster.client.create_file("/f", 128 * MB)
        cluster.run()
        assert cluster.obs.tracer is None
        assert list(tmp_path.iterdir()) == []

    def test_tracing_never_changes_simulation_outcomes(self, tmp_path):
        traced, _ = _run_swim_traced(tmp_path, "obs-on")

        plain, _, specs, arrivals = prepare_swim_cluster(
            "ignem", seed=3, num_jobs=6
        )
        done = plain.engine.run_workload(
            specs, arrivals, implicit_eviction=True
        )
        plain.run(until=done)

        assert plain.obs.active is False
        assert _job_outcomes(plain) == _job_outcomes(traced)
        assert plain.env.now == traced.env.now
        assert json.dumps(plain.collector.summary(), sort_keys=True) == (
            json.dumps(traced.collector.summary(), sort_keys=True)
        )


class TestRepairTraceSpans:
    def _repaired_cluster(self, tmp_path, label):
        trace_path = tmp_path / f"{label}.jsonl"
        cluster = build_paper_testbed(
            seed=3,
            observability=ObservabilityConfig(
                enabled=True,
                trace_path=str(trace_path),
                categories=("repair",),
            ),
        )
        cluster.enable_rereplication()
        cluster.client.create_file("/f", 256 * MB)
        victim = cluster.namenode.get_block_locations(
            cluster.namenode.file_blocks("/f")[0].block_id
        )[0]
        cluster.fail_node(victim)
        cluster.decommission(
            next(n for n in cluster.node_names() if n != victim)
        )
        cluster.run()  # dumps the trace to trace_path on return
        return cluster, trace_path

    def test_repair_copies_and_decommission_emit_spans(self, tmp_path):
        cluster, path = self._repaired_cluster(tmp_path, "repair")
        events = [json.loads(line) for line in path.read_text().splitlines()]
        copies = [
            e
            for e in events
            if e.get("name") == "dfs.repair.copy" and e.get("ph") == "X"
        ]
        assert len(copies) == cluster.replication_monitor.copies_completed
        assert all(e["args"]["outcome"] == "completed" for e in copies)
        assert {e["args"]["reason"] for e in copies} == {
            "repair",
            "decommission",
        }
        decommissions = [
            e for e in events if e.get("name") == "dfs.repair.decommission"
        ]
        assert len(decommissions) == 1

    def test_repair_trace_validates_against_schema(self, tmp_path):
        _, path = self._repaired_cluster(tmp_path, "schema")
        assert validate_trace(path) == []

    def test_repair_metrics_mirror_monitor_counters(self, tmp_path):
        cluster, _ = self._repaired_cluster(tmp_path, "metrics")
        monitor = cluster.replication_monitor
        registry = cluster.metrics
        assert (
            registry.counter("dfs.repair.copies_completed").value
            == monitor.copies_completed
        )
        assert (
            registry.counter("dfs.repair.decommissions_completed").value == 1
        )
        pulls = registry.snapshot()["pulls"]
        assert pulls["dfs.repair.under_replicated_blocks"] == 0


class _DropFirst:
    def __init__(self, n):
        self.remaining = n

    def __call__(self, node):
        if self.remaining > 0:
            self.remaining -= 1
            return "lost"
        return None


def _small_ignem_cluster(ha=False, **ignem_kwargs):
    cluster = build_paper_testbed(num_nodes=4, replication=2, seed=13)
    ignem_kwargs.setdefault("buffer_capacity", 1 * GB)
    ignem_kwargs.setdefault("rpc_latency", 0.002)
    cluster.enable_ignem(IgnemConfig(**ignem_kwargs), ha=ha)
    return cluster


class TestCounterCorrectness:
    def test_migration_and_eviction_counters_match_collector(self, tmp_path):
        cluster, _ = _run_swim_traced(tmp_path, "counted")
        registry = cluster.metrics
        collector = cluster.collector

        completed = len(collector.completed_migrations())
        assert completed > 0
        assert registry.value("ignem.slave.migrations_completed") == completed
        assert registry.histogram(
            "ignem.slave.migration_seconds"
        ).count == completed
        assert registry.histogram(
            "ignem.slave.queue_wait_seconds"
        ).count >= completed

        by_reason = collections.Counter(
            record.reason for record in collector.evictions
        )
        assert by_reason  # the workload evicts at least once
        for reason, count in by_reason.items():
            assert (
                registry.value(f"ignem.slave.evictions.{reason}") == count
            ), reason

    def test_command_retry_counter_counts_lost_sends(self):
        cluster = _small_ignem_cluster()
        master = cluster.ignem_master
        master.rpc_fault = _DropFirst(1)
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 128 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()

        assert cluster.metrics.value("ignem.master.command_retries") == 1
        assert cluster.metrics.value("ignem.master.commands_sent") >= 1


class TestRegistryCounters:
    """The registry is the single home for master RPC/workload tallies
    (the PR 3 deprecated attribute views are gone)."""

    def test_master_attrs_are_gone_and_registry_counts(self):
        cluster = _small_ignem_cluster()
        master = cluster.ignem_master
        master.rpc_fault = _DropFirst(2)
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 256 * MB)
        master.request_migration(["/f"], "j1")
        cluster.run()

        registry = cluster.metrics
        for attr in (
            "commands_sent",
            "command_retries",
            "commands_rerouted",
            "commands_abandoned",
            "migration_requests",
            "eviction_requests",
        ):
            with pytest.raises(AttributeError):
                getattr(master, attr)
        assert registry.value("ignem.master.migration_requests") == 1
        assert registry.value("ignem.master.command_retries") == 2
        assert registry.value("ignem.master.commands_sent") >= 1

    def test_ha_pair_attrs_are_gone_and_share_one_registry(self):
        cluster = _small_ignem_cluster(ha=True)
        pair = cluster.ignem_master
        cluster.rm.register_job("j1")
        cluster.client.create_file("/f", 256 * MB)
        pair.request_migration(["/f"], "j1")
        cluster.run()
        pair.fail_primary()
        cluster.rm.register_job("j2")
        cluster.client.create_file("/g", 128 * MB)
        pair.request_migration(["/g"], "j2")
        cluster.run()

        registry = cluster.metrics
        assert registry is pair.metrics
        for attr in (
            "commands_sent",
            "command_retries",
            "commands_rerouted",
            "commands_abandoned",
        ):
            with pytest.raises(AttributeError):
                getattr(pair, attr)
        # Both masters of the pair report into the one shared registry,
        # so the counters carry across the failover.
        assert registry.value("ignem.master.migration_requests") == 2
        assert registry.value("ignem.master.commands_sent") > 0
