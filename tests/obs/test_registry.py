"""MetricsRegistry unit tests: instruments, naming, snapshots."""

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("a.b")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("a.b")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("a.b")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_buckets_count_and_stats(self):
        hist = MetricsRegistry().histogram("a.b", bounds=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.buckets == [2, 1, 1]
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx((0.5 + 0.9 + 5.0 + 100.0) / 4)

    def test_mean_requires_observations(self):
        hist = MetricsRegistry().histogram("a.b")
        with pytest.raises(ValueError):
            hist.mean

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("a.b", bounds=(2.0, 1.0))

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_quantile_interpolates_within_bucket(self):
        hist = MetricsRegistry().histogram("a.b", bounds=(1.0, 2.0, 4.0))
        for value in (1.2, 1.4, 1.6, 1.8):  # all in the (1.0, 2.0] bucket
            hist.observe(value)
        # Median interpolates halfway through the bucket's span.
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert 1.0 <= hist.quantile(0.01)
        assert hist.quantile(1.0) == pytest.approx(hist.max)

    def test_quantile_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("a.b", bounds=(10.0, 20.0))
        hist.observe(12.0)
        hist.observe(14.0)
        assert hist.quantile(0.0) >= hist.min
        assert hist.quantile(1.0) <= hist.max

    def test_quantile_overflow_bucket_reports_max(self):
        hist = MetricsRegistry().histogram("a.b", bounds=(1.0,))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.quantile(0.99) == pytest.approx(70.0)

    def test_quantile_requires_observations(self):
        hist = MetricsRegistry().histogram("a.b")
        with pytest.raises(ValueError):
            hist.quantile(0.5)
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x.y") is registry.counter("x.y")
        assert registry.gauge("x.z") is registry.gauge("x.z")
        assert registry.histogram("x.h") is registry.histogram("x.h")

    @pytest.mark.parametrize(
        "bad", ["flat", "Upper.case", "a.", ".b", "a..b", "a b.c", ""]
    )
    def test_rejects_names_outside_component_event_scheme(self, bad):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter(bad)

    def test_pull_metric_evaluated_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.register_pull("x.pull", lambda: state["n"])
        assert registry.value("x.pull") == 1
        state["n"] = 7
        assert registry.snapshot()["pulls"]["x.pull"] == 7

    def test_value_lookup_and_unknown_name(self):
        registry = MetricsRegistry()
        registry.counter("a.c").inc(2)
        registry.gauge("a.g").set(3.0)
        assert registry.value("a.c") == 2
        assert registry.value("a.g") == 3.0
        with pytest.raises(KeyError):
            registry.value("a.missing")

    def test_snapshot_is_sorted_and_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.last").inc()
            registry.counter("a.first").inc(2)
            registry.histogram("m.h").observe(0.2)
            return registry

        snap_a, snap_b = build().snapshot(), build().snapshot()
        assert snap_a == snap_b
        assert list(snap_a["counters"]) == ["a.first", "z.last"]
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(
            snap_b, sort_keys=True
        )

    def test_write_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(3)
        path = registry.write(tmp_path / "metrics.json")
        assert json.loads(path.read_text())["counters"]["a.b"] == 3
