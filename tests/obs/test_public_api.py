"""The promoted public surface: repro.__all__ and repro.obs exports."""

import importlib

import repro
import repro.obs


class TestPackageAll:
    def test_all_names_import_cleanly(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_observability_surface_is_exported(self):
        # The names the docs quickstart uses must live in __all__.
        for name in (
            "ObservabilityConfig",
            "MetricsRegistry",
            "TraceReader",
            "build_paper_testbed",
            "JobSpec",
        ):
            assert name in repro.__all__, name

    def test_obs_subpackage_all_imports_cleanly(self):
        module = importlib.import_module("repro.obs")
        for name in module.__all__:
            assert getattr(module, name, None) is not None, name

    def test_exports_are_the_real_classes(self):
        assert repro.ObservabilityConfig is repro.obs.ObservabilityConfig
        assert repro.MetricsRegistry is repro.obs.MetricsRegistry
        assert repro.TraceReader is repro.obs.TraceReader

    def test_cluster_config_carries_observability(self):
        config = repro.ClusterConfig()
        assert isinstance(config.observability, repro.ObservabilityConfig)
        assert config.observability.enabled is False
