"""Tracer, TraceReader, and schema-checker unit tests."""

import json

import pytest

from repro.obs import ALL_CATEGORIES, DEFAULT_CATEGORIES, TraceReader, Tracer
from repro.obs.schema import validate_lines, validate_trace


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestTracer:
    def test_rejects_unknown_categories(self):
        with pytest.raises(ValueError):
            Tracer(FakeClock(), categories={"bogus"})

    def test_sim_category_is_opt_in(self):
        assert "sim" in ALL_CATEGORIES
        assert "sim" not in DEFAULT_CATEGORIES

    def test_span_and_instant_emission(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 1.5
        tracer.instant("cache.insert", "storage", lane="node0/cache")
        clock.now = 2.0
        tracer.complete("net.transfer", "net", start=1.0, lane="network")
        events = [json.loads(line) for line in tracer.lines()]
        named = {event["name"]: event for event in events}
        # Metadata first, then ts-sorted data events.
        assert events[0]["ph"] == "M"
        assert named["net.transfer"]["ts"] == pytest.approx(1.0e6)
        assert named["net.transfer"]["dur"] == pytest.approx(1.0e6)
        assert named["cache.insert"]["ts"] == pytest.approx(1.5e6)

    def test_lines_are_ts_sorted_regardless_of_emission_order(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 5.0
        tracer.instant("cache.evict", "storage")
        # A span that *finishes* later but *started* earlier must sort first.
        clock.now = 6.0
        tracer.complete("dfs.read", "dfs", start=1.0)
        data = [
            json.loads(line)
            for line in tracer.lines()
            if json.loads(line)["ph"] != "M"
        ]
        assert [event["name"] for event in data] == [
            "dfs.read",
            "cache.evict",
        ]

    def test_negative_duration_is_clamped(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.complete("dfs.read", "dfs", start=2.0, end=1.0)
        (event,) = [
            json.loads(line)
            for line in tracer.lines()
            if json.loads(line)["ph"] == "X"
        ]
        assert event["dur"] == 0.0

    def test_dump_reload_round_trip(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 1.0
        tracer.instant("cache.insert", "storage", lane="node0/cache")
        tracer.complete(
            "net.transfer", "net", start=0.5, lane="network",
            args={"bytes": 64},
        )
        path = tracer.dump(tmp_path / "t.jsonl")

        reader = TraceReader.load(path)
        assert len(reader.filter(category="net")) == 1
        assert reader.durations("net.transfer") == [pytest.approx(0.5)]
        assert set(reader.lanes().values()) == {"node0/cache", "network"}

        chrome = reader.to_chrome(tmp_path / "t.chrome.json")
        wrapped = json.loads(chrome.read_text())
        assert len(wrapped["traceEvents"]) == len(reader.events)


class TestSchemaChecker:
    def _line(self, **overrides):
        event = {
            "name": "dfs.read",
            "ph": "X",
            "cat": "dfs",
            "ts": 1.0,
            "dur": 2.0,
            "pid": 0,
            "tid": 0,
        }
        event.update(overrides)
        return json.dumps(event)

    def test_valid_trace_passes(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.instant("scheduler.launch", "scheduler")
        path = tracer.dump(tmp_path / "ok.jsonl")
        assert validate_trace(path) == []

    def test_unknown_event_type_fails(self):
        errors = validate_lines([self._line(name="made.up")])
        assert any("unknown event type" in error for error in errors)

    def test_category_mismatch_fails(self):
        errors = validate_lines([self._line(cat="net")])
        assert any("expected" in error for error in errors)

    def test_non_monotonic_timestamps_fail(self):
        errors = validate_lines(
            [self._line(ts=5.0), self._line(ts=4.0)]
        )
        assert any("non-monotonic" in error for error in errors)

    def test_missing_keys_and_bad_json_fail(self):
        errors = validate_lines(['{"name": "dfs.read"}', "not json"])
        assert len(errors) == 2

    def test_span_without_duration_fails(self):
        errors = validate_lines([self._line(dur=None)])
        assert any("bad dur" in error for error in errors)
