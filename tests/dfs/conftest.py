"""Shared fixtures for DFS tests: a small simulated cluster."""

import pytest

from repro.dfs import DFSClient, DataNode, NameNode
from repro.net import Network
from repro.sim import Environment, RandomSource
from repro.storage import GB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    net = Network(env)
    for index in range(4):
        net.add_node(f"node{index}")
    return net


@pytest.fixture
def namenode(env):
    nn = NameNode(rng=RandomSource(7), replication=2)
    for index in range(4):
        nn.register_datanode(DataNode(env, f"node{index}", cache_capacity=8 * GB))
    return nn


@pytest.fixture
def client(env, namenode, network):
    return DFSClient(env, namenode, network, rng=RandomSource(11))
