"""Tests for block splitting and file metadata."""

import pytest

from repro.dfs import Block, FileMetadata, split_into_blocks
from repro.storage import MB


class TestSplitIntoBlocks:
    def test_exact_multiple(self):
        blocks = split_into_blocks("/data/f", 128 * MB, block_size=64 * MB)
        assert len(blocks) == 2
        assert all(b.nbytes == 64 * MB for b in blocks)

    def test_remainder_in_last_block(self):
        blocks = split_into_blocks("/data/f", 100 * MB, block_size=64 * MB)
        assert len(blocks) == 2
        assert blocks[0].nbytes == 64 * MB
        assert blocks[1].nbytes == 36 * MB

    def test_small_file_single_block(self):
        blocks = split_into_blocks("/data/f", 10 * MB, block_size=64 * MB)
        assert len(blocks) == 1
        assert blocks[0].nbytes == 10 * MB

    def test_empty_file_gets_one_empty_block(self):
        blocks = split_into_blocks("/data/f", 0)
        assert len(blocks) == 1
        assert blocks[0].nbytes == 0

    def test_block_ids_unique_and_ordered(self):
        blocks = split_into_blocks("/data/f", 300 * MB, block_size=64 * MB)
        ids = [b.block_id for b in blocks]
        assert len(set(ids)) == len(ids)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_block_ids_include_path(self):
        blocks = split_into_blocks("/data/f", 64 * MB)
        assert "/data/f" in blocks[0].block_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            split_into_blocks("/data/f", -1)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            split_into_blocks("/data/f", 100, block_size=0)


class TestFileMetadata:
    def test_nbytes_sums_blocks(self):
        blocks = tuple(split_into_blocks("/f", 100 * MB, block_size=64 * MB))
        metadata = FileMetadata("/f", blocks)
        assert metadata.nbytes == 100 * MB
        assert metadata.num_blocks == 2

    def test_block_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Block("b", "/f", 0, -5)
